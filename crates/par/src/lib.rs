//! Deterministic scoped-thread fan-out for seed-indexed experiment work.
//!
//! Every figure/table in the bench harness replays independent trials: one
//! chip sample, one (interval, bits) combo, one PEC level, one SVM fold.
//! Each such item derives its own `SmallRng`/`Chip` from its index and
//! never shares mutable simulator state, so the work is embarrassingly
//! parallel — the only thing a parallel executor must guarantee is that
//! *results come back in input order* regardless of which worker ran what.
//!
//! [`par_map`] and [`par_trials`] provide exactly that contract:
//!
//! - The worker-pool size comes from `STASH_THREADS` (default: available
//!   parallelism). `STASH_THREADS=1` degenerates to a plain serial loop.
//! - Items are claimed from a shared queue, but every result lands in the
//!   slot of its *input* index, so the output `Vec` is byte-identical to
//!   serial execution for any thread count.
//! - Nested calls from inside a worker run inline on that worker (a
//!   thread-local in-pool flag), so composed layers — e.g. a parallel
//!   grid search whose accuracy function itself calls a parallel k-fold —
//!   cannot oversubscribe the machine or deadlock.
//!
//! No dependencies beyond `std`: scoped threads carry the borrows, a
//! mutex-guarded queue hands out items, and `std::thread::scope` re-raises
//! worker panics in the caller.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

thread_local! {
    /// Set while a pool worker runs a work item; nested fan-out calls see
    /// it and degrade to an inline serial loop.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Worker-pool size: `STASH_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("STASH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// True when called from inside a [`par_map`] worker — nested fan-out
/// will run inline.
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Maps `f` over `items` on a pool of [`thread_count`] workers, returning
/// results in input order. `f` receives `(index, item)` so work can derive
/// per-item seeds. Byte-identical to the serial loop for any thread count;
/// panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_threads(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (1 = plain serial loop).
pub fn par_map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 || in_pool() {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                s.spawn(|| {
                    IN_POOL.with(|flag| flag.set(true));
                    loop {
                        // Claim under the lock, run outside it: items are
                        // coarse (whole chip simulations), so queue
                        // contention is negligible.
                        // `f` runs outside both locks, so a panic in it
                        // can't leave either container inconsistent —
                        // ignore poisoning and let the panicking worker's
                        // own payload propagate at join below.
                        let claimed = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                        let Some((i, item)) = claimed else { break };
                        let r = f(i, item);
                        results.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(r);
                    }
                    IN_POOL.with(|flag| flag.set(false));
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the caller
        // verbatim (scope's implicit join replaces it with a generic one).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("pool worker exited without producing a result"))
        .collect()
}

/// Runs `n` indexed trials (`f(0) .. f(n-1)`) on the worker pool,
/// returning results in trial order — the shape every seed-swept bench
/// loop takes.
pub fn par_trials<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map((0..n).collect(), |_, i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_input_order() {
        for threads in [1, 2, 4, 8] {
            let out = par_map_threads(threads, (0u64..100).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expected: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // A toy "experiment": per-item RNG derived from the index, as the
        // bench harness does — different thread counts must agree bitwise.
        let run = |threads| {
            par_map_threads(threads, (0u64..32).collect(), |_, seed| {
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let mut acc = 0u64;
                for _ in 0..1000 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    acc = acc.wrapping_add(state);
                }
                acc
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
        assert_eq!(run(33), serial, "more workers than items");
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let inner_inline = AtomicUsize::new(0);
        let out = par_map_threads(4, (0usize..8).collect(), |_, i| {
            let inner = par_map_threads(4, (0usize..4).collect(), |_, j| {
                if in_pool() {
                    inner_inline.fetch_add(1, Ordering::Relaxed);
                }
                i * 10 + j
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out[3], 30 + 31 + 32 + 33);
        assert_eq!(inner_inline.load(Ordering::Relaxed), 32, "inner items all ran in-pool");
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = par_map_threads(8, Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map_threads(8, vec![7u32], |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn par_trials_passes_indices() {
        assert_eq!(par_trials(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        par_map_threads(4, (0usize..8).collect(), |_, i| {
            assert!(i != 5, "boom");
            i
        });
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
