//! Versioned JSON metrics snapshot: the machine-readable sibling of the
//! Prometheus exposition in [`crate::prom`]. One self-describing object,
//! schema-stamped so downstream consumers can reject records they do not
//! understand, parseable by the in-crate [`crate::json`] parser.
//!
//! Histogram `sum` is serialized as a decimal *string* because it is a
//! `u128` and would lose precision through the f64 number path.

use crate::json::{self, JsonValue};
use crate::metrics::{Log2Histogram, Registry};
use std::fmt::Write as _;

/// Schema tag stamped into every snapshot.
pub const SNAPSHOT_SCHEMA: &str = "stash-metrics/1";

/// Serializes the registry as a single schema-versioned JSON object.
pub fn write_snapshot(r: &Registry) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"");
    out.push_str(SNAPSHOT_SCHEMA);
    out.push_str("\",\"counters\":[");
    for (i, ((name, label), v)) in r.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_escaped(&mut out, name);
        out.push_str(",\"label\":");
        json::write_escaped(&mut out, label);
        let _ = write!(out, ",\"value\":{v}}}");
    }
    out.push_str("],\"gauges\":[");
    for (i, ((name, label), v)) in r.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_escaped(&mut out, name);
        out.push_str(",\"label\":");
        json::write_escaped(&mut out, label);
        out.push_str(",\"value\":");
        json::write_num(&mut out, *v);
        out.push('}');
    }
    out.push_str("],\"histograms\":[");
    for (i, ((name, label), h)) in r.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_escaped(&mut out, name);
        out.push_str(",\"label\":");
        json::write_escaped(&mut out, label);
        let _ = write!(out, ",\"sum\":\"{}\",\"buckets\":[", h.sum());
        let mut first = true;
        for (b, &c) in h.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{b},{c}]");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Parses a snapshot produced by [`write_snapshot`].
///
/// # Errors
///
/// Returns a description of the first structural problem: bad JSON, a
/// missing/unknown schema tag, or malformed entries.
pub fn parse_snapshot(text: &str) -> Result<Registry, String> {
    let v = json::parse(text).map_err(|e| format!("snapshot is not valid JSON: {e}"))?;
    let JsonValue::Obj(obj) = &v else {
        return Err("snapshot is not a JSON object".into());
    };
    match obj.get("schema") {
        Some(JsonValue::Str(s)) if s == SNAPSHOT_SCHEMA => {}
        Some(JsonValue::Str(s)) => return Err(format!("unknown snapshot schema {s:?}")),
        _ => return Err("snapshot is missing its schema tag".into()),
    }
    let mut r = Registry::new();
    for entry in expect_arr(obj.get("counters"), "counters")? {
        let (name, label, e) = entry_parts(entry, "counter")?;
        let val = expect_num(e.get("value"), "counter value")?;
        r.counter_add(&name, &label, val as u64);
    }
    for entry in expect_arr(obj.get("gauges"), "gauges")? {
        let (name, label, e) = entry_parts(entry, "gauge")?;
        let val = expect_num(e.get("value"), "gauge value")?;
        r.gauge_set(&name, &label, val);
    }
    for entry in expect_arr(obj.get("histograms"), "histograms")? {
        let (name, label, e) = entry_parts(entry, "histogram")?;
        let sum: u128 = match e.get("sum") {
            Some(JsonValue::Str(s)) => {
                s.parse().map_err(|_| format!("histogram {name:?}: bad sum {s:?}"))?
            }
            _ => return Err(format!("histogram {name:?}: sum must be a decimal string")),
        };
        let mut buckets = Vec::new();
        for pair in expect_arr(e.get("buckets"), "histogram buckets")? {
            let JsonValue::Arr(pair) = pair else {
                return Err(format!("histogram {name:?}: bucket entry is not a pair"));
            };
            if pair.len() != 2 {
                return Err(format!("histogram {name:?}: bucket entry is not a pair"));
            }
            let b = expect_num(pair.first(), "bucket index")? as usize;
            let c = expect_num(pair.get(1), "bucket count")? as u64;
            if b >= crate::metrics::LOG2_BUCKETS {
                return Err(format!("histogram {name:?}: bucket index {b} out of range"));
            }
            buckets.push((b, c));
        }
        r.histogram_set(&name, &label, Log2Histogram::from_bucket_counts(&buckets, sum));
    }
    Ok(r)
}

fn expect_arr<'a>(v: Option<&'a JsonValue>, what: &str) -> Result<&'a [JsonValue], String> {
    match v {
        Some(JsonValue::Arr(a)) => Ok(a),
        _ => Err(format!("snapshot {what} is missing or not an array")),
    }
}

fn expect_num(v: Option<&JsonValue>, what: &str) -> Result<f64, String> {
    match v {
        Some(JsonValue::Num(n)) => Ok(*n),
        _ => Err(format!("{what} is missing or not a number")),
    }
}

/// Pulls the shared `name`/`label` fields off a series entry.
fn entry_parts<'a>(
    entry: &'a JsonValue,
    what: &str,
) -> Result<(String, String, &'a std::collections::BTreeMap<String, JsonValue>), String> {
    let JsonValue::Obj(e) = entry else {
        return Err(format!("{what} entry is not an object"));
    };
    let name = match e.get("name") {
        Some(JsonValue::Str(s)) => s.clone(),
        _ => return Err(format!("{what} entry is missing its name")),
    };
    let label = match e.get("label") {
        Some(JsonValue::Str(s)) => s.clone(),
        _ => return Err(format!("{what} entry is missing its label")),
    };
    Ok((name, label, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.counter_add("ops", "program", 41);
        r.counter_add("ops", "read", 1000);
        r.gauge_set("health_ber_margin", "", 0.96875);
        r.gauge_set("free_blocks", "pool-a", 12.0);
        for v in [0u64, 2, 5, 5, 1 << 40] {
            r.observe("latency_us", "", v);
        }
        r
    }

    #[test]
    fn snapshot_roundtrips() {
        let original = sample_registry();
        let text = write_snapshot(&original);
        let back = parse_snapshot(&text).expect("parses");
        assert_eq!(back, original);
        assert_eq!(write_snapshot(&back), text);
    }

    #[test]
    fn snapshot_is_schema_stamped() {
        let text = write_snapshot(&Registry::new());
        let v = json::parse(&text).expect("valid JSON");
        let JsonValue::Obj(obj) = v else { panic!("not an object") };
        assert_eq!(obj.get("schema"), Some(&JsonValue::Str(SNAPSHOT_SCHEMA.into())));
    }

    #[test]
    fn huge_histogram_sums_survive_exactly() {
        let mut r = Registry::new();
        // A sum that would lose precision as an f64.
        for _ in 0..3 {
            r.observe("big", "", u64::MAX);
        }
        let back = parse_snapshot(&write_snapshot(&r)).expect("parses");
        assert_eq!(back, r);
        let h = back.histogram("big", "").expect("series survives");
        assert_eq!(h.sum(), 3 * u64::MAX as u128);
    }

    #[test]
    fn rejects_wrong_or_missing_schema() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot(
            "{\"schema\":\"stash-metrics/999\",\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        )
        .is_err());
        assert!(parse_snapshot("not json").is_err());
    }
}
