//! # stash-obs — structured tracing and metrics for the stash stack
//!
//! The paper's headline numbers (24× encode, 50× decode, 37× energy) are
//! arithmetic over per-operation work; this crate makes that work visible
//! per *phase* instead of only as end-of-run [`Meter`](stash_flash::Meter)
//! totals. It provides:
//!
//! * **Spans** keyed to simulated device time: guard-based, hierarchical,
//!   aggregated into a tree with per-span [`MeterSnapshot`] deltas (ops,
//!   faults, µs, µJ) plus a bounded ring buffer of raw events.
//! * A **metrics registry**: labeled counters, gauges and log2-bucketed
//!   histograms (PP-steps-per-page, retries-per-read, scrub migrations,
//!   fault-kind counts).
//! * **Exporters**: a human-readable tree summary, a JSONL event stream,
//!   and a collapsed-stack flamegraph text attributing simulated µs/µJ
//!   per span path — plus Prometheus text exposition ([`prom`]) and a
//!   schema-versioned JSON metrics snapshot ([`snapshot`]) for the
//!   registry itself.
//! * A **health monitor** ([`health`]): feeds point-in-time
//!   [`HealthSample`]s of the running stack (wear, BER margin, parity
//!   budget, journal depth, detectability) into the registry as
//!   `health_*` gauges and raises edge-triggered, severity-levelled
//!   [`Alert`]s when margins are crossed.
//!
//! The [`Tracer`] implements the flash model's
//! [`Recorder`](stash_flash::Recorder) hook, so installing one on a
//! [`TraceDevice`](stash_flash::TraceDevice) middleware captures every
//! operation and fault crossing it; the layers above (hider, FTL, hidden
//! volume) open spans on the same tracer so chip costs attribute to the
//! phase that issued them. With no recorder installed the wrapped device's
//! hot path pays one `Option` branch per op — tracing is strictly opt-in.
//!
//! ```
//! use stash_flash::{BlockId, Chip, ChipProfile, NandDevice, TraceDevice};
//! use stash_obs::{span, Tracer};
//!
//! let tracer = Tracer::shared();
//! let mut chip = TraceDevice::new(Chip::new(ChipProfile::test_small(), 7));
//! chip.set_recorder(Some(tracer.clone()));
//!
//! {
//!     let _s = tracer.span("erase_all");
//!     chip.erase_block(BlockId(0)).unwrap();
//! }
//! // Layers that hold an `Option<Arc<Tracer>>` use the macro instead:
//! let maybe: Option<std::sync::Arc<Tracer>> = Some(tracer.clone());
//! let _g = span!(maybe, "encode_page", "page={}", 3);
//!
//! let report = tracer.report();
//! assert_eq!(report.totals.total_ops(), 1);
//! println!("{}", stash_obs::export::render_tree(&report));
//! ```

#![forbid(unsafe_code)]

pub mod analyze;
pub mod export;
pub mod flight;
pub mod health;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod snapshot;
pub mod tracer;

pub use analyze::{parse_trace, SpanDelta, SpanStats, TraceStats};
pub use flight::{FlightEntry, FlightRecorder, DEFAULT_FLIGHT_CAPACITY, POSTMORTEM_SCHEMA};
pub use health::{Alert, ChipHealth, HealthMonitor, HealthSample, HealthThresholds, Severity};
pub use metrics::{Log2Histogram, Registry, LOG2_BUCKETS};
pub use prom::{parse_prometheus, render_prometheus};
pub use snapshot::{parse_snapshot, write_snapshot, SNAPSHOT_SCHEMA};
pub use tracer::{
    add_snapshots, SpanGuard, SpanNode, TraceConfig, TraceEvent, TraceEventKind, TraceReport,
    Tracer, DEFAULT_EVENT_CAPACITY,
};

/// Opens a span on an `Option<Arc<Tracer>>`, returning an
/// `Option<SpanGuard>` that must be bound to keep the span open:
///
/// ```
/// # use stash_obs::{span, Tracer};
/// # let tracer = Some(Tracer::shared());
/// let _span = span!(tracer, "encode_page");
/// let _labeled = span!(tracer, "pp_step", "step={}", 1);
/// ```
///
/// With `None` the macro is a no-op, so instrumented layers cost nothing
/// when tracing is off.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        $tracer.as_ref().map(|t| $crate::Tracer::span(t, $name))
    };
    ($tracer:expr, $name:expr, $($arg:tt)+) => {
        $tracer.as_ref().map(|t| $crate::Tracer::span_labeled(t, $name, format!($($arg)+)))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_flash::{BlockId, Chip, ChipProfile, NandDevice, PageId, TraceDevice};

    #[test]
    fn tracer_attached_to_chip_matches_meter_exactly() {
        let tracer = Tracer::shared();
        let mut chip = TraceDevice::new(Chip::new(ChipProfile::test_small(), 99));
        chip.set_recorder(Some(tracer.clone()));
        {
            let _s = tracer.span("workload");
            chip.erase_block(BlockId(0)).unwrap();
            let data = stash_flash::BitPattern::zeros(chip.geometry().cells_per_page());
            chip.program_page(PageId::new(BlockId(0), 0), &data).unwrap();
            let _ = chip.read_page(PageId::new(BlockId(0), 0)).unwrap();
            chip.advance_time_us(100.0);
        }
        let meter = chip.meter();
        let report = tracer.report();
        assert_eq!(report.totals.total_ops(), meter.total_ops());
        assert!((report.totals.device_time_us - meter.device_time_us).abs() < 1e-9);
        assert!((report.totals.wait_time_us - meter.wait_time_us).abs() < 1e-9);
        assert!((report.totals.energy_uj - meter.energy_uj).abs() < 1e-9);
    }

    #[test]
    fn span_macro_is_noop_on_none() {
        let none: Option<std::sync::Arc<Tracer>> = None;
        let g = span!(none, "anything");
        assert!(g.is_none());
        let g2 = span!(none, "labeled", "x={}", 1);
        assert!(g2.is_none());
    }
}
