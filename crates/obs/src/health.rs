//! Continuous health telemetry: a sample-fed [`HealthMonitor`] that turns
//! point-in-time snapshots of the running stack into registry gauges, a
//! per-block wear histogram and severity-levelled [`Alert`] events.
//!
//! The paper's security argument is a *margin* argument — hidden data stays
//! decodable and undetectable only while wear, BER and capacity stay inside
//! an envelope — so the monitor tracks exactly those margins: distance of
//! the observed ECC correction load from decode failure, hottest-block wear
//! against a cycling budget, advertised hidden capacity against its
//! reserve, and SVM detectability against the coin-flip floor.
//!
//! Layering: `stash-obs` sits below the FTL and stego layers, so the
//! monitor cannot reach into them. Instead the integration point (CLI,
//! bench harness, test) collects a [`HealthSample`] from whatever stack it
//! runs — per-block PEC from the device's wear-accounting API, correction
//! counts from the hidden volume, journal depth from the FTL — and feeds it
//! to [`HealthMonitor::observe`]. Everything the monitor publishes lands in
//! its [`Registry`], ready for the Prometheus and snapshot exporters.
//!
//! Alerts are edge-triggered: a threshold crossing fires exactly one alert
//! when the condition becomes true, and the alert re-arms only after a
//! sample in which the condition is false again — so a monitor polled every
//! second does not emit a thousand copies of "block 7 is past budget".

use crate::metrics::{Log2Histogram, Registry};
use stash_flash::MeterSnapshot;
use std::collections::BTreeMap;
use std::fmt;

/// How bad a crossed threshold is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no margin is at risk.
    Info,
    /// A margin is shrinking; plan maintenance.
    Warning,
    /// A margin is (nearly) exhausted; data or deniability is at risk.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Critical => write!(f, "critical"),
        }
    }
}

/// One structured alert event.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Severity level.
    pub severity: Severity,
    /// Stable machine-readable alert code, e.g. `ber-margin`.
    pub code: String,
    /// Human-readable description with the numbers baked in.
    pub message: String,
    /// The observed value that crossed.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// Index of the sample (0-based) that fired the alert.
    pub sample: u64,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.code, self.message)
    }
}

/// Alert thresholds. The defaults encode the issue's contract: alert when
/// the observed correction load is within 2× of decode failure, when any
/// block exceeds the wear budget, and when hidden capacity drops below its
/// reserve fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthThresholds {
    /// P/E cycles a block may endure before it is past budget.
    pub wear_budget_pec: u32,
    /// Fire when `corrected * factor >= correctable` (default 2: the
    /// worst slot is within 2× of uncorrectable).
    pub ber_margin_factor: f64,
    /// Fire when advertised slots fall below this fraction of formatted
    /// data slots.
    pub min_advertised_fraction: f64,
    /// Fire when SVM accuracy minus 0.5 exceeds this margin.
    pub max_detect_margin: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            wear_budget_pec: 3000,
            ber_margin_factor: 2.0,
            min_advertised_fraction: 1.0,
            max_detect_margin: 0.1,
        }
    }
}

/// One point-in-time sample of the running stack, collected by whatever
/// layer owns the stack and fed to [`HealthMonitor::observe`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthSample {
    /// P/E cycle count of every block, in block order (the device's
    /// per-block wear accounting).
    pub per_block_pec: Vec<u32>,
    /// Blocks that have grown bad at runtime.
    pub grown_bad_blocks: u64,
    /// FTL journal depth (sequence numbers issued so far).
    pub journal_depth: u64,
    /// Blocks the FTL has permanently retired.
    pub retired_blocks: u64,
    /// Blocks in the FTL free pool.
    pub free_blocks: u64,
    /// Worst per-slot ECC correction count observed on the hidden volume.
    pub corrected_bits_max: u64,
    /// Bit corrections the hidden ECC can absorb per slot (0 = raw mode,
    /// which disables the BER-margin alert).
    pub correctable_bits_per_slot: u64,
    /// Hidden data slots still advertised.
    pub advertised_slots: u64,
    /// Hidden data slots originally formatted.
    pub data_slots: u64,
    /// Parity slots backing the data slots (the parity budget).
    pub parity_slots: u64,
    /// Data slots written off as unrecoverable.
    pub lost_capacity_slots: u64,
    /// Adversary SVM accuracy in `[0, 1]`, when a detectability probe ran.
    pub detect_accuracy: Option<f64>,
    /// Device meter totals at sample time (ops, faults, µs, µJ).
    pub meter: MeterSnapshot,
    /// Per-chip breakdown when the stack runs on a multi-chip array; empty
    /// (the default) on a single-chip stack. Published under a `chip`
    /// label so dashboards can spot the one ailing chip in an array.
    pub per_chip: Vec<ChipHealth>,
}

/// One chip's share of a [`HealthSample`], collected from the array's
/// per-chip attribution surfaces (per-chip meters and wear summaries, the
/// FTL's per-chip free pools).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChipHealth {
    /// Chip index within the array.
    pub chip: u32,
    /// Hottest block's P/E cycle count on this chip.
    pub hottest_pec: u32,
    /// Mean P/E cycles over this chip's blocks.
    pub mean_pec: f64,
    /// Blocks grown bad at runtime on this chip.
    pub grown_bad_blocks: u64,
    /// FTL free-pool depth on this chip.
    pub free_blocks: u64,
    /// Blocks the FTL has permanently retired on this chip.
    pub retired_blocks: u64,
    /// This chip's own meter totals.
    pub meter: MeterSnapshot,
}

/// The sample-fed monitor: owns a [`Registry`] of `health_*` series, the
/// thresholds, the edge-trigger state and the alert log.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    thresholds: HealthThresholds,
    registry: Registry,
    /// Alert codes currently in violation (edge-trigger state).
    active: BTreeMap<String, bool>,
    alerts: Vec<Alert>,
    samples: u64,
}

impl HealthMonitor {
    /// Creates a monitor with the given thresholds.
    pub fn new(thresholds: HealthThresholds) -> Self {
        HealthMonitor { thresholds, ..Default::default() }
    }

    /// The thresholds in force.
    pub fn thresholds(&self) -> &HealthThresholds {
        &self.thresholds
    }

    /// The registry all gauges and histograms publish into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Every alert fired so far, oldest first.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Samples observed so far.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Ingests one sample: publishes gauges and the wear histogram, then
    /// evaluates every threshold. Returns the alerts that *newly* fired on
    /// this sample (conditions already active stay silent until they clear
    /// and cross again).
    pub fn observe(&mut self, s: &HealthSample) -> Vec<Alert> {
        let sample_idx = self.samples;
        self.samples += 1;

        // --- wear: per-block histogram plus hottest-block gauges -------
        let mut wear = Log2Histogram::new();
        let mut hottest = (0u64, 0u32); // (block, pec)
        let mut total_pec = 0u64;
        for (b, &pec) in s.per_block_pec.iter().enumerate() {
            wear.observe(u64::from(pec));
            total_pec += u64::from(pec);
            if pec > hottest.1 {
                hottest = (b as u64, pec);
            }
        }
        let blocks = s.per_block_pec.len().max(1) as f64;
        self.registry.histogram_set("health_block_pec", "", wear);
        self.registry.gauge_set("health_hottest_block", "", hottest.0 as f64);
        self.registry.gauge_set("health_hottest_pec", "", f64::from(hottest.1));
        self.registry.gauge_set("health_mean_pec", "", total_pec as f64 / blocks);
        self.registry.gauge_set(
            "health_wear_budget_pec",
            "",
            f64::from(self.thresholds.wear_budget_pec),
        );
        self.registry.gauge_set("health_grown_bad_blocks", "", s.grown_bad_blocks as f64);

        // --- FTL: journal depth, retired and free blocks ----------------
        self.registry.gauge_set("health_journal_depth", "", s.journal_depth as f64);
        self.registry.gauge_set("health_retired_blocks", "", s.retired_blocks as f64);
        self.registry.gauge_set("health_free_blocks", "", s.free_blocks as f64);

        // --- hidden volume: BER margin, parity budget, capacity ---------
        self.registry.gauge_set("health_ber_corrected_max", "", s.corrected_bits_max as f64);
        self.registry.gauge_set("health_ber_correctable", "", s.correctable_bits_per_slot as f64);
        let ber_margin = if s.correctable_bits_per_slot == 0 {
            1.0
        } else {
            1.0 - (s.corrected_bits_max as f64 / s.correctable_bits_per_slot as f64).min(1.0)
        };
        self.registry.gauge_set("health_ber_margin", "", ber_margin);
        self.registry.gauge_set("health_parity_budget_slots", "", s.parity_slots as f64);
        self.registry.gauge_set("health_advertised_slots", "", s.advertised_slots as f64);
        self.registry.gauge_set("health_data_slots", "", s.data_slots as f64);
        self.registry.gauge_set("health_lost_capacity_slots", "", s.lost_capacity_slots as f64);

        // --- per-chip attribution (multi-chip arrays) --------------------
        for c in &s.per_chip {
            let label = format!("chip:{}", c.chip);
            self.registry.gauge_set("health_chip_hottest_pec", &label, f64::from(c.hottest_pec));
            self.registry.gauge_set("health_chip_mean_pec", &label, c.mean_pec);
            self.registry.gauge_set(
                "health_chip_grown_bad_blocks",
                &label,
                c.grown_bad_blocks as f64,
            );
            self.registry.gauge_set("health_chip_free_blocks", &label, c.free_blocks as f64);
            self.registry.gauge_set("health_chip_retired_blocks", &label, c.retired_blocks as f64);
            self.registry.gauge_set("health_chip_device_time_us", &label, c.meter.device_time_us);
            self.registry.gauge_set("health_chip_energy_uj", &label, c.meter.energy_uj);
            self.registry.gauge_set("health_chip_ops_total", &label, c.meter.total_ops() as f64);
            self.registry.gauge_set(
                "health_chip_faults_total",
                &label,
                c.meter.total_faults() as f64,
            );
        }

        // --- detectability: SVM accuracy minus the coin-flip floor -------
        if let Some(acc) = s.detect_accuracy {
            self.registry.gauge_set("health_detect_margin", "", acc - 0.5);
        }

        // --- device meter totals (pinned against the chip meter) ---------
        self.registry.gauge_set("health_device_time_us", "", s.meter.device_time_us);
        self.registry.gauge_set("health_wait_time_us", "", s.meter.wait_time_us);
        self.registry.gauge_set("health_energy_uj", "", s.meter.energy_uj);
        self.registry.gauge_set("health_ops_total", "", s.meter.total_ops() as f64);
        self.registry.gauge_set("health_faults_total", "", s.meter.total_faults() as f64);
        self.registry.counter_add("health_samples", "", 1);

        // --- threshold evaluation (edge-triggered) -----------------------
        let mut fired = Vec::new();
        let t = &self.thresholds;

        let ber_violation = s.correctable_bits_per_slot > 0
            && s.corrected_bits_max as f64 * t.ber_margin_factor
                >= s.correctable_bits_per_slot as f64;
        Self::edge(
            &mut self.active,
            &mut fired,
            "ber-margin",
            ber_violation,
            Severity::Critical,
            format!(
                "worst hidden slot needed {} corrections, within {}x of the {}-bit ECC limit",
                s.corrected_bits_max, t.ber_margin_factor, s.correctable_bits_per_slot
            ),
            s.corrected_bits_max as f64,
            s.correctable_bits_per_slot as f64 / t.ber_margin_factor,
            sample_idx,
        );

        let wear_violation = hottest.1 > t.wear_budget_pec;
        Self::edge(
            &mut self.active,
            &mut fired,
            "wear-budget",
            wear_violation,
            Severity::Warning,
            format!(
                "block {} at {} P/E cycles exceeds the {}-cycle wear budget",
                hottest.0, hottest.1, t.wear_budget_pec
            ),
            f64::from(hottest.1),
            f64::from(t.wear_budget_pec),
            sample_idx,
        );

        let reserve = t.min_advertised_fraction * s.data_slots as f64;
        let capacity_violation = s.data_slots > 0 && (s.advertised_slots as f64) < reserve;
        Self::edge(
            &mut self.active,
            &mut fired,
            "capacity-reserve",
            capacity_violation,
            Severity::Critical,
            format!(
                "hidden capacity down to {}/{} slots (reserve floor {:.1})",
                s.advertised_slots, s.data_slots, reserve
            ),
            s.advertised_slots as f64,
            reserve,
            sample_idx,
        );

        if let Some(acc) = s.detect_accuracy {
            let margin = acc - 0.5;
            Self::edge(
                &mut self.active,
                &mut fired,
                "detectability",
                margin > t.max_detect_margin,
                Severity::Warning,
                format!(
                    "SVM detects hidden data at {:.1}% accuracy ({:+.3} over coin flip)",
                    acc * 100.0,
                    margin
                ),
                margin,
                t.max_detect_margin,
                sample_idx,
            );
        }

        for a in &fired {
            self.registry.counter_add("health_alerts", &a.severity.to_string(), 1);
        }
        self.alerts.extend(fired.iter().cloned());
        fired
    }

    /// Edge-trigger plumbing: fires once on a false→true transition,
    /// re-arms on true→false.
    #[allow(clippy::too_many_arguments)]
    fn edge(
        active: &mut BTreeMap<String, bool>,
        fired: &mut Vec<Alert>,
        code: &str,
        violation: bool,
        severity: Severity,
        message: String,
        value: f64,
        threshold: f64,
        sample: u64,
    ) {
        let was = active.insert(code.to_owned(), violation).unwrap_or(false);
        if violation && !was {
            fired.push(Alert {
                severity,
                code: code.to_owned(),
                message,
                value,
                threshold,
                sample,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_sample() -> HealthSample {
        HealthSample {
            per_block_pec: vec![10, 500, 20, 3],
            grown_bad_blocks: 0,
            journal_depth: 42,
            retired_blocks: 1,
            free_blocks: 5,
            corrected_bits_max: 1,
            correctable_bits_per_slot: 8,
            advertised_slots: 6,
            data_slots: 6,
            parity_slots: 2,
            lost_capacity_slots: 0,
            detect_accuracy: Some(0.52),
            meter: MeterSnapshot::default(),
            per_chip: Vec::new(),
        }
    }

    #[test]
    fn gauges_reflect_the_sample() {
        let mut m = HealthMonitor::default();
        let fired = m.observe(&base_sample());
        assert!(fired.is_empty(), "healthy sample fires nothing: {fired:?}");
        let r = m.registry();
        assert_eq!(r.gauge("health_hottest_block", ""), Some(1.0));
        assert_eq!(r.gauge("health_hottest_pec", ""), Some(500.0));
        assert_eq!(r.gauge("health_journal_depth", ""), Some(42.0));
        assert_eq!(r.gauge("health_retired_blocks", ""), Some(1.0));
        assert_eq!(r.gauge("health_parity_budget_slots", ""), Some(2.0));
        assert_eq!(r.gauge("health_ber_margin", ""), Some(1.0 - 1.0 / 8.0));
        assert!((r.gauge("health_detect_margin", "").unwrap() - 0.02).abs() < 1e-12);
        assert_eq!(r.histogram("health_block_pec", "").unwrap().total(), 4);
        assert_eq!(r.counter("health_samples", ""), 1);
    }

    #[test]
    fn wear_histogram_tracks_latest_sample_not_accumulation() {
        let mut m = HealthMonitor::default();
        m.observe(&base_sample());
        m.observe(&base_sample());
        // Re-published, not accumulated: still one entry per block.
        assert_eq!(m.registry().histogram("health_block_pec", "").unwrap().total(), 4);
        assert_eq!(m.registry().counter("health_samples", ""), 2);
    }

    #[test]
    fn ber_alert_fires_once_per_crossing_not_per_sample() {
        let mut m = HealthMonitor::default();
        let mut bad = base_sample();
        bad.corrected_bits_max = 4; // 4 * 2 >= 8 -> within 2x of failure

        let fired = m.observe(&bad);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].code, "ber-margin");
        assert_eq!(fired[0].severity, Severity::Critical);

        // Still in violation: no new alert.
        assert!(m.observe(&bad).is_empty());
        assert!(m.observe(&bad).is_empty());
        assert_eq!(m.alerts().len(), 1);

        // Clears, then crosses again: exactly one more.
        let ok = base_sample();
        assert!(m.observe(&ok).is_empty());
        let fired = m.observe(&bad);
        assert_eq!(fired.len(), 1);
        assert_eq!(m.alerts().len(), 2);
        assert_eq!(m.registry().counter("health_alerts", "critical"), 2);
    }

    #[test]
    fn per_chip_gauges_carry_the_chip_label() {
        let mut m = HealthMonitor::default();
        let mut s = base_sample();
        s.per_chip = vec![
            ChipHealth { chip: 0, hottest_pec: 500, free_blocks: 3, ..ChipHealth::default() },
            ChipHealth { chip: 1, hottest_pec: 20, free_blocks: 2, ..ChipHealth::default() },
        ];
        m.observe(&s);
        let r = m.registry();
        assert_eq!(r.gauge("health_chip_hottest_pec", "chip:0"), Some(500.0));
        assert_eq!(r.gauge("health_chip_hottest_pec", "chip:1"), Some(20.0));
        assert_eq!(r.gauge("health_chip_free_blocks", "chip:1"), Some(2.0));
        // Single-chip stacks publish no per-chip series at all.
        let mut single = HealthMonitor::default();
        single.observe(&base_sample());
        assert_eq!(single.registry().gauge("health_chip_hottest_pec", "chip:0"), None);
    }

    #[test]
    fn wear_and_capacity_alerts() {
        let mut m = HealthMonitor::new(HealthThresholds {
            wear_budget_pec: 100,
            ..HealthThresholds::default()
        });
        let mut s = base_sample();
        s.advertised_slots = 5; // below the 6-slot reserve
        let fired = m.observe(&s);
        let codes: Vec<&str> = fired.iter().map(|a| a.code.as_str()).collect();
        assert!(codes.contains(&"wear-budget"), "{codes:?}");
        assert!(codes.contains(&"capacity-reserve"), "{codes:?}");
    }

    #[test]
    fn detectability_alert_needs_a_probe() {
        let mut m = HealthMonitor::default();
        let mut s = base_sample();
        s.detect_accuracy = None;
        assert!(m.observe(&s).is_empty());
        assert_eq!(m.registry().gauge("health_detect_margin", ""), None);
        s.detect_accuracy = Some(0.75);
        let fired = m.observe(&s);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].code, "detectability");
    }

    #[test]
    fn raw_mode_disables_ber_alert() {
        let mut m = HealthMonitor::default();
        let mut s = base_sample();
        s.correctable_bits_per_slot = 0; // raw hidden bits, no ECC
        s.corrected_bits_max = 1000;
        assert!(m.observe(&s).is_empty());
        assert_eq!(m.registry().gauge("health_ber_margin", ""), Some(1.0));
    }
}
