//! Exporters over a [`TraceReport`]: a human-readable span tree with the
//! metrics registry appended, a JSONL event stream, and a collapsed-stack
//! flamegraph text (`path;sub;leaf <integer µs>` per line — the format
//! `flamegraph.pl` and speedscope ingest).

use crate::json::{write_escaped, write_num};
use crate::tracer::{SpanNode, TraceEvent, TraceEventKind, TraceReport};
use stash_flash::{FaultKind, OpKind};
use std::fmt::Write as _;

/// Schema tag stamped into the `trace_summary` header of every JSONL
/// trace artifact; `bench_check` requires it on `TRACE_*.jsonl` files.
pub const TRACE_SCHEMA: &str = "stash-trace/1";

/// Renders the aggregated span tree plus metrics as indented text.
pub fn render_tree(report: &TraceReport) -> String {
    let mut out = String::new();
    let total = report.totals.device_time_us.max(f64::MIN_POSITIVE);
    let _ = writeln!(
        out,
        "trace: {:.1} us device time, {:.1} us wait, {:.1} uJ, {} ops, {} faults",
        report.totals.device_time_us,
        report.totals.wait_time_us,
        report.totals.energy_uj,
        report.totals.total_ops(),
        report.totals.total_faults(),
    );
    render_node(&mut out, &report.root, 0, total);
    if report.dropped_events > 0 {
        let _ = writeln!(out, "({} raw events dropped by the ring buffer)", report.dropped_events);
    }
    if !report.counters.is_empty() || !report.gauges.is_empty() || !report.histograms.is_empty() {
        let _ = writeln!(out, "metrics:");
        for (name, label, v) in &report.counters {
            let _ = writeln!(out, "  counter {}{} = {}", name, fmt_label(label), v);
        }
        for (name, label, v) in &report.gauges {
            let _ = writeln!(out, "  gauge {}{} = {}", name, fmt_label(label), v);
        }
        for (name, label, h) in &report.histograms {
            let _ = writeln!(
                out,
                "  histogram {}{}: n={} mean={:.2} p50<={} p99<={}",
                name,
                fmt_label(label),
                h.total(),
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.99),
            );
            for (lo, hi, c) in h.rows() {
                let _ = writeln!(out, "    [{lo}..={hi}] {c}");
            }
        }
    }
    out
}

fn fmt_label(label: &str) -> String {
    if label.is_empty() {
        String::new()
    } else {
        format!("{{{label}}}")
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize, grand_total_us: f64) {
    let total = node.total();
    let _ = writeln!(
        out,
        "{:indent$}{} x{}: total {:.1} us ({:.1}%), self {:.1} us, {:.1} uJ, ops {}{}",
        "",
        node.name,
        node.count.max(1),
        total.device_time_us,
        100.0 * total.device_time_us / grand_total_us,
        node.meter.device_time_us,
        total.energy_uj,
        total.total_ops(),
        if total.total_faults() > 0 {
            format!(", faults {}", total.total_faults())
        } else {
            String::new()
        },
        indent = depth * 2,
    );
    for c in &node.children {
        render_node(out, c, depth + 1, grand_total_us);
    }
}

/// Serializes the raw event stream as JSONL: a `trace_summary` header line
/// with the grand totals, then one object per retained event.
pub fn export_jsonl(report: &TraceReport) -> String {
    let mut out = String::new();
    let t = &report.totals;
    out.push_str("{\"schema\":\"");
    out.push_str(TRACE_SCHEMA);
    out.push_str("\",\"type\":\"trace_summary\",\"device_time_us\":");
    write_num(&mut out, t.device_time_us);
    out.push_str(",\"wait_time_us\":");
    write_num(&mut out, t.wait_time_us);
    out.push_str(",\"energy_uj\":");
    write_num(&mut out, t.energy_uj);
    let _ = writeln!(
        out,
        ",\"ops\":{},\"faults\":{},\"events\":{},\"dropped_events\":{}}}",
        t.total_ops(),
        t.total_faults(),
        report.events.len(),
        report.dropped_events,
    );
    for e in &report.events {
        write_event(&mut out, e);
        out.push('\n');
    }
    out
}

fn write_event(out: &mut String, e: &TraceEvent) {
    let _ = write!(out, "{{\"seq\":{},\"t_us\":", e.seq);
    write_num(out, e.t_us);
    out.push_str(",\"path\":");
    write_escaped(out, &e.path);
    match &e.kind {
        TraceEventKind::SpanStart { label } => {
            out.push_str(",\"type\":\"span_start\"");
            if let Some(l) = label {
                out.push_str(",\"label\":");
                write_escaped(out, l);
            }
        }
        TraceEventKind::SpanEnd => out.push_str(",\"type\":\"span_end\""),
        TraceEventKind::Op { kind, device_us, energy_uj } => {
            out.push_str(",\"type\":\"op\",\"op\":");
            write_escaped(out, &kind.to_string());
            out.push_str(",\"device_us\":");
            write_num(out, *device_us);
            out.push_str(",\"energy_uj\":");
            write_num(out, *energy_uj);
        }
        TraceEventKind::Fault { kind } => {
            out.push_str(",\"type\":\"fault\",\"fault\":");
            write_escaped(out, &kind.to_string());
        }
        TraceEventKind::Wait { wait_us } => {
            out.push_str(",\"type\":\"wait\",\"wait_us\":");
            write_num(out, *wait_us);
        }
    }
    out.push('}');
}

/// Serializes the span tree as collapsed stacks: one line per span with
/// nonzero self device time, `root;parent;leaf <integer µs>`. Feed the
/// output to any flamegraph renderer. Sub-microsecond residue rounds to
/// the nearest µs; spans whose self time rounds to 0 are omitted.
pub fn export_collapsed(report: &TraceReport) -> String {
    let mut lines = Vec::new();
    collect_collapsed(&report.root, String::new(), &mut lines);
    lines.sort();
    let mut out = String::new();
    for (path, us) in lines {
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

fn collect_collapsed(node: &SpanNode, prefix: String, lines: &mut Vec<(String, u64)>) {
    let path =
        if prefix.is_empty() { node.name.clone() } else { format!("{prefix};{}", node.name) };
    let us = node.meter.device_time_us.round() as u64;
    if us > 0 {
        lines.push((path.clone(), us));
    }
    for c in &node.children {
        collect_collapsed(c, path.clone(), lines);
    }
}

/// Per-kind totals extracted from a report for machine-readable bench
/// artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindCounts {
    /// `(op kind name, count)` for every op kind.
    pub ops: Vec<(String, u64)>,
    /// `(fault kind name, count)` for every fault kind.
    pub faults: Vec<(String, u64)>,
}

/// Summary counts by op/fault kind name.
pub fn kind_counts(report: &TraceReport) -> KindCounts {
    KindCounts {
        ops: OpKind::ALL.iter().map(|k| (k.to_string(), report.totals.count(*k))).collect(),
        faults: FaultKind::ALL
            .iter()
            .map(|k| (k.to_string(), report.totals.fault_count(*k)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::tracer::Tracer;
    use stash_flash::Recorder;

    fn sample_report() -> TraceReport {
        let t = Tracer::shared();
        {
            let _e = t.span("encode_page");
            for _ in 0..3 {
                let _p = t.span("pp_step");
                t.record_op(OpKind::PartialProgram, 600.0, 60.0);
            }
            let _v = t.span("verify_read");
            t.record_op(OpKind::Read, 90.0, 50.0);
        }
        t.record_wait(50.0);
        t.observe("pp_steps_per_page", "", 3);
        t.report()
    }

    #[test]
    fn tree_render_mentions_spans_and_metrics() {
        let s = render_tree(&sample_report());
        assert!(s.contains("encode_page"));
        assert!(s.contains("pp_step x3"));
        assert!(s.contains("histogram pp_steps_per_page"));
        assert!(s.contains("counter chip_op{partial-program} = 3"));
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let out = export_jsonl(&sample_report());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() > 5);
        for line in &lines {
            let v = json::parse(line).expect("every JSONL line parses");
            assert!(v.get("type").is_some() || v.get("seq").is_some());
        }
        // Header carries the totals.
        let head = json::parse(lines[0]).unwrap();
        assert_eq!(head.get("schema").and_then(json::JsonValue::as_str), Some(TRACE_SCHEMA));
        assert_eq!(head.get("type").and_then(json::JsonValue::as_str), Some("trace_summary"));
        assert_eq!(head.get("device_time_us").and_then(json::JsonValue::as_f64), Some(1890.0));
    }

    #[test]
    fn collapsed_stacks_attribute_leaf_time() {
        let out = export_collapsed(&sample_report());
        let mut total = 0u64;
        for line in out.lines() {
            let (path, us) = line.rsplit_once(' ').unwrap();
            assert!(path.starts_with("root"));
            total += us.parse::<u64>().unwrap();
        }
        assert!(out.contains("root;encode_page;pp_step 1800"));
        assert!(out.contains("root;encode_page;verify_read 90"));
        // All device time is attributed (wait time is excluded by design).
        assert_eq!(total, 1890);
    }
}
