//! The flight recorder: a bounded ring of the last N device operations
//! with causal context, dumped to a schema-versioned `POSTMORTEM_*.jsonl`
//! artifact when the stack fails.
//!
//! A [`FlightRecorder`] implements flash-model's
//! [`FlightSink`](stash_flash::FlightSink) and is fed by a
//! [`FlightDevice`](stash_flash::FlightDevice) in the middleware stack
//! (canonical order `FaultDevice<FlightDevice<TraceDevice<Chip>>>`). The
//! ring holds fixed-capacity, all-`Copy` [`FlightEntry`] records — zero
//! heap traffic in steady state — and each entry carries the tracer's
//! innermost span *node id* at the moment the op was issued; the
//! semicolon-joined span path is resolved only at dump time (tracer node
//! ids are append-only, so a stored id never dangles).
//!
//! # Dump triggers
//!
//! * **Power loss** — the `PowerCutDevice` reports
//!   `FaultKind::PowerLoss` *before* landing the torn op, so the recorder
//!   dumps immediately (covering cut-before-op) and re-dumps over the same
//!   file when the torn op arrives (covering cut-mid-op), leaving the torn
//!   op as the final entry either way.
//! * **Block retirement** — a newly grown-bad block
//!   (`FaultKind::GrownBad`).
//! * **Health alerts** — [`dump_on_alerts`](FlightRecorder::dump_on_alerts)
//!   called with the edge-triggered alerts from
//!   [`HealthMonitor::observe`](crate::health::HealthMonitor::observe).
//! * **On demand** — [`dump`](FlightRecorder::dump) (the CLI `postmortem`
//!   command).
//!
//! Auto-dump I/O errors are swallowed (a sink cannot propagate them
//! mid-operation) but counted via [`io_errors`](FlightRecorder::io_errors).
//!
//! Determinism: ring contents and rendered dumps depend only on the op
//! stream, never on wall-clock time or thread scheduling, so a workload
//! produces byte-identical postmortems for any `STASH_THREADS`.

use crate::health::Alert;
use crate::json::{write_escaped, write_num};
use crate::tracer::Tracer;
use stash_flash::{FaultKind, FlightOp, FlightSink};
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Schema tag stamped into the `postmortem_summary` header of every dump;
/// `bench_check` requires it on `POSTMORTEM_*.jsonl` files.
pub const POSTMORTEM_SCHEMA: &str = "stash-postmortem/1";

/// Default ring capacity: enough context to see the whole failing phase
/// without the artifact growing past a few tens of kilobytes.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One ring entry: the op as the middleware reported it, stamped with the
/// recorder's monotonic sequence number, the simulated clock after the op,
/// and the tracer's innermost span node at issue time. All-`Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEntry {
    /// Monotonic sequence number (never reused, survives ring wrap).
    pub seq: u64,
    /// Simulated clock (device time + waits, µs) after the op.
    pub t_us: f64,
    /// Tracer span node id at issue time (0 = root / no tracer).
    pub span: usize,
    /// The op as reported by the `FlightDevice`.
    pub op: FlightOp,
}

struct FlightInner {
    capacity: usize,
    ring: Vec<FlightEntry>,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    seq: u64,
    clock_us: f64,
    faults: u64,
    tracer: Option<Arc<Tracer>>,
    dump_dir: PathBuf,
    label: String,
    /// Set by a power-loss dump; the next torn op re-dumps over the same
    /// artifact so cut-mid-op postmortems end with the torn op.
    armed_redump: bool,
    last_dump: Option<PathBuf>,
    dumps: u64,
    io_errors: u64,
}

/// Bounded post-mortem ring; see the module docs for the full story.
pub struct FlightRecorder {
    inner: Mutex<FlightInner>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("flight lock");
        f.debug_struct("FlightRecorder")
            .field("capacity", &inner.capacity)
            .field("captured", &inner.ring.len())
            .field("seq", &inner.seq)
            .field("dumps", &inner.dumps)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` ops, dumping into
    /// `results/` under the label `flight` until told otherwise.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Mutex::new(FlightInner {
                capacity,
                ring: Vec::with_capacity(capacity),
                head: 0,
                seq: 0,
                clock_us: 0.0,
                faults: 0,
                tracer: None,
                dump_dir: PathBuf::from("results"),
                label: "flight".to_owned(),
                armed_redump: false,
                last_dump: None,
                dumps: 0,
                io_errors: 0,
            }),
        }
    }

    /// Creates a shared recorder with the default capacity — the common
    /// entry point: `let fr = FlightRecorder::shared();`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new(DEFAULT_FLIGHT_CAPACITY))
    }

    /// Attaches (or, with `None`, detaches) the tracer whose span stack
    /// stamps each entry's causal context.
    pub fn set_tracer(&self, tracer: Option<Arc<Tracer>>) {
        self.inner.lock().expect("flight lock").tracer = tracer;
    }

    /// Sets the directory postmortem artifacts are written into.
    pub fn set_dump_dir(&self, dir: impl Into<PathBuf>) {
        self.inner.lock().expect("flight lock").dump_dir = dir.into();
    }

    /// Sets the artifact label: dumps land at
    /// `<dir>/POSTMORTEM_<label>_<trigger>.jsonl`.
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().expect("flight lock").label = label.into();
    }

    /// Number of entries currently captured (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flight lock").ring.len()
    }

    /// Whether no ops have been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total ops ever observed (capped ring notwithstanding).
    pub fn seq(&self) -> u64 {
        self.inner.lock().expect("flight lock").seq
    }

    /// Auto-dump I/O errors swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.inner.lock().expect("flight lock").io_errors
    }

    /// Path of the most recent dump, if any.
    pub fn last_dump(&self) -> Option<PathBuf> {
        self.inner.lock().expect("flight lock").last_dump.clone()
    }

    /// Ring contents, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.inner.lock().expect("flight lock").snapshot()
    }

    /// Renders the current ring as a stash-postmortem/1 JSONL document
    /// without touching the filesystem.
    pub fn render(&self, trigger: &str) -> String {
        self.inner.lock().expect("flight lock").render(trigger)
    }

    /// Dumps the current ring on demand; returns the artifact path.
    ///
    /// # Errors
    ///
    /// Fails when the artifact cannot be written.
    pub fn dump(&self, trigger: &str) -> std::io::Result<PathBuf> {
        self.inner.lock().expect("flight lock").dump(trigger)
    }

    /// Dumps once for a batch of newly fired health alerts (the
    /// edge-triggered output of `HealthMonitor::observe`), labelled by the
    /// most severe alert's code. Returns the artifact path, or `None` when
    /// the batch was empty.
    pub fn dump_on_alerts(&self, alerts: &[Alert]) -> Option<PathBuf> {
        let worst = alerts.iter().max_by_key(|a| a.severity)?;
        let trigger = format!("alert-{}", sanitize(&worst.code));
        let mut inner = self.inner.lock().expect("flight lock");
        match inner.dump(&trigger) {
            Ok(p) => Some(p),
            Err(_) => {
                inner.io_errors += 1;
                None
            }
        }
    }
}

/// Keeps trigger strings filesystem-safe: alphanumerics, `-`, `_`, `.`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect()
}

impl FlightInner {
    fn snapshot(&self) -> Vec<FlightEntry> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() == self.capacity {
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
        } else {
            out.extend_from_slice(&self.ring);
        }
        out
    }

    fn push(&mut self, e: FlightEntry) {
        if self.ring.len() < self.capacity {
            self.ring.push(e);
        } else {
            self.ring[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn span_path(&self, node: usize) -> String {
        match &self.tracer {
            Some(t) => t.span_path(node).unwrap_or_else(|| "root".to_owned()),
            None => "root".to_owned(),
        }
    }

    fn render(&self, trigger: &str) -> String {
        let entries = self.snapshot();
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(POSTMORTEM_SCHEMA);
        out.push_str("\",\"type\":\"postmortem_summary\",\"trigger\":");
        write_escaped(&mut out, trigger);
        let _ = write!(
            out,
            ",\"captured\":{},\"capacity\":{},\"total_ops\":{},\"faults\":{},\"clock_us\":",
            entries.len(),
            self.capacity,
            self.seq,
            self.faults,
        );
        write_num(&mut out, self.clock_us);
        out.push_str("}\n");
        for e in &entries {
            self.write_entry(&mut out, e);
            out.push('\n');
        }
        out
    }

    fn write_entry(&self, out: &mut String, e: &FlightEntry) {
        let _ = write!(out, "{{\"seq\":{},\"t_us\":", e.seq);
        write_num(out, e.t_us);
        out.push_str(",\"op\":");
        write_escaped(out, &e.op.kind.to_string());
        if let Some(b) = e.op.block {
            let _ = write!(out, ",\"block\":{b}");
        }
        if let Some(lb) = e.op.local_block {
            let _ = write!(out, ",\"local_block\":{lb}");
        }
        if let Some(p) = e.op.page {
            let _ = write!(out, ",\"page\":{p}");
        }
        let _ = write!(out, ",\"chip\":{},\"device_us\":", e.op.chip);
        write_num(out, e.op.device_us);
        out.push_str(",\"energy_uj\":");
        write_num(out, e.op.energy_uj);
        let _ = write!(out, ",\"ok\":{}", e.op.ok);
        if let Some(err) = e.op.err {
            out.push_str(",\"err\":");
            write_escaped(out, err);
        }
        if e.op.torn {
            out.push_str(",\"torn\":true");
        }
        out.push_str(",\"span\":");
        write_escaped(out, &self.span_path(e.span));
        out.push('}');
    }

    fn dump_path(&self, trigger: &str) -> PathBuf {
        self.dump_dir.join(format!("POSTMORTEM_{}_{}.jsonl", self.label, sanitize(trigger)))
    }

    fn dump(&mut self, trigger: &str) -> std::io::Result<PathBuf> {
        let path = self.dump_path(trigger);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.render(trigger))?;
        self.last_dump = Some(path.clone());
        self.dumps += 1;
        Ok(path)
    }

    fn auto_dump(&mut self, trigger: &str) {
        if self.dump(trigger).is_err() {
            self.io_errors += 1;
        }
    }
}

impl FlightSink for FlightRecorder {
    fn record_flight_op(&self, op: &FlightOp) {
        let mut inner = self.inner.lock().expect("flight lock");
        inner.clock_us += op.device_us;
        let seq = inner.seq;
        inner.seq += 1;
        let span = match &inner.tracer {
            Some(t) => t.current_span_node(),
            None => 0,
        };
        let entry = FlightEntry { seq, t_us: inner.clock_us, span, op: *op };
        inner.push(entry);
        if op.torn && inner.armed_redump {
            // The power-loss dump fired before the torn op landed (the cut
            // gate reports the fault first); refresh the artifact so it
            // ends with the torn op.
            inner.armed_redump = false;
            inner.auto_dump("power-loss");
        }
    }

    fn record_flight_fault(&self, kind: FaultKind) {
        let mut inner = self.inner.lock().expect("flight lock");
        inner.faults += 1;
        match kind {
            FaultKind::PowerLoss => {
                inner.auto_dump("power-loss");
                inner.armed_redump = true;
            }
            FaultKind::GrownBad => inner.auto_dump("grown-bad"),
            _ => {}
        }
    }

    fn record_flight_wait(&self, wait_us: f64) {
        self.inner.lock().expect("flight lock").clock_us += wait_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use stash_flash::OpKind;

    fn op(kind: OpKind, block: u32, ok: bool) -> FlightOp {
        FlightOp {
            kind,
            block: Some(block),
            local_block: Some(block),
            page: Some(0),
            chip: 0,
            device_us: 100.0,
            energy_uj: 10.0,
            ok,
            err: if ok { None } else { Some("bad-block") },
            torn: false,
        }
    }

    #[test]
    fn ring_keeps_only_the_last_capacity_ops() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u32 {
            fr.record_flight_op(&op(OpKind::Read, i, true));
        }
        let entries = fr.entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(fr.seq(), 10);
        let blocks: Vec<u32> = entries.iter().map(|e| e.op.block.unwrap()).collect();
        assert_eq!(blocks, vec![6, 7, 8, 9]);
        // Oldest-first, strictly increasing seq and clock.
        for w in entries.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].t_us < w[1].t_us);
        }
    }

    #[test]
    fn render_is_valid_schema_versioned_jsonl() {
        let fr = FlightRecorder::new(8);
        fr.record_flight_op(&op(OpKind::Program, 3, true));
        fr.record_flight_op(&op(OpKind::Read, 3, false));
        let doc = fr.render("manual");
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        let head = json::parse(lines[0]).unwrap();
        assert_eq!(head.get("schema").and_then(json::JsonValue::as_str), Some(POSTMORTEM_SCHEMA));
        assert_eq!(head.get("captured").and_then(json::JsonValue::as_f64), Some(2.0));
        let failed = json::parse(lines[2]).unwrap();
        assert_eq!(failed.get("ok").and_then(json::JsonValue::as_bool), Some(false));
        assert_eq!(failed.get("err").and_then(json::JsonValue::as_str), Some("bad-block"));
        assert_eq!(failed.get("span").and_then(json::JsonValue::as_str), Some("root"));
    }

    #[test]
    fn power_loss_dumps_and_torn_op_refreshes_the_artifact() {
        let dir = std::env::temp_dir().join("stash_flight_test_pl");
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(8);
        fr.set_dump_dir(&dir);
        fr.set_label("t");
        fr.record_flight_op(&op(OpKind::Program, 1, true));
        fr.record_flight_fault(FaultKind::PowerLoss);
        let path = fr.last_dump().expect("power loss dumps");
        let first = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first.lines().count(), 2, "one summary + one op");
        // The torn op lands after the fault report and refreshes the dump.
        let mut torn = op(OpKind::Program, 2, true);
        torn.torn = true;
        fr.record_flight_op(&torn);
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(second.lines().count(), 3);
        let last = json::parse(second.lines().last().unwrap()).unwrap();
        assert_eq!(last.get("torn").and_then(json::JsonValue::as_bool), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn span_context_resolves_through_an_attached_tracer() {
        let tracer = Tracer::shared();
        let fr = FlightRecorder::new(8);
        fr.set_tracer(Some(Arc::clone(&tracer)));
        {
            let _g = tracer.span("host_write");
            fr.record_flight_op(&op(OpKind::Program, 0, true));
        }
        fr.record_flight_op(&op(OpKind::Read, 0, true));
        let doc = fr.render("manual");
        let lines: Vec<&str> = doc.lines().collect();
        let inside = json::parse(lines[1]).unwrap();
        assert_eq!(inside.get("span").and_then(json::JsonValue::as_str), Some("root;host_write"));
        let outside = json::parse(lines[2]).unwrap();
        assert_eq!(outside.get("span").and_then(json::JsonValue::as_str), Some("root"));
    }

    #[test]
    fn grown_bad_triggers_a_dump_and_alerts_use_their_code() {
        let dir = std::env::temp_dir().join("stash_flight_test_gb");
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(8);
        fr.set_dump_dir(&dir);
        fr.set_label("t");
        fr.record_flight_op(&op(OpKind::Erase, 5, true));
        fr.record_flight_fault(FaultKind::GrownBad);
        let p = fr.last_dump().unwrap();
        assert!(p.file_name().unwrap().to_str().unwrap().contains("grown-bad"));
        assert!(p.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
