//! Prometheus text exposition for a [`Registry`], plus a parser for the
//! same subset of the format — enough for a scraper (or a test) to
//! round-trip everything the writer emits without an external client
//! library.
//!
//! Mapping: a series label (our single free-form label string) becomes a
//! `series="…"` label pair; histograms export cumulative `_bucket` lines
//! with the log2 bucket upper bounds as `le` values, then `_sum` and
//! `_count`. Output is deterministic: series render in registry
//! (`BTreeMap`) order.

use crate::metrics::{Log2Histogram, Registry, LOG2_BUCKETS};
use std::fmt::Write as _;

/// Renders the whole registry in Prometheus text exposition format.
pub fn render_prometheus(r: &Registry) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {} {kind}\n", sanitize(name));
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };

    for ((name, label), v) in r.counters() {
        type_line(&mut out, name, "counter");
        let _ = writeln!(out, "{}{} {v}", sanitize(name), label_pair(label, None));
    }
    for ((name, label), v) in r.gauges() {
        type_line(&mut out, name, "gauge");
        out.push_str(&sanitize(name));
        out.push_str(&label_pair(label, None));
        out.push(' ');
        crate::json::write_num(&mut out, *v);
        out.push('\n');
    }
    for ((name, label), h) in r.histograms() {
        type_line(&mut out, name, "histogram");
        let base = sanitize(name);
        let mut cumulative = 0u64;
        for (b, &c) in h.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let (_, hi) = Log2Histogram::bucket_bounds(b);
            let _ = writeln!(
                out,
                "{base}_bucket{} {cumulative}",
                label_pair(label, Some(&hi.to_string()))
            );
        }
        let _ = writeln!(out, "{base}_bucket{} {cumulative}", label_pair(label, Some("+Inf")));
        let _ = writeln!(out, "{base}_sum{} {}", label_pair(label, None), h.sum());
        let _ = writeln!(out, "{base}_count{} {}", label_pair(label, None), h.total());
    }
    out
}

/// Parses text previously produced by [`render_prometheus`] back into a
/// [`Registry`]. Histograms are rebuilt exactly (our `le` bounds are the
/// log2 bucket bounds, and `_sum` is an exact integer for `u64` samples).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Registry, String> {
    let mut r = Registry::new();
    let mut kinds: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    // Histogram accumulation: (name, label) -> (bucket counts, sum, count).
    type HistAcc = (Vec<(usize, u64)>, u128, u64);
    let mut hists: std::collections::BTreeMap<(String, String), HistAcc> = Default::default();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| format!("line {lineno}: bare TYPE"))?;
            let kind = it.next().ok_or_else(|| format!("line {lineno}: TYPE without kind"))?;
            kinds.insert(name.to_owned(), kind.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value on sample line"))?;
        let (name, labels) = split_series(series, lineno)?;
        // A `chip` label folds back into the registry's `chip:N` label
        // convention, inverting the renderer's special case exactly.
        let label = labels
            .iter()
            .find(|(k, _)| k == "series")
            .map(|(_, v)| v.clone())
            .or_else(|| labels.iter().find(|(k, _)| k == "chip").map(|(_, v)| format!("chip:{v}")))
            .unwrap_or_default();

        // A histogram's family name is the sample name minus its suffix.
        let (family, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s).map(|f| (f, *s)))
            .filter(|(f, _)| kinds.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or((name.as_str(), ""));

        match (kinds.get(family).map(String::as_str), suffix) {
            (Some("histogram"), "_bucket") => {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("line {lineno}: bucket without le"))?;
                if le == "+Inf" {
                    continue; // redundant with _count
                }
                let hi: u64 =
                    le.parse().map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?;
                let cum: u64 =
                    value.parse().map_err(|_| format!("line {lineno}: bad bucket count"))?;
                let entry = hists.entry((family.to_owned(), label)).or_default();
                entry.0.push((Log2Histogram::bucket_of(hi), cum));
            }
            (Some("histogram"), "_sum") => {
                let sum: u128 = value.parse().map_err(|_| format!("line {lineno}: bad sum"))?;
                hists.entry((family.to_owned(), label)).or_default().1 = sum;
            }
            (Some("histogram"), "_count") => {
                let n: u64 = value.parse().map_err(|_| format!("line {lineno}: bad count"))?;
                hists.entry((family.to_owned(), label)).or_default().2 = n;
            }
            (Some("counter"), _) => {
                let v: u64 =
                    value.parse().map_err(|_| format!("line {lineno}: bad counter value"))?;
                r.counter_add(&name, &label, v);
            }
            (Some("gauge"), _) => {
                let v: f64 =
                    value.parse().map_err(|_| format!("line {lineno}: bad gauge value"))?;
                r.gauge_set(&name, &label, v);
            }
            (kind, _) => {
                return Err(format!("line {lineno}: sample {name:?} has no TYPE (saw {kind:?})"))
            }
        }
    }

    for ((name, label), (cum_buckets, sum, count)) in hists {
        // De-cumulate the bucket counts (they were emitted lowest-first).
        let mut counts: Vec<(usize, u64)> = Vec::with_capacity(cum_buckets.len());
        let mut prev = 0u64;
        for (b, cum) in cum_buckets {
            if b >= LOG2_BUCKETS || cum < prev {
                return Err(format!("histogram {name:?}: non-monotonic buckets"));
            }
            counts.push((b, cum - prev));
            prev = cum;
        }
        let h = Log2Histogram::from_bucket_counts(&counts, sum);
        if h.total() != count {
            return Err(format!(
                "histogram {name:?}: buckets sum to {} but _count says {count}",
                h.total()
            ));
        }
        r.histogram_set(&name, &label, h);
    }
    Ok(r)
}

/// Replaces everything outside `[a-zA-Z0-9_:]` so series names are valid
/// Prometheus metric names.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

/// Formats the `{series="…",le="…"}` label block (empty when no labels).
/// A registry label of the form `chip:N` is the per-chip attribution
/// convention and renders as a proper `chip="N"` label instead of a
/// generic `series` pair, so array dashboards can aggregate by chip.
fn label_pair(label: &str, le: Option<&str>) -> String {
    let mut pairs = Vec::new();
    if let Some(chip) = label.strip_prefix("chip:").filter(|c| c.chars().all(char::is_numeric)) {
        pairs.push(format!("chip=\"{chip}\""));
    } else if !label.is_empty() {
        pairs.push(format!("series=\"{}\"", escape_label(label)));
    }
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Splits `name{k="v",…}` into the name and its label pairs.
fn split_series(series: &str, lineno: usize) -> Result<(String, Vec<(String, String)>), String> {
    let Some(open) = series.find('{') else {
        return Ok((series.to_owned(), Vec::new()));
    };
    let name = series[..open].to_owned();
    let body = series[open + 1..]
        .strip_suffix('}')
        .ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
    let mut labels = Vec::new();
    for pair in split_label_pairs(body) {
        let (k, v) =
            pair.split_once('=').ok_or_else(|| format!("line {lineno}: label pair without '='"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: unquoted label value"))?;
        labels.push((
            k.to_owned(),
            v.replace("\\n", "\n").replace("\\\"", "\"").replace("\\\\", "\\"),
        ));
    }
    Ok((name, labels))
}

/// Splits a label body on commas that sit outside quoted values.
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_quotes && !escaped => {
                escaped = true;
                cur.push(c);
            }
            '"' if !escaped => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            c => {
                escaped = false;
                cur.push(c);
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.counter_add("chip_op", "partial-program", 12);
        r.counter_add("chip_op", "read", 7);
        r.counter_add("health_samples", "", 3);
        r.gauge_set("health_ber_margin", "", 0.875);
        r.gauge_set("free_blocks", "", 5.0);
        for v in [0u64, 1, 1, 9, 200, 200, 200] {
            r.observe("pp_steps", "", v);
        }
        for v in [3u64, 5] {
            r.observe("retries", "read-sweep", v);
        }
        r.gauge_set("health_chip_hottest_pec", "chip:0", 500.0);
        r.gauge_set("health_chip_hottest_pec", "chip:1", 20.0);
        r
    }

    #[test]
    fn exposition_mentions_types_and_series() {
        let text = render_prometheus(&sample_registry());
        assert!(text.contains("# TYPE chip_op counter"));
        assert!(text.contains("chip_op{series=\"partial-program\"} 12"));
        assert!(text.contains("# TYPE health_ber_margin gauge"));
        assert!(text.contains("health_ber_margin 0.875"));
        assert!(text.contains("# TYPE pp_steps histogram"));
        assert!(text.contains("pp_steps_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("pp_steps_sum 611"));
        assert!(text.contains("pp_steps_count 7"));
        assert!(text.contains("retries_bucket{series=\"read-sweep\",le=\"+Inf\"} 2"));
        assert!(text.contains("health_chip_hottest_pec{chip=\"0\"} 500"));
        assert!(text.contains("health_chip_hottest_pec{chip=\"1\"} 20"));
    }

    #[test]
    fn exposition_roundtrips_through_the_parser() {
        let original = sample_registry();
        let text = render_prometheus(&original);
        let back = parse_prometheus(&text).expect("parses");
        assert_eq!(back, original);
        // And the round-trip is a fixed point.
        assert_eq!(render_prometheus(&back), text);
    }

    #[test]
    fn buckets_are_cumulative() {
        let mut r = Registry::new();
        r.observe("h", "", 1);
        r.observe("h", "", 1);
        r.observe("h", "", 4);
        let text = render_prometheus(&r);
        assert!(text.contains("h_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"7\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
    }

    #[test]
    fn sanitizes_hostile_names_and_labels() {
        let mut r = Registry::new();
        r.counter_add("weird name-with.dots", "va\"l\nue", 1);
        let text = render_prometheus(&r);
        assert!(text.contains("weird_name_with_dots"), "{text}");
        let back = parse_prometheus(&text).expect("parses");
        assert_eq!(back.counter("weird_name_with_dots", "va\"l\nue"), 1);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_prometheus("no_type_line 5").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx{open=\"v\" 5").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx not_a_number").is_err());
        assert!(parse_prometheus("# TYPE h histogram\nh_bucket{le=\"oops\"} 1").is_err());
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert_eq!(render_prometheus(&r), "");
        assert_eq!(parse_prometheus("").unwrap(), r);
    }

    #[test]
    fn multi_digit_chip_labels_roundtrip() {
        // Chip indices on sharded arrays run past 9; the `chip:N` label
        // convention must not be single-digit-shaped.
        let mut r = Registry::new();
        for chip in [0u32, 7, 10, 12, 63, 128] {
            r.gauge_set("health_chip_hottest_pec", &format!("chip:{chip}"), f64::from(chip) * 3.0);
            r.counter_add("chip_ops", &format!("chip:{chip}"), u64::from(chip) + 1);
        }
        let text = render_prometheus(&r);
        assert!(text.contains("health_chip_hottest_pec{chip=\"12\"} 36"), "{text}");
        assert!(text.contains("chip_ops{chip=\"128\"} 129"), "{text}");
        // No multi-digit chip leaks into the generic `series` label.
        assert!(!text.contains("series=\"chip:"), "{text}");
        let back = parse_prometheus(&text).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.counter("chip_ops", "chip:63"), 64);
    }

    #[test]
    fn render_is_stable_under_merge_order() {
        // A merged fleet registry must expose the same text no matter
        // which shard was folded in first, or dashboards see churn.
        let mut a = Registry::new();
        a.counter_add("chip_ops", "chip:0", 5);
        a.gauge_set("free_blocks", "", 3.0);
        for v in [1u64, 8] {
            a.observe("pp_steps", "", v);
        }
        let mut b = Registry::new();
        b.counter_add("chip_ops", "chip:11", 9);
        b.gauge_set("health_ber_margin", "", 0.5);
        for v in [2u64, 200] {
            b.observe("pp_steps", "", v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Gauges keep the merged-in value on collision; none collide here,
        // so both orders must render byte-identically.
        assert_eq!(render_prometheus(&ab), render_prometheus(&ba));
        assert!(render_prometheus(&ab).contains("chip_ops{chip=\"11\"} 9"));
    }
}
