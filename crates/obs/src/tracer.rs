//! The span-aware tracer: a [`Recorder`] implementation that attributes
//! every chip operation, fault and wait to the innermost open span, keeps
//! an aggregated span tree with per-span [`MeterSnapshot`] deltas, and
//! records a bounded ring buffer of raw events for the JSONL exporter.
//!
//! All state sits behind one `Mutex` so a single tracer can observe a chip
//! and the layers above it (hider, FTL, hidden volume) at the same time.
//! Spans are guard-based: [`Tracer::span`] returns a [`SpanGuard`] that
//! closes the span on drop, so early returns and `?` unwind correctly.

use crate::metrics::{Log2Histogram, Registry};
use stash_flash::{FaultKind, MeterSnapshot, OpKind, Recorder};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Default bound on the raw-event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Tracer construction options.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Maximum raw events retained; older events are dropped (and counted)
    /// once the ring is full. The span tree and metrics are aggregates and
    /// never drop anything.
    pub event_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { event_capacity: DEFAULT_EVENT_CAPACITY }
    }
}

/// What one raw trace event was.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A span opened (the event's path already includes it).
    SpanStart {
        /// Formatted span label, when the opener provided one.
        label: Option<String>,
    },
    /// A span closed.
    SpanEnd,
    /// One device operation, with its simulated cost.
    Op {
        /// Operation class.
        kind: OpKind,
        /// Device latency billed, microseconds.
        device_us: f64,
        /// Energy billed, microjoules.
        energy_uj: f64,
    },
    /// One injected fault fired.
    Fault {
        /// Fault class.
        kind: FaultKind,
    },
    /// Simulated retry-backoff wait.
    Wait {
        /// Wait length, microseconds.
        wait_us: f64,
    },
}

/// One entry of the bounded event ring.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (never reused, survives ring drops).
    pub seq: u64,
    /// Simulated clock (device time + waits, µs) after the event.
    pub t_us: f64,
    /// Semicolon-joined span path, e.g. `root;encode_page;pp_step`.
    pub path: String,
    /// Event payload.
    pub kind: TraceEventKind,
}

/// Aggregated per-span node of the exported tree. Costs in `meter` are
/// *self* costs (attributed while this span was innermost); use
/// [`total`](Self::total) for self plus descendants.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name (aggregation key under one parent).
    pub name: String,
    /// Times this span was entered.
    pub count: u64,
    /// Self costs: ops, faults, device µs, wait µs, energy µJ.
    pub meter: MeterSnapshot,
    /// Child spans in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Self plus all descendants' costs.
    pub fn total(&self) -> MeterSnapshot {
        let mut acc = self.meter;
        for c in &self.children {
            acc = add_snapshots(&acc, &c.total());
        }
        acc
    }
}

/// Component-wise sum of two snapshots.
pub fn add_snapshots(a: &MeterSnapshot, b: &MeterSnapshot) -> MeterSnapshot {
    let mut counts = [0u64; 5];
    for (i, kind) in OpKind::ALL.iter().enumerate() {
        counts[i] = a.count(*kind) + b.count(*kind);
    }
    let mut faults = [0u64; 4];
    for (i, kind) in FaultKind::ALL.iter().enumerate() {
        faults[i] = a.fault_count(*kind) + b.fault_count(*kind);
    }
    MeterSnapshot::from_parts(
        counts,
        faults,
        a.device_time_us + b.device_time_us,
        a.wait_time_us + b.wait_time_us,
        a.energy_uj + b.energy_uj,
    )
}

/// A point-in-time copy of everything the tracer knows, consumed by the
/// exporters in [`crate::export`].
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The span tree; the root aggregates the whole run and its self costs
    /// are whatever was recorded outside any open span.
    pub root: SpanNode,
    /// Ring-buffer contents, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the ring was full.
    pub dropped_events: u64,
    /// Grand totals observed (equals `root.total()`).
    pub totals: MeterSnapshot,
    /// Counter series `(name, label, value)` in deterministic order.
    pub counters: Vec<(String, String, u64)>,
    /// Gauge series `(name, label, value)` in deterministic order.
    pub gauges: Vec<(String, String, f64)>,
    /// Histogram series `(name, label, histogram)` in deterministic order.
    pub histograms: Vec<(String, String, Log2Histogram)>,
}

struct Node {
    name: String,
    parent: usize,
    children: Vec<usize>,
    count: u64,
    ops: [u64; 5],
    faults: [u64; 4],
    self_device_us: f64,
    self_wait_us: f64,
    self_energy_uj: f64,
}

impl Node {
    fn new(name: String, parent: usize) -> Self {
        Node {
            name,
            parent,
            children: Vec::new(),
            count: 0,
            ops: [0; 5],
            faults: [0; 4],
            self_device_us: 0.0,
            self_wait_us: 0.0,
            self_energy_uj: 0.0,
        }
    }
}

struct Inner {
    cfg: TraceConfig,
    nodes: Vec<Node>,
    stack: Vec<usize>,
    events: VecDeque<TraceEvent>,
    dropped_events: u64,
    clock_us: f64,
    seq: u64,
    metrics: Registry,
}

/// The tracer. Construct with [`Tracer::new`], wrap in an [`Arc`], install
/// on a [`TraceDevice`](stash_flash::TraceDevice) via `set_recorder` (or
/// through any outer middleware via `install_recorder`), and hand clones of
/// the `Arc` to the layers whose phases should appear as spans.
pub struct Tracer {
    inner: Mutex<Inner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("tracer lock");
        f.debug_struct("Tracer")
            .field("spans", &inner.nodes.len())
            .field("events", &inner.events.len())
            .field("clock_us", &inner.clock_us)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl Tracer {
    /// Creates a tracer with the given options.
    pub fn new(cfg: TraceConfig) -> Self {
        let root = Node::new("root".to_owned(), 0);
        Tracer {
            inner: Mutex::new(Inner {
                cfg,
                nodes: vec![root],
                stack: Vec::new(),
                events: VecDeque::new(),
                dropped_events: 0,
                clock_us: 0.0,
                seq: 0,
                metrics: Registry::new(),
            }),
        }
    }

    /// Creates a shared tracer with default options — the common entry
    /// point: `let tracer = Tracer::shared();`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Opens a span named `name` nested under the innermost open span.
    /// The returned guard closes it on drop.
    pub fn span(self: &Arc<Self>, name: &str) -> SpanGuard {
        self.span_inner(name, None)
    }

    /// Opens a span with a formatted instance label (recorded on the raw
    /// event; aggregation stays keyed by `name`).
    pub fn span_labeled(self: &Arc<Self>, name: &str, label: String) -> SpanGuard {
        self.span_inner(name, Some(label))
    }

    fn span_inner(self: &Arc<Self>, name: &str, label: Option<String>) -> SpanGuard {
        let node = {
            let mut inner = self.inner.lock().expect("tracer lock");
            let parent = inner.stack.last().copied().unwrap_or(0);
            let node = inner.find_or_create_child(parent, name);
            inner.nodes[node].count += 1;
            inner.stack.push(node);
            let path = inner.path_of(node);
            inner.push_event(path, TraceEventKind::SpanStart { label });
            node
        };
        SpanGuard { tracer: Arc::clone(self), node }
    }

    /// Adds `n` to a counter series.
    pub fn counter_add(&self, name: &str, label: &str, n: u64) {
        self.inner.lock().expect("tracer lock").metrics.counter_add(name, label, n);
    }

    /// Sets a gauge series.
    pub fn gauge_set(&self, name: &str, label: &str, v: f64) {
        self.inner.lock().expect("tracer lock").metrics.gauge_set(name, label, v);
    }

    /// Records one histogram sample.
    pub fn observe(&self, name: &str, label: &str, v: u64) {
        self.inner.lock().expect("tracer lock").metrics.observe(name, label, v);
    }

    /// Simulated clock observed so far (device time + waits, µs).
    pub fn clock_us(&self) -> f64 {
        self.inner.lock().expect("tracer lock").clock_us
    }

    /// Node id of the innermost open span (0 = the root). Node ids are
    /// append-only for the tracer's lifetime, so a stored id stays
    /// resolvable via [`span_path`](Self::span_path) — this is what lets
    /// the flight recorder keep one `usize` per ring entry and resolve the
    /// full path only at dump time.
    pub fn current_span_node(&self) -> usize {
        self.inner.lock().expect("tracer lock").stack.last().copied().unwrap_or(0)
    }

    /// Resolves a node id (from [`current_span_node`](Self::current_span_node))
    /// to its semicolon-joined span path, or `None` for an unknown id.
    pub fn span_path(&self, node: usize) -> Option<String> {
        let inner = self.inner.lock().expect("tracer lock");
        if node < inner.nodes.len() {
            Some(inner.path_of(node))
        } else {
            None
        }
    }

    /// A point-in-time copy of the tracer's metrics registry, ready to
    /// merge ([`Registry::merge`]) with other registries or hand to the
    /// Prometheus/snapshot exporters.
    pub fn registry(&self) -> Registry {
        self.inner.lock().expect("tracer lock").metrics.clone()
    }

    /// Snapshots the whole trace for export.
    pub fn report(&self) -> TraceReport {
        let inner = self.inner.lock().expect("tracer lock");
        let root = inner.export_node(0);
        let totals = root.total();
        TraceReport {
            root,
            events: inner.events.iter().cloned().collect(),
            dropped_events: inner.dropped_events,
            totals,
            counters: inner
                .metrics
                .counters()
                .map(|((n, l), v)| (n.clone(), l.clone(), *v))
                .collect(),
            gauges: inner.metrics.gauges().map(|((n, l), v)| (n.clone(), l.clone(), *v)).collect(),
            histograms: inner
                .metrics
                .histograms()
                .map(|((n, l), h)| (n.clone(), l.clone(), h.clone()))
                .collect(),
        }
    }

    fn exit_span(&self, node: usize) {
        let mut inner = self.inner.lock().expect("tracer lock");
        // Pop until the guard's own span is closed; tolerates guards
        // dropped out of order instead of corrupting the stack.
        while let Some(top) = inner.stack.pop() {
            let path = inner.path_of(top);
            inner.push_event(path, TraceEventKind::SpanEnd);
            if top == node {
                break;
            }
        }
    }
}

impl Inner {
    fn find_or_create_child(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&c) = self.nodes[parent].children.iter().find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let id = self.nodes.len();
        self.nodes.push(Node::new(name.to_owned(), parent));
        self.nodes[parent].children.push(id);
        id
    }

    fn path_of(&self, mut node: usize) -> String {
        let mut parts = vec![self.nodes[node].name.as_str()];
        while node != 0 {
            node = self.nodes[node].parent;
            parts.push(self.nodes[node].name.as_str());
        }
        parts.reverse();
        parts.join(";")
    }

    fn current_path(&self) -> String {
        self.path_of(self.stack.last().copied().unwrap_or(0))
    }

    fn push_event(&mut self, path: String, kind: TraceEventKind) {
        if self.events.len() >= self.cfg.event_capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push_back(TraceEvent { seq, t_us: self.clock_us, path, kind });
    }

    fn top_node(&mut self) -> &mut Node {
        let id = self.stack.last().copied().unwrap_or(0);
        &mut self.nodes[id]
    }

    fn export_node(&self, id: usize) -> SpanNode {
        let n = &self.nodes[id];
        SpanNode {
            name: n.name.clone(),
            count: n.count,
            meter: MeterSnapshot::from_parts(
                n.ops,
                n.faults,
                n.self_device_us,
                n.self_wait_us,
                n.self_energy_uj,
            ),
            children: n.children.iter().map(|&c| self.export_node(c)).collect(),
        }
    }
}

impl Recorder for Tracer {
    fn record_op(&self, kind: OpKind, device_us: f64, energy_uj: f64) {
        let mut inner = self.inner.lock().expect("tracer lock");
        inner.clock_us += device_us;
        {
            let node = inner.top_node();
            node.ops[MeterSnapshot::op_index(kind)] += 1;
            node.self_device_us += device_us;
            node.self_energy_uj += energy_uj;
        }
        inner.metrics.counter_add("chip_op", &kind.to_string(), 1);
        let path = inner.current_path();
        inner.push_event(path, TraceEventKind::Op { kind, device_us, energy_uj });
    }

    fn record_fault(&self, kind: FaultKind) {
        let mut inner = self.inner.lock().expect("tracer lock");
        inner.top_node().faults[MeterSnapshot::fault_index(kind)] += 1;
        inner.metrics.counter_add("fault", &kind.to_string(), 1);
        let path = inner.current_path();
        inner.push_event(path, TraceEventKind::Fault { kind });
    }

    fn record_wait(&self, wait_us: f64) {
        let mut inner = self.inner.lock().expect("tracer lock");
        inner.clock_us += wait_us;
        inner.top_node().self_wait_us += wait_us;
        let path = inner.current_path();
        inner.push_event(path, TraceEventKind::Wait { wait_us });
    }
}

/// Closes its span when dropped. Keep it alive for the span's extent:
/// `let _span = tracer.span("scrub");`.
#[must_use = "a span guard closes its span when dropped; bind it with `let`"]
pub struct SpanGuard {
    tracer: Arc<Tracer>,
    node: usize,
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard").field("node", &self.node).finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.tracer.exit_span(self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let t = Tracer::shared();
        for _ in 0..3 {
            let _a = t.span("encode_page");
            for _ in 0..2 {
                let _b = t.span("pp_step");
                t.record_op(OpKind::PartialProgram, 600.0, 60.0);
            }
            t.record_op(OpKind::Read, 90.0, 50.0);
        }
        let r = t.report();
        assert_eq!(r.root.children.len(), 1);
        let enc = &r.root.children[0];
        assert_eq!(enc.name, "encode_page");
        assert_eq!(enc.count, 3);
        assert_eq!(enc.children.len(), 1);
        let pp = &enc.children[0];
        assert_eq!(pp.count, 6);
        assert_eq!(pp.meter.count(OpKind::PartialProgram), 6);
        // The read was issued while encode_page was innermost.
        assert_eq!(enc.meter.count(OpKind::Read), 3);
        assert!((enc.total().device_time_us - (6.0 * 600.0 + 3.0 * 90.0)).abs() < 1e-9);
        assert_eq!(r.totals.total_ops(), 9);
    }

    #[test]
    fn ops_outside_spans_land_on_root_self() {
        let t = Tracer::shared();
        t.record_op(OpKind::Erase, 5000.0, 190.0);
        let r = t.report();
        assert_eq!(r.root.meter.count(OpKind::Erase), 1);
        assert!((r.totals.device_time_us - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn clock_tracks_device_time_and_waits() {
        let t = Tracer::shared();
        t.record_op(OpKind::Read, 90.0, 50.0);
        t.record_wait(50.0);
        assert!((t.clock_us() - 140.0).abs() < 1e-9);
        let r = t.report();
        assert!((r.totals.wait_time_us - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fault_events_count_and_label() {
        let t = Tracer::shared();
        {
            let _s = t.span("erase");
            t.record_fault(FaultKind::TransientErase);
        }
        let r = t.report();
        assert_eq!(r.root.children[0].meter.fault_count(FaultKind::TransientErase), 1);
        assert!(r
            .counters
            .iter()
            .any(|(n, l, v)| n == "fault" && l == "transient-erase" && *v == 1));
    }

    #[test]
    fn event_ring_is_bounded_and_counts_drops() {
        let t = Arc::new(Tracer::new(TraceConfig { event_capacity: 4 }));
        for _ in 0..10 {
            t.record_op(OpKind::Read, 90.0, 50.0);
        }
        let r = t.report();
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.dropped_events, 6);
        // Oldest retained event is #6; aggregates never drop.
        assert_eq!(r.events[0].seq, 6);
        assert_eq!(r.totals.count(OpKind::Read), 10);
    }

    #[test]
    fn out_of_order_guard_drop_recovers() {
        let t = Tracer::shared();
        let outer = t.span("outer");
        let inner = t.span("inner");
        drop(outer); // drops inner's frame too
        drop(inner); // must not pop anything else
        let _next = t.span("next");
        let r = t.report();
        let names: Vec<_> = r.root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["outer", "next"], "next nests under root, not under inner");
    }

    #[test]
    fn span_events_record_paths_and_labels() {
        let t = Tracer::shared();
        {
            let _s = t.span_labeled("encode_page", "page=7".to_owned());
        }
        let r = t.report();
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[0].path, "root;encode_page");
        assert!(matches!(
            &r.events[0].kind,
            TraceEventKind::SpanStart { label: Some(l) } if l == "page=7"
        ));
        assert!(matches!(r.events[1].kind, TraceEventKind::SpanEnd));
    }

    #[test]
    fn report_totals_equal_root_total() {
        let t = Tracer::shared();
        {
            let _s = t.span("a");
            t.record_op(OpKind::Program, 1200.0, 68.0);
        }
        t.record_op(OpKind::Read, 90.0, 50.0);
        let r = t.report();
        assert_eq!(r.totals, r.root.total());
    }
}
