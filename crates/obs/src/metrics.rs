//! Metrics registry: counters, gauges and log2-bucketed histograms, each
//! keyed by a metric name plus an optional label (one labeled series per
//! `(name, label)` pair). Storage is `BTreeMap`-backed so every exporter
//! iterates in a deterministic order.

use std::collections::BTreeMap;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b >= 1`
/// holds `2^(b-1) ..= 2^b - 1`, up to bucket 64 for the top of the `u64`
/// range.
pub const LOG2_BUCKETS: usize = 65;

/// A histogram over `u64` samples with exponentially growing buckets —
/// the right shape for per-page PP-step counts, retries-per-read and
/// migration tallies, where the tail matters and memory must stay flat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { counts: [0; LOG2_BUCKETS], total: 0, sum: 0 }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: 0 for the value 0, otherwise
    /// `1 + floor(log2(v))`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive `(low, high)` value range of one bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= LOG2_BUCKETS`.
    pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
        assert!(bucket < LOG2_BUCKETS, "bucket out of range");
        match bucket {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            b => (1u64 << (b - 1), (1u64 << b) - 1),
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw count in one bucket.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound of the bucket holding the `p`-th quantile
    /// (`0.0..=1.0`); 0 when empty. A conservative (over-)estimate, as
    /// bucketed histograms give.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let goal = (p.clamp(0.0, 1.0) * self.total as f64).max(1.0);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen as f64 >= goal {
                return Self::bucket_bounds(b).1;
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Sum of all samples (exact, unlike a float accumulator).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The raw per-bucket counts, index 0 first.
    pub fn bucket_counts(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Rebuilds a histogram from `(bucket index, count)` pairs and the
    /// exact sample sum — the inverse of [`bucket_counts`](Self::bucket_counts)
    /// plus [`sum`](Self::sum), used by the snapshot and Prometheus
    /// parsers to round-trip exported series.
    ///
    /// # Panics
    ///
    /// Panics when a bucket index is out of range.
    pub fn from_bucket_counts(buckets: &[(usize, u64)], sum: u128) -> Self {
        let mut h = Log2Histogram::new();
        for &(b, c) in buckets {
            assert!(b < LOG2_BUCKETS, "bucket {b} out of range");
            h.counts[b] += c;
            h.total += c;
        }
        h.sum = sum;
        h
    }

    /// Occupied buckets as `(low, high, count)` rows, lowest first.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = Self::bucket_bounds(b);
                (lo, hi, c)
            })
            .collect()
    }
}

/// One `(metric name, label)` series key; the label is empty for
/// unlabeled series.
pub type SeriesKey = (String, String);

/// A registry of labeled counters, gauges and log2 histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Log2Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter series, creating it at zero if absent.
    pub fn counter_add(&mut self, name: &str, label: &str, n: u64) {
        *self.counters.entry((name.to_owned(), label.to_owned())).or_insert(0) += n;
    }

    /// Sets a gauge series to `v`.
    pub fn gauge_set(&mut self, name: &str, label: &str, v: f64) {
        self.gauges.insert((name.to_owned(), label.to_owned()), v);
    }

    /// Records one sample into a histogram series.
    pub fn observe(&mut self, name: &str, label: &str, v: u64) {
        self.histograms.entry((name.to_owned(), label.to_owned())).or_default().observe(v);
    }

    /// Replaces a histogram series wholesale — used by samplers that
    /// re-publish a point-in-time distribution (e.g. the per-block wear
    /// histogram) instead of accumulating observations forever.
    pub fn histogram_set(&mut self, name: &str, label: &str, h: Log2Histogram) {
        self.histograms.insert((name.to_owned(), label.to_owned()), h);
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other's value (last write wins), histograms merge bucketwise.
    /// Merging per-worker registries in input order yields the same result
    /// for any `STASH_THREADS`, which is what the parallel benches need.
    pub fn merge(&mut self, other: &Registry) {
        for ((name, label), v) in &other.counters {
            *self.counters.entry((name.clone(), label.clone())).or_insert(0) += v;
        }
        for ((name, label), v) in &other.gauges {
            self.gauges.insert((name.clone(), label.clone()), *v);
        }
        for ((name, label), h) in &other.histograms {
            self.histograms.entry((name.clone(), label.clone())).or_default().merge(h);
        }
    }

    /// Value of one counter series (0 if absent).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters.get(&(name.to_owned(), label.to_owned())).copied().unwrap_or(0)
    }

    /// Value of one gauge series, if set.
    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges.get(&(name.to_owned(), label.to_owned())).copied()
    }

    /// One histogram series, if any samples were recorded.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&Log2Histogram> {
        self.histograms.get(&(name.to_owned(), label.to_owned()))
    }

    /// All counter series in deterministic order.
    pub fn counters(&self) -> impl Iterator<Item = (&SeriesKey, &u64)> {
        self.counters.iter()
    }

    /// All gauge series in deterministic order.
    pub fn gauges(&self) -> impl Iterator<Item = (&SeriesKey, &f64)> {
        self.gauges.iter()
    }

    /// All histogram series in deterministic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&SeriesKey, &Log2Histogram)> {
        self.histograms.iter()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(7), 3);
        assert_eq!(Log2Histogram::bucket_of(8), 4);
        assert_eq!(Log2Histogram::bucket_of(1 << 62), 63);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_roundtrip_bucket_of() {
        for b in 0..LOG2_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(b);
            assert_eq!(Log2Histogram::bucket_of(lo), b, "low bound of bucket {b}");
            assert_eq!(Log2Histogram::bucket_of(hi), b, "high bound of bucket {b}");
            assert!(lo <= hi);
            if b >= 1 {
                let (_, prev_hi) = Log2Histogram::bucket_bounds(b - 1);
                assert_eq!(lo, prev_hi + 1, "buckets {b} and {} must tile", b - 1);
            }
        }
    }

    #[test]
    fn empty_histogram() {
        let h = Log2Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert!(h.rows().is_empty());
    }

    #[test]
    fn single_sample() {
        let mut h = Log2Histogram::new();
        h.observe(10);
        assert_eq!(h.total(), 1);
        assert_eq!(h.mean(), 10.0);
        // 10 lands in bucket 8..=15; every percentile reports its upper bound.
        assert_eq!(h.percentile(0.0), 15);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.rows(), vec![(8, 15, 1)]);
    }

    #[test]
    fn percentile_across_buckets() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 1, 1, 1, 8, 8, 8, 8, 100, 100] {
            h.observe(v);
        }
        // Cumulative: bucket(1)=4 at 40%, bucket(8..15)=8 at 80%, rest 100%.
        assert_eq!(h.percentile(0.4), 1);
        assert_eq!(h.percentile(0.5), 15);
        assert_eq!(h.percentile(0.8), 15);
        assert_eq!(h.percentile(0.95), 127);
        assert_eq!(h.percentile(1.0), 127);
    }

    #[test]
    fn merge_adds_counts_and_sum() {
        let mut a = Log2Histogram::new();
        a.observe(3);
        let mut b = Log2Histogram::new();
        b.observe(5);
        b.observe(0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.bucket_count(0), 1);
        assert!((a.mean() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_parts_roundtrip() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 3, 9, 1000] {
            h.observe(v);
        }
        let buckets: Vec<(usize, u64)> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect();
        let back = Log2Histogram::from_bucket_counts(&buckets, h.sum());
        assert_eq!(back, h);
    }

    #[test]
    fn registry_merge_semantics() {
        let mut a = Registry::new();
        a.counter_add("ops", "read", 3);
        a.gauge_set("free_blocks", "", 7.0);
        a.observe("steps", "", 4);

        let mut b = Registry::new();
        b.counter_add("ops", "read", 2);
        b.counter_add("ops", "erase", 1);
        b.gauge_set("free_blocks", "", 5.0);
        b.gauge_set("ber", "", 0.01);
        b.observe("steps", "", 16);

        a.merge(&b);
        assert_eq!(a.counter("ops", "read"), 5, "counters add");
        assert_eq!(a.counter("ops", "erase"), 1);
        assert_eq!(a.gauge("free_blocks", ""), Some(5.0), "gauges last-write");
        assert_eq!(a.gauge("ber", ""), Some(0.01));
        let h = a.histogram("steps", "").unwrap();
        assert_eq!(h.total(), 2, "histograms merge");
        assert_eq!(h.sum(), 20);
    }

    #[test]
    fn merge_order_independent_for_counters_and_histograms() {
        // Counters and histograms commute; merging shard registries in
        // input order therefore gives one canonical result.
        let shards: Vec<Registry> = (0..4)
            .map(|i| {
                let mut r = Registry::new();
                r.counter_add("n", "", i + 1);
                r.observe("h", "", 1 << i);
                r
            })
            .collect();
        let mut merged = Registry::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.counter("n", ""), 10);
        assert_eq!(merged.histogram("h", "").unwrap().total(), 4);
    }

    #[test]
    fn histogram_set_replaces_series() {
        let mut r = Registry::new();
        r.observe("wear", "", 100);
        let mut fresh = Log2Histogram::new();
        fresh.observe(7);
        r.histogram_set("wear", "", fresh.clone());
        assert_eq!(r.histogram("wear", ""), Some(&fresh));
    }

    #[test]
    fn registry_series_are_independent_per_label() {
        let mut r = Registry::new();
        r.counter_add("fault", "transient-program", 2);
        r.counter_add("fault", "grown-bad", 1);
        r.counter_add("fault", "transient-program", 1);
        assert_eq!(r.counter("fault", "transient-program"), 3);
        assert_eq!(r.counter("fault", "grown-bad"), 1);
        assert_eq!(r.counter("fault", "transient-erase"), 0);

        r.gauge_set("free_blocks", "", 7.0);
        r.gauge_set("free_blocks", "", 5.0);
        assert_eq!(r.gauge("free_blocks", ""), Some(5.0));

        r.observe("pp_steps_per_page", "", 9);
        r.observe("pp_steps_per_page", "", 12);
        let h = r.histogram("pp_steps_per_page", "").unwrap();
        assert_eq!(h.total(), 2);
        assert!(!r.is_empty());
    }
}
