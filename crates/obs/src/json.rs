//! Dependency-free JSON support: a string escaper for the writers in
//! [`crate::export`] and a small recursive-descent parser used to validate
//! that emitted JSONL really is well-formed (tests) and to let tools
//! ingest trace artifacts without pulling in a JSON crate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string literal.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` the way the exporters do: integral values without a
/// fraction, everything else with enough digits to round-trip.
pub fn write_num(out: &mut String, v: f64) {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_owned());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            // Surrogates are not emitted by our writers;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), JsonValue::Num(-125.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".to_owned()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x;y", "c": null}], "d": 2}"#).unwrap();
        assert_eq!(v.get("d").and_then(JsonValue::as_f64), Some(2.0));
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[1].get("b").and_then(JsonValue::as_str), Some("x;y"));
    }

    #[test]
    fn escaping_roundtrips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut line = String::from("{\"s\":");
        write_escaped(&mut line, nasty);
        line.push('}');
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nulls").is_err());
    }

    #[test]
    fn write_num_formats() {
        let mut s = String::new();
        write_num(&mut s, 90.0);
        s.push(' ');
        write_num(&mut s, 0.125);
        assert_eq!(s, "90 0.125");
    }
}
