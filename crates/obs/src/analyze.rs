//! Trace-analysis engine over stash-trace/1 JSONL artifacts: critical-path
//! extraction, per-span-name aggregation and top-N tables, trace-to-trace
//! diffs, and per-chip utilization reports.
//!
//! Everything here is a pure function of its inputs (no clocks, no
//! randomness, deterministic iteration via `BTreeMap` and total sorts), so
//! analysis output is byte-identical for any `STASH_THREADS` when the
//! traces themselves are — which the tracer guarantees.
//!
//! An op event's `path` names the span that was *innermost* when the op
//! was billed, so per-path aggregates are **self** costs; subtree totals
//! are computed by prefix summation when the critical path is extracted.

use crate::export::TRACE_SCHEMA;
use crate::json::{self, JsonValue};
use stash_flash::MeterSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Self-cost aggregate of one span path (or one span name).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Device operations billed while the span was innermost.
    pub ops: u64,
    /// Device time billed, microseconds.
    pub device_us: f64,
    /// Energy billed, microjoules.
    pub energy_uj: f64,
}

impl SpanStats {
    fn add(&mut self, device_us: f64, energy_uj: f64) {
        self.ops += 1;
        self.device_us += device_us;
        self.energy_uj += energy_uj;
    }
}

/// A parsed stash-trace/1 artifact: header totals plus per-path self costs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total device time from the `trace_summary` header, microseconds.
    pub device_time_us: f64,
    /// Total wait time from the header, microseconds.
    pub wait_time_us: f64,
    /// Total energy from the header, microjoules.
    pub energy_uj: f64,
    /// Total ops from the header.
    pub ops: u64,
    /// Total faults from the header.
    pub faults: u64,
    /// Self costs keyed by full semicolon-joined span path.
    pub spans: BTreeMap<String, SpanStats>,
}

/// Parses a stash-trace/1 JSONL document.
///
/// # Errors
///
/// Fails on malformed JSON, a missing/foreign schema tag, or op events
/// without their billed costs.
pub fn parse_trace(text: &str) -> Result<TraceStats, String> {
    let mut lines = text.lines().enumerate();
    let (_, head) = lines.next().ok_or("empty trace document")?;
    let head = json::parse(head).map_err(|e| format!("header: {e}"))?;
    if head.get("schema").and_then(JsonValue::as_str) != Some(TRACE_SCHEMA) {
        return Err(format!("header schema is not {TRACE_SCHEMA}"));
    }
    let num = |k: &str| head.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let mut stats = TraceStats {
        device_time_us: num("device_time_us"),
        wait_time_us: num("wait_time_us"),
        energy_uj: num("energy_uj"),
        ops: num("ops") as u64,
        faults: num("faults") as u64,
        spans: BTreeMap::new(),
    };
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("type").and_then(JsonValue::as_str) != Some("op") {
            continue;
        }
        let path = v
            .get("path")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: op without path", i + 1))?;
        let us = v
            .get("device_us")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("line {}: op without device_us", i + 1))?;
        let uj = v.get("energy_uj").and_then(JsonValue::as_f64).unwrap_or(0.0);
        stats.spans.entry(path.to_owned()).or_default().add(us, uj);
    }
    Ok(stats)
}

/// Last segment of a semicolon-joined span path.
fn leaf(path: &str) -> &str {
    path.rsplit(';').next().unwrap_or(path)
}

/// Self costs re-keyed by span *name* (last path segment), so the same
/// phase is one row no matter where in the tree it ran.
pub fn by_name(stats: &TraceStats) -> BTreeMap<String, SpanStats> {
    let mut out: BTreeMap<String, SpanStats> = BTreeMap::new();
    for (path, s) in &stats.spans {
        let e = out.entry(leaf(path).to_owned()).or_default();
        e.ops += s.ops;
        e.device_us += s.device_us;
        e.energy_uj += s.energy_uj;
    }
    out
}

/// One step of the critical path: a span path with its self and subtree
/// device time.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// Full span path of this layer.
    pub path: String,
    /// Device time billed to this span itself, microseconds.
    pub self_us: f64,
    /// Device time of this span plus all descendants, microseconds.
    pub total_us: f64,
}

/// Extracts the critical path: starting at the root, repeatedly descend
/// into the child subtree with the most total device time (ties break to
/// the lexicographically smallest name, keeping output deterministic)
/// until a leaf is reached. Each step reports per-layer self time, so the
/// chain answers "which layer grew?" directly.
pub fn critical_path(stats: &TraceStats) -> Vec<CriticalStep> {
    // Subtree totals by prefix summation over the path-keyed self costs.
    let mut totals: BTreeMap<&str, f64> = BTreeMap::new();
    for (path, s) in &stats.spans {
        let mut end = path.len();
        loop {
            let prefix = &path[..end];
            *totals.entry(prefix).or_default() += s.device_us;
            match path[..end].rfind(';') {
                Some(i) => end = i,
                None => break,
            }
        }
    }
    let root = match stats.spans.keys().next() {
        Some(first) => first.split(';').next().unwrap_or("root").to_owned(),
        None => return Vec::new(),
    };
    let mut chain = Vec::new();
    let mut cur = root;
    loop {
        let self_us = stats.spans.get(&cur).map_or(0.0, |s| s.device_us);
        let total_us = totals.get(cur.as_str()).copied().unwrap_or(0.0);
        chain.push(CriticalStep { path: cur.clone(), self_us, total_us });
        // Best child: max subtree total, ties to the smaller name. A child
        // prefix is `cur;<name>` with no further semicolon.
        let prefix = format!("{cur};");
        let mut best: Option<(&str, f64)> = None;
        for (p, t) in totals.range::<str, _>((
            std::ops::Bound::Excluded(prefix.as_str()),
            std::ops::Bound::Unbounded,
        )) {
            if !p.starts_with(prefix.as_str()) {
                break;
            }
            if p[prefix.len()..].contains(';') {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bt)) => *t > bt,
            };
            if better {
                best = Some((p, *t));
            }
        }
        match best {
            Some((p, _)) => cur = p.to_owned(),
            None => break,
        }
    }
    chain
}

/// Top `k` spans by self device time, aggregated by span name; ties break
/// by name so the order is total.
pub fn top_spans(stats: &TraceStats, k: usize) -> Vec<(String, SpanStats)> {
    let mut rows: Vec<(String, SpanStats)> = by_name(stats).into_iter().collect();
    rows.sort_by(|a, b| b.1.device_us.total_cmp(&a.1.device_us).then_with(|| a.0.cmp(&b.0)));
    rows.truncate(k);
    rows
}

/// Per-span-name delta between two traces (`b` minus `a`).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// Span name (last path segment).
    pub name: String,
    /// Op counts in the old and new trace.
    pub ops: (u64, u64),
    /// Device-time delta, microseconds (positive = grew).
    pub d_device_us: f64,
    /// Energy delta, microjoules.
    pub d_energy_uj: f64,
}

/// Diffs two traces per span name: every name present in either trace gets
/// a row with count/device-time/energy deltas, sorted by absolute
/// device-time growth (largest first, ties by name) so the span a bench
/// regression grew in is the first row.
pub fn diff(a: &TraceStats, b: &TraceStats) -> Vec<SpanDelta> {
    let an = by_name(a);
    let bn = by_name(b);
    let mut names: Vec<&String> = an.keys().chain(bn.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows: Vec<SpanDelta> = names
        .into_iter()
        .map(|name| {
            let oa = an.get(name).copied().unwrap_or_default();
            let ob = bn.get(name).copied().unwrap_or_default();
            SpanDelta {
                name: name.clone(),
                ops: (oa.ops, ob.ops),
                d_device_us: ob.device_us - oa.device_us,
                d_energy_uj: ob.energy_uj - oa.energy_uj,
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.d_device_us.abs().total_cmp(&x.d_device_us.abs()).then_with(|| x.name.cmp(&y.name))
    });
    rows
}

/// Renders summary + critical path + top spans as stable text.
pub fn render_analysis(stats: &TraceStats, k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {:.1} us device time, {:.1} us wait, {:.1} uJ, {} ops, {} faults",
        stats.device_time_us, stats.wait_time_us, stats.energy_uj, stats.ops, stats.faults,
    );
    let _ = writeln!(out, "critical path (by subtree device time):");
    for (depth, step) in critical_path(stats).iter().enumerate() {
        let _ = writeln!(
            out,
            "{:indent$}{}: total {:.1} us, self {:.1} us",
            "",
            leaf(&step.path),
            step.total_us,
            step.self_us,
            indent = 2 + depth * 2,
        );
    }
    let _ = writeln!(out, "top {k} spans by self device time:");
    for (name, s) in top_spans(stats, k) {
        let _ =
            writeln!(out, "  {name}: {:.1} us, {:.1} uJ, {} ops", s.device_us, s.energy_uj, s.ops);
    }
    out
}

/// Renders the top `k` rows of a diff as stable text. Rows that did not
/// move (zero delta in every column) are skipped.
pub fn render_diff(rows: &[SpanDelta], k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "span deltas (new - old), largest device-time change first:");
    let mut shown = 0usize;
    for r in rows {
        if r.d_device_us == 0.0 && r.d_energy_uj == 0.0 && r.ops.0 == r.ops.1 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {}: {:+.1} us, {:+.1} uJ, ops {} -> {}",
            r.name, r.d_device_us, r.d_energy_uj, r.ops.0, r.ops.1
        );
        shown += 1;
        if shown >= k {
            break;
        }
    }
    if shown == 0 {
        let _ = writeln!(out, "  (no span moved)");
    }
    out
}

/// Per-chip utilization/imbalance report joining span attribution with the
/// array's per-chip meter totals. `chips` is `chip_meter(i)` for each chip
/// (so index = chip id); `stats`, when given, adds the top spans so the
/// busiest chip's time is attributable to a layer.
pub fn render_chip_report(chips: &[MeterSnapshot], stats: Option<&TraceStats>) -> String {
    let mut out = String::new();
    if chips.is_empty() {
        let _ = writeln!(out, "no chips");
        return out;
    }
    let times: Vec<f64> = chips.iter().map(|m| m.device_time_us).collect();
    let max = times.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let _ = writeln!(out, "chip utilization ({} chips):", chips.len());
    for (i, m) in chips.iter().enumerate() {
        let util = if max > 0.0 { 100.0 * m.device_time_us / max } else { 0.0 };
        let _ = writeln!(
            out,
            "  chip {i}: {:.1} us busy ({util:.1}% of busiest), {} ops, {:.1} uJ",
            m.device_time_us,
            m.total_ops(),
            m.energy_uj,
        );
    }
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    let _ = writeln!(out, "  imbalance (busiest / mean): {imbalance:.3}");
    if let Some(s) = stats {
        let _ = writeln!(out, "attribution (top spans by self device time):");
        for (name, st) in top_spans(s, 5) {
            let _ = writeln!(out, "  {name}: {:.1} us, {} ops", st.device_us, st.ops);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_jsonl;
    use crate::tracer::Tracer;
    use stash_flash::{OpKind, Recorder};

    fn trace(extra_scrub_passes: usize) -> TraceStats {
        let t = Tracer::shared();
        {
            let _w = t.span("host_write");
            for _ in 0..4 {
                let _p = t.span("program_page");
                t.record_op(OpKind::Program, 600.0, 60.0);
            }
        }
        for _ in 0..1 + extra_scrub_passes {
            let _s = t.span("scrub");
            let _e = t.span("scrub_evacuate");
            t.record_op(OpKind::Read, 90.0, 50.0);
            t.record_op(OpKind::Program, 600.0, 60.0);
        }
        parse_trace(&export_jsonl(&t.report())).unwrap()
    }

    #[test]
    fn parse_rejects_foreign_schema() {
        assert!(parse_trace("{\"schema\":\"nope/1\",\"type\":\"trace_summary\"}\n").is_err());
    }

    #[test]
    fn parsed_self_costs_sum_to_header_totals() {
        let s = trace(0);
        let sum: f64 = s.spans.values().map(|v| v.device_us).sum();
        assert!((sum - s.device_time_us).abs() < 1e-9);
        let ops: u64 = s.spans.values().map(|v| v.ops).sum();
        assert_eq!(ops, s.ops);
    }

    #[test]
    fn critical_path_descends_into_the_heaviest_chain() {
        let s = trace(0);
        let chain = critical_path(&s);
        let paths: Vec<&str> = chain.iter().map(|c| c.path.as_str()).collect();
        assert_eq!(paths, vec!["root", "root;host_write", "root;host_write;program_page"]);
        assert!((chain[0].total_us - s.device_time_us).abs() < 1e-9);
        assert!(chain[2].self_us > 0.0);
    }

    #[test]
    fn diff_pins_growth_on_the_grown_span_family() {
        let a = trace(0);
        let b = trace(2);
        let rows = diff(&a, &b);
        let moved: Vec<&str> =
            rows.iter().filter(|r| r.d_device_us != 0.0).map(|r| r.name.as_str()).collect();
        assert_eq!(moved, vec!["scrub_evacuate"], "only the scrub family grew");
        assert_eq!(rows[0].ops, (2, 6));
        assert!((rows[0].d_device_us - 2.0 * 690.0).abs() < 1e-9);
        // Unmoved spans render away entirely.
        let txt = render_diff(&rows, 5);
        assert!(txt.contains("scrub_evacuate: +1380.0 us"));
        assert!(!txt.contains("program_page"));
    }

    #[test]
    fn renderers_are_deterministic() {
        let s1 = trace(1);
        let s2 = trace(1);
        assert_eq!(render_analysis(&s1, 5), render_analysis(&s2, 5));
        assert!(render_analysis(&s1, 5).contains("critical path"));
    }
}
