//! Classifier evaluation metrics beyond raw accuracy.
//!
//! Accuracy is the paper's headline number, but a forensic analyst would
//! also look at the trade-off curve: how many normal blocks must be falsely
//! accused to catch a given share of hidden blocks. This module provides
//! the standard machinery (confusion matrix, precision/recall/F1, ROC AUC
//! over decision values).

use crate::smo::Svm;
use crate::Dataset;

/// Binary confusion matrix with +1 as the positive (hidden) class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Hidden blocks called hidden.
    pub true_positives: usize,
    /// Normal blocks called hidden (false accusations).
    pub false_positives: usize,
    /// Normal blocks called normal.
    pub true_negatives: usize,
    /// Hidden blocks that evaded the classifier.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Evaluates a trained model on a dataset.
    pub fn evaluate(model: &Svm, data: &Dataset) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for (f, &label) in data.features().iter().zip(data.labels()) {
            match (model.predict(f), label) {
                (1, 1) => cm.true_positives += 1,
                (1, -1) => cm.false_positives += 1,
                (-1, -1) => cm.true_negatives += 1,
                (-1, 1) => cm.false_negatives += 1,
                _ => unreachable!("labels are ±1"),
            }
        }
        cm
    }

    /// Samples evaluated.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Of blocks called hidden, the fraction actually hidden.
    pub fn precision(&self) -> f64 {
        let called = self.true_positives + self.false_positives;
        if called == 0 {
            0.0
        } else {
            self.true_positives as f64 / called as f64
        }
    }

    /// Of hidden blocks, the fraction caught.
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            0.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Of normal blocks, the fraction falsely accused.
    pub fn false_positive_rate(&self) -> f64 {
        let negatives = self.false_positives + self.true_negatives;
        if negatives == 0 {
            0.0
        } else {
            self.false_positives as f64 / negatives as f64
        }
    }
}

/// Area under the ROC curve from the model's continuous decision values
/// (probability that a random hidden block scores above a random normal
/// block; 0.5 = the classifier learned nothing).
pub fn roc_auc(model: &Svm, data: &Dataset) -> f64 {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (f, &label) in data.features().iter().zip(data.labels()) {
        let d = model.decision(f);
        if label == 1 {
            pos.push(d);
        } else {
            neg.push(d);
        }
    }
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    // Mann–Whitney U statistic.
    let mut wins = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::{Kernel, SvmParams};

    fn separable() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..20 {
            let x = f64::from(i) / 10.0;
            d.push(vec![x, 1.0], 1);
            d.push(vec![x, -1.0], -1);
        }
        d
    }

    fn identical_classes(seed: u64) -> Dataset {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for i in 0..80 {
            d.push(
                vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
                if i % 2 == 0 { 1 } else { -1 },
            );
        }
        d
    }

    #[test]
    fn perfect_classifier_metrics() {
        let data = separable();
        let model =
            Svm::train(&data, &SvmParams { kernel: Kernel::Linear, c: 10.0, ..Default::default() });
        let cm = ConfusionMatrix::evaluate(&model, &data);
        assert_eq!(cm.total(), 40);
        assert!(cm.accuracy() > 0.97);
        assert!(cm.precision() > 0.95);
        assert!(cm.recall() > 0.95);
        assert!(cm.f1() > 0.95);
        assert!(cm.false_positive_rate() < 0.05);
        assert!(roc_auc(&model, &data) > 0.99);
    }

    #[test]
    fn chance_classifier_has_half_auc() {
        let train = identical_classes(1);
        let test = identical_classes(2);
        let model = Svm::train(&train, &SvmParams::default());
        let auc = roc_auc(&model, &test);
        assert!((0.3..0.7).contains(&auc), "AUC {auc} should hover near 0.5");
    }

    #[test]
    fn degenerate_matrices_are_safe() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.false_positive_rate(), 0.0);
    }

    #[test]
    fn counts_are_consistent() {
        let data = separable();
        let model =
            Svm::train(&data, &SvmParams { kernel: Kernel::Linear, c: 10.0, ..Default::default() });
        let cm = ConfusionMatrix::evaluate(&model, &data);
        assert_eq!(
            cm.true_positives + cm.false_negatives,
            data.labels().iter().filter(|&&l| l == 1).count()
        );
        assert_eq!(
            cm.true_negatives + cm.false_positives,
            data.labels().iter().filter(|&&l| l == -1).count()
        );
    }
}
