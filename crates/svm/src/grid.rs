//! k-fold cross-validation and hyperparameter grid search
//! (paper §7: "optimal parameters obtained using grid search, and performed
//! three-fold cross-validation").

use crate::scaler::StandardScaler;
use crate::smo::{Kernel, Svm, SvmParams};
use crate::Dataset;
use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};

/// Mean k-fold cross-validated accuracy of one hyperparameter setting.
///
/// Each fold fits its own scaler on the training split only (no leakage),
/// so folds are independent: they train and score on the worker pool, and
/// per-fold `(correct, total)` pairs are summed in fold order — the result
/// is identical for any `STASH_THREADS`.
///
/// # Panics
///
/// Panics if `k < 2` or the dataset has fewer than `k` samples.
pub fn k_fold_accuracy(data: &Dataset, k: usize, params: &SvmParams, seed: u64) -> f64 {
    assert!(k >= 2, "need at least 2 folds");
    assert!(data.len() >= k, "fewer samples than folds");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(&mut SmallRng::seed_from_u64(seed));

    let fold_scores = stash_par::par_trials(k, |fold| {
        let test_idx: Vec<usize> =
            idx.iter().enumerate().filter(|(i, _)| i % k == fold).map(|(_, &v)| v).collect();
        let train_idx: Vec<usize> =
            idx.iter().enumerate().filter(|(i, _)| i % k != fold).map(|(_, &v)| v).collect();
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        // A fold may end up single-class on tiny datasets; count it as
        // chance rather than crashing.
        let one_class = train.labels().iter().all(|&l| l == train.labels()[0]);
        if one_class {
            return (test.len() / 2, test.len());
        }
        let scaler = StandardScaler::fit(&train);
        let model = Svm::train(&scaler.transform_dataset(&train), params);
        let test_scaled = scaler.transform_dataset(&test);
        let correct = test_scaled
            .features()
            .iter()
            .zip(test_scaled.labels())
            .filter(|(f, &l)| model.predict(f) == l)
            .count();
        (correct, test.len())
    });

    let total_correct: usize = fold_scores.iter().map(|&(c, _)| c).sum();
    let total: usize = fold_scores.iter().map(|&(_, t)| t).sum();
    total_correct as f64 / total.max(1) as f64
}

/// Result of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// Winning hyperparameters.
    pub params: SvmParams,
    /// Its cross-validated accuracy.
    pub accuracy: f64,
    /// Accuracy of every evaluated candidate, in evaluation order.
    pub all: Vec<(SvmParams, f64)>,
}

/// Grid-searches `C` and RBF `gamma` (plus a linear-kernel row) by k-fold
/// cross-validation, returning the best setting — the adversary's strongest
/// classifier configuration.
///
/// Candidates are enumerated up front and scored on the worker pool; `all`
/// keeps the serial evaluation order and ties break toward the earlier
/// candidate, so the winner matches serial execution for any thread count.
/// (Nested under a parallel caller — or with each candidate's k-fold
/// already fanning out — the inner level runs inline; see `stash_par`.)
pub fn grid_search(
    data: &Dataset,
    cs: &[f64],
    gammas: &[f64],
    k: usize,
    seed: u64,
) -> GridSearchResult {
    let mut candidates = Vec::new();
    for &c in cs {
        candidates.push(SvmParams { kernel: Kernel::Linear, c, ..Default::default() });
        for &gamma in gammas {
            candidates.push(SvmParams { kernel: Kernel::Rbf { gamma }, c, ..Default::default() });
        }
    }

    let all: Vec<(SvmParams, f64)> = stash_par::par_map(candidates, |_, params| {
        (params, k_fold_accuracy(data, k, &params, seed))
    });

    let mut best: Option<(SvmParams, f64)> = None;
    for &(params, acc) in &all {
        if best.as_ref().map_or(true, |(_, b)| acc > *b) {
            best = Some((params, acc));
        }
    }
    let (params, accuracy) = best.expect("grid must be non-empty");
    GridSearchResult { params, accuracy, all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(separation: f64, n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            d.push(vec![separation + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)], 1);
            d.push(vec![-separation + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)], -1);
        }
        d
    }

    #[test]
    fn cv_high_on_separable_data() {
        let d = blobs(3.0, 30, 1);
        let acc = k_fold_accuracy(&d, 3, &SvmParams::default(), 7);
        assert!(acc > 0.95, "cv accuracy {acc}");
    }

    #[test]
    fn cv_near_chance_on_identical_classes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut d = Dataset::new();
        for i in 0..120 {
            d.push(
                vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
                if i % 2 == 0 { 1 } else { -1 },
            );
        }
        let acc = k_fold_accuracy(&d, 3, &SvmParams::default(), 7);
        assert!((0.3..0.7).contains(&acc), "cv accuracy {acc} should be near 0.5");
    }

    #[test]
    fn grid_search_finds_good_setting() {
        let d = blobs(2.0, 25, 3);
        let res = grid_search(&d, &[0.1, 1.0, 10.0], &[0.01, 0.1, 1.0], 3, 11);
        assert!(res.accuracy > 0.9, "best accuracy {}", res.accuracy);
        // 3 Cs × (1 linear + 3 gammas) candidates.
        assert_eq!(res.all.len(), 12);
        let max_all = res.all.iter().map(|(_, a)| *a).fold(f64::MIN, f64::max);
        assert!((res.accuracy - max_all).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let d = blobs(1.0, 5, 0);
        let _ = k_fold_accuracy(&d, 1, &SvmParams::default(), 0);
    }
}
