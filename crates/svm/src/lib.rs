//! # stash-svm — the detectability adversary
//!
//! The paper's security evaluation (§7) follows Wang et al. \[38\]: a
//! support-vector machine is trained to distinguish flash blocks/pages with
//! hidden data from those without, using voltage-level distributions as
//! features. VT-HI is considered secure when the classifier cannot beat a
//! coin flip (50%). This crate implements the full adversary pipeline from
//! scratch: an SMO-trained SVM with linear and RBF kernels, feature
//! standardization, k-fold cross-validation and grid search over
//! hyperparameters ("the classifier used optimal parameters obtained using
//! grid search, and performed three-fold cross-validation").
//!
//! ```
//! use stash_svm::{Dataset, Kernel, SvmParams, Svm};
//!
//! // A linearly separable toy problem.
//! let mut data = Dataset::new();
//! for i in 0..20 {
//!     let x = f64::from(i);
//!     data.push(vec![x, 1.0], 1);
//!     data.push(vec![x, -1.0], -1);
//! }
//! let model = Svm::train(&data, &SvmParams { kernel: Kernel::Linear, c: 1.0, ..Default::default() });
//! assert_eq!(model.predict(&[3.0, 0.9]), 1);
//! assert_eq!(model.predict(&[3.0, -0.9]), -1);
//! ```

pub mod grid;
pub mod metrics;
pub mod scaler;
pub mod smo;

pub use grid::{grid_search, k_fold_accuracy, GridSearchResult};
pub use metrics::{roc_auc, ConfusionMatrix};
pub use scaler::StandardScaler;
pub use smo::{Kernel, Svm, SvmParams};

/// A labelled dataset: feature vectors with ±1 labels.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<i8>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if the label is not ±1 or the dimension disagrees with
    /// earlier samples.
    pub fn push(&mut self, features: Vec<f64>, label: i8) {
        assert!(label == 1 || label == -1, "labels must be ±1, got {label}");
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "feature dimension mismatch");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Borrowed feature matrix.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Borrowed labels.
    pub fn labels(&self) -> &[i8] {
        &self.labels
    }

    /// Builds a sub-dataset from sample indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            features: idx.iter().map(|&i| self.features[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Merges another dataset of the same dimension into this one.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn extend(&mut self, other: &Dataset) {
        for (f, &l) in other.features.iter().zip(&other.labels) {
            self.push(f.clone(), l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 1);
        assert_eq!(d.len(), 1);
        assert_eq!(d.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn bad_label_panics() {
        Dataset::new().push(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bad_dim_panics() {
        let mut d = Dataset::new();
        d.push(vec![1.0], 1);
        d.push(vec![1.0, 2.0], -1);
    }

    #[test]
    fn subset_selects() {
        let mut d = Dataset::new();
        d.push(vec![1.0], 1);
        d.push(vec![2.0], -1);
        d.push(vec![3.0], 1);
        let s = d.subset(&[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 1]);
    }
}
