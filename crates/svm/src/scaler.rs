//! Feature standardization (zero mean, unit variance per dimension).
//!
//! Voltage-histogram features span several orders of magnitude (the erased
//! spike at level 0 vs. sparse tail bins); SVMs need standardized inputs.

use crate::Dataset;

/// Per-dimension affine scaler fitted on training data.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to a dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on no data");
        let n = data.len() as f64;
        let dim = data.dim();
        let mut means = vec![0.0; dim];
        for f in data.features() {
            for (m, v) in means.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for f in data.features() {
            for ((s, v), m) in stds.iter_mut().zip(f).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            // Constant dimensions pass through unscaled.
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        StandardScaler { means, stds }
    }

    /// Transforms one feature vector.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.means.len(), "dimension mismatch");
        features
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms a whole dataset, keeping labels.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new();
        for (f, &l) in data.features().iter().zip(data.labels()) {
            out.push(self.transform(f), l);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_mean_and_variance() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 100.0], 1);
        d.push(vec![3.0, 300.0], -1);
        d.push(vec![5.0, 500.0], 1);
        let sc = StandardScaler::fit(&d);
        let t = sc.transform_dataset(&d);
        for dim in 0..2 {
            let vals: Vec<f64> = t.features().iter().map(|f| f[dim]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / 3.0;
            let var: f64 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12, "dim {dim} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "dim {dim} var {var}");
        }
    }

    #[test]
    fn constant_dimension_is_safe() {
        let mut d = Dataset::new();
        d.push(vec![7.0], 1);
        d.push(vec![7.0], -1);
        let sc = StandardScaler::fit(&d);
        let t = sc.transform(&[7.0]);
        assert!(t[0].abs() < 1e-12);
        assert!(t[0].is_finite());
    }

    #[test]
    fn labels_preserved() {
        let mut d = Dataset::new();
        d.push(vec![1.0], 1);
        d.push(vec![2.0], -1);
        let sc = StandardScaler::fit(&d);
        assert_eq!(sc.transform_dataset(&d).labels(), d.labels());
    }
}
