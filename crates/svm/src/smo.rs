//! SVM training by sequential minimal optimization (simplified SMO).

use crate::Dataset;

/// Kernel function for the SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Dot-product kernel.
    Linear,
    /// Gaussian radial basis function `exp(-gamma · ‖a−b‖²)`.
    Rbf {
        /// Width parameter.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on two vectors.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Kernel.
    pub kernel: Kernel,
    /// Soft-margin penalty.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Consecutive no-progress passes before stopping.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps.
    pub max_iters: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            kernel: Kernel::Rbf { gamma: 0.5 },
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 2_000,
        }
    }
}

/// A trained support-vector classifier.
#[derive(Debug, Clone)]
pub struct Svm {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    coeffs: Vec<f64>, // alpha_i * y_i
    bias: f64,
}

impl Svm {
    /// Trains on a dataset with the simplified SMO algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or contains a single class only.
    pub fn train(data: &Dataset, params: &SvmParams) -> Svm {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let x = data.features();
        let y: Vec<f64> = data.labels().iter().map(|&l| f64::from(l)).collect();
        assert!(
            y.iter().any(|&v| v > 0.0) && y.iter().any(|&v| v < 0.0),
            "training data must contain both classes"
        );

        // Precompute the kernel matrix (datasets here are dozens to a few
        // hundred samples).
        let mut k = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = params.kernel.eval(&x[i], &x[j]);
                k[i][j] = v;
                k[j][i] = v;
            }
        }

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let f = |alpha: &[f64], b: f64, i: usize, k: &[Vec<f64>]| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * k[i][j];
                }
            }
            s
        };

        // Deterministic pseudo-random partner choice (no RNG dependency in
        // the training loop keeps runs reproducible).
        let mut rng_state = 0x1234_5678_9ABC_DEF0u64;
        let mut next_rand = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };

        let mut passes = 0usize;
        let mut iters = 0usize;
        while passes < params.max_passes && iters < params.max_iters {
            iters += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&alpha, b, i, &k) - y[i];
                let violates = (y[i] * ei < -params.tol && alpha[i] < params.c)
                    || (y[i] * ei > params.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                let mut j = (next_rand() % (n as u64 - 1)) as usize;
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j, &k) - y[j];

                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    ((aj_old - ai_old).max(0.0), (params.c + aj_old - ai_old).min(params.c))
                } else {
                    ((ai_old + aj_old - params.c).max(0.0), (ai_old + aj_old).min(params.c))
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;

                let b1 = b - ei - y[i] * (ai - ai_old) * k[i][i] - y[j] * (aj - aj_old) * k[i][j];
                let b2 = b - ej - y[i] * (ai - ai_old) * k[i][j] - y[j] * (aj - aj_old) * k[j][j];
                b = if ai > 0.0 && ai < params.c {
                    b1
                } else if aj > 0.0 && aj < params.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support_vectors = Vec::new();
        let mut coeffs = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                support_vectors.push(x[i].clone());
                coeffs.push(alpha[i] * y[i]);
            }
        }
        Svm { kernel: params.kernel, support_vectors, coeffs, bias: b }
    }

    /// Signed decision value (positive ⇒ class +1).
    pub fn decision(&self, features: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, &c) in self.support_vectors.iter().zip(&self.coeffs) {
            s += c * self.kernel.eval(sv, features);
        }
        s
    }

    /// Predicted label (±1).
    pub fn predict(&self, features: &[f64]) -> i8 {
        if self.decision(features) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Fraction of a dataset classified correctly.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .features()
            .iter()
            .zip(data.labels())
            .filter(|(f, &l)| self.predict(f) == l)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Number of support vectors retained.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// For a linear kernel, the explicit weight vector `w` (decision =
    /// `w·x + b`): the per-feature leverage the classifier found. Forensic
    /// use: with voltage-histogram features, the largest |w| entries are
    /// the voltage levels that betray (or fail to betray) hiding.
    ///
    /// Returns `None` for non-linear kernels, where no finite-dimensional
    /// weight vector exists.
    pub fn linear_weights(&self) -> Option<Vec<f64>> {
        if !matches!(self.kernel, Kernel::Linear) {
            return None;
        }
        let dim = self.support_vectors.first().map(Vec::len)?;
        let mut w = vec![0.0f64; dim];
        for (sv, &c) in self.support_vectors.iter().zip(&self.coeffs) {
            for (wi, &x) in w.iter_mut().zip(sv) {
                *wi += c * x;
            }
        }
        Some(w)
    }

    /// The bias term of the decision function.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn linear_separable(n: usize, margin: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let noise: f64 = rng.gen_range(-0.2..0.2);
            d.push(vec![x, margin + noise.abs()], 1);
            let x2: f64 = rng.gen_range(-1.0..1.0);
            let noise2: f64 = rng.gen_range(-0.2..0.2);
            d.push(vec![x2, -margin - noise2.abs()], -1);
        }
        d
    }

    #[test]
    fn linear_kernel_separates() {
        let data = linear_separable(40, 0.5, 1);
        let model =
            Svm::train(&data, &SvmParams { kernel: Kernel::Linear, c: 10.0, ..Default::default() });
        assert!(model.accuracy(&data) > 0.97, "train accuracy {}", model.accuracy(&data));
        assert_eq!(model.predict(&[0.0, 2.0]), 1);
        assert_eq!(model.predict(&[0.0, -2.0]), -1);
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is not linearly separable; RBF must handle it.
        let mut data = Dataset::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..30 {
            let jitter = || -> f64 { 0.0 };
            let _ = jitter;
            let dx: f64 = rng.gen_range(-0.1..0.1);
            let dy: f64 = rng.gen_range(-0.1..0.1);
            data.push(vec![1.0 + dx, 1.0 + dy], 1);
            data.push(vec![-1.0 + dx, -1.0 + dy], 1);
            data.push(vec![1.0 + dx, -1.0 + dy], -1);
            data.push(vec![-1.0 + dx, 1.0 + dy], -1);
        }
        let model = Svm::train(
            &data,
            &SvmParams { kernel: Kernel::Rbf { gamma: 1.0 }, c: 10.0, ..Default::default() },
        );
        assert!(model.accuracy(&data) > 0.95, "XOR accuracy {}", model.accuracy(&data));
    }

    #[test]
    fn indistinguishable_classes_near_coin_flip() {
        // Same distribution for both labels ⇒ held-out accuracy ≈ 50%.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for i in 0..200 {
            let f = vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
            let l = if i % 2 == 0 { 1 } else { -1 };
            if i < 140 {
                train.push(f, l);
            } else {
                test.push(f, l);
            }
        }
        let model = Svm::train(
            &train,
            &SvmParams { kernel: Kernel::Rbf { gamma: 0.5 }, c: 1.0, ..Default::default() },
        );
        let acc = model.accuracy(&test);
        assert!((0.30..0.70).contains(&acc), "held-out accuracy {acc} should hover near 0.5");
    }

    #[test]
    fn decision_sign_matches_predict() {
        let data = linear_separable(20, 0.5, 3);
        let model = Svm::train(&data, &SvmParams { kernel: Kernel::Linear, ..Default::default() });
        for f in data.features() {
            assert_eq!(model.predict(f), if model.decision(f) >= 0.0 { 1 } else { -1 });
        }
    }

    #[test]
    fn support_vectors_are_sparse_with_wide_margin() {
        let data = linear_separable(50, 1.0, 7);
        let model =
            Svm::train(&data, &SvmParams { kernel: Kernel::Linear, c: 10.0, ..Default::default() });
        assert!(
            model.n_support_vectors() < data.len() / 2,
            "{} SVs of {} points",
            model.n_support_vectors(),
            data.len()
        );
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let mut d = Dataset::new();
        d.push(vec![1.0], 1);
        d.push(vec![2.0], 1);
        let _ = Svm::train(&d, &SvmParams::default());
    }

    #[test]
    fn linear_weights_recover_decision() {
        let data = linear_separable(30, 0.6, 11);
        let model =
            Svm::train(&data, &SvmParams { kernel: Kernel::Linear, c: 10.0, ..Default::default() });
        let w = model.linear_weights().expect("linear kernel");
        for f in data.features() {
            let by_weights: f64 =
                w.iter().zip(f).map(|(wi, xi)| wi * xi).sum::<f64>() + model.bias();
            assert!((by_weights - model.decision(f)).abs() < 1e-9);
        }
        // The separating direction is the second feature.
        assert!(w[1].abs() > w[0].abs());
    }

    #[test]
    fn rbf_has_no_weight_vector() {
        let data = linear_separable(10, 0.5, 12);
        let model = Svm::train(
            &data,
            &SvmParams { kernel: Kernel::Rbf { gamma: 0.5 }, ..Default::default() },
        );
        assert!(model.linear_weights().is_none());
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let r = Kernel::Rbf { gamma: 1.0 }.eval(&[0.0], &[1.0]);
        assert!((r - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(Kernel::Rbf { gamma: 1.0 }.eval(&[2.0], &[2.0]), 1.0);
    }
}
