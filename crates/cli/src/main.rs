//! `stash-tester` — an interactive console for the simulated NAND chip,
//! mirroring the workflow the paper drove through a commercial flash
//! tester (§6.1). Type `help` at the prompt.

use std::io::{self, BufRead, Write};

mod console;

fn main() {
    let mut chips: u32 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--chips" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if (1..=64).contains(&n) => chips = n,
                _ => {
                    eprintln!("--chips needs a count in 1..=64");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: stash-tester [--chips N]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let stdin = io::stdin();
    let mut console = console::Console::with_chips(chips);
    println!("stash-tester — simulated NAND flash console (type `help`)");
    console.banner();
    let mut out = io::stdout();
    loop {
        print!("flash> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match console.dispatch(line.trim()) {
            console::Outcome::Continue => {}
            console::Outcome::Quit => break,
        }
    }
    println!("bye");
}
