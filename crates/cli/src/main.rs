//! `stash-tester` — an interactive console for the simulated NAND chip,
//! mirroring the workflow the paper drove through a commercial flash
//! tester (§6.1). Type `help` at the prompt.

use std::io::{self, BufRead, Write};

mod console;

fn main() {
    let stdin = io::stdin();
    let mut console = console::Console::new();
    println!("stash-tester — simulated NAND flash console (type `help`)");
    console.banner();
    let mut out = io::stdout();
    loop {
        print!("flash> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match console.dispatch(line.trim()) {
            console::Outcome::Continue => {}
            console::Outcome::Quit => break,
        }
    }
    println!("bye");
}
