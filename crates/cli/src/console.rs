//! Command dispatch for the tester console.

use rand::{rngs::SmallRng, SeedableRng};
use stash_crypto::HidingKey;
use stash_fingerprint::{Fingerprint, FlashTrng};
use stash_flash::{
    ArrayDevice, BitPattern, BlockId, Chip, ChipProfile, FlashError, FlightDevice, Geometry,
    Histogram, NandDevice, PageId, PowerCut, PowerCutDevice, TraceDevice,
};
use stash_ftl::{Ftl, FtlConfig, FtlError};
use stash_obs::{
    analyze, export, render_prometheus, write_snapshot, ChipHealth, FlightRecorder, HealthMonitor,
    HealthSample, Tracer,
};
use stash_stego::{HiddenVolume, StegoConfig, StegoError};
use stash_svm::{Dataset, Kernel, StandardScaler, Svm, SvmParams};
use std::sync::Arc;
use vthi::{HideError, Hider, PageCapacity, VthiConfig, WearPlan};

/// What the main loop should do after a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Keep reading commands.
    Continue,
    /// Exit the console.
    Quit,
}

/// Console state: one device (a chip array, single-chip by default), one
/// optional hiding key, bookkeeping for hide/reveal demos.
pub struct Console {
    chip: FlightDevice<TraceDevice<ArrayDevice<Chip>>>,
    key: Option<HidingKey>,
    cfg: VthiConfig,
    rng: SmallRng,
    /// Public patterns for pages the console programmed (reveal needs them).
    publics: std::collections::HashMap<(u32, u32), BitPattern>,
    /// Remember enrolled fingerprints by label.
    fingerprints: std::collections::HashMap<String, Fingerprint>,
    /// Active tracer (`trace on`); installed as the chip's recorder.
    tracer: Option<Arc<Tracer>>,
    /// Health monitor fed by the `health` command's demo-stack samples.
    health: HealthMonitor,
    /// Always-on flight recorder: the black box holding the last N device
    /// ops, dumped by `postmortem` and on power-loss/retirement/alerts.
    flight: Arc<FlightRecorder>,
}

impl Console {
    /// Creates a console over a fresh scaled vendor-A chip, wrapped in
    /// tracing middleware so `trace on` can attach a recorder at runtime.
    pub fn new() -> Self {
        Self::with_chips(1)
    }

    /// Creates a console over an `n`-chip array of scaled vendor-A chips.
    /// A 1-chip array is byte-identical to the bare chip it wraps.
    pub fn with_chips(n: u32) -> Self {
        let array = ArrayDevice::homogeneous(ChipProfile::vendor_a_scaled(), n.max(1), 0x7E57);
        let flight = FlightRecorder::shared();
        flight.set_label("console");
        let chip = FlightDevice::with_sink(
            TraceDevice::new(array),
            flight.clone() as stash_flash::SharedFlightSink,
        );
        let cfg = VthiConfig::scaled_for(chip.geometry());
        Console {
            chip,
            key: None,
            cfg,
            rng: SmallRng::seed_from_u64(1),
            publics: std::collections::HashMap::new(),
            fingerprints: std::collections::HashMap::new(),
            tracer: None,
            health: HealthMonitor::default(),
            flight,
        }
    }

    /// Prints the device banner.
    pub fn banner(&self) {
        let g = self.chip.geometry();
        let chips = self.chip.chip_count();
        let chips_note = if chips > 1 { format!(" ({chips} chips)") } else { String::new() };
        println!(
            "device: {}{chips_note} | {} blocks x {} pages x {} B | hidden: {} bits/page ({} B payload)",
            self.chip.profile().name,
            g.blocks_per_chip,
            g.pages_per_block,
            g.page_bytes,
            self.cfg.hidden_bits_per_page,
            self.cfg.payload_bytes_per_page(),
        );
    }

    /// Executes one console line.
    pub fn dispatch(&mut self, line: &str) -> Outcome {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { return Outcome::Continue };
        let args: Vec<&str> = parts.collect();
        let result = match cmd {
            "help" => {
                self.help();
                Ok(())
            }
            "quit" | "exit" => return Outcome::Quit,
            "status" => {
                self.banner();
                Ok(())
            }
            "key" => self.cmd_key(&args),
            "erase" => self.cmd_erase(&args),
            "program" => self.cmd_program(&args),
            "fill" => self.cmd_fill(&args),
            "read" => self.cmd_read(&args),
            "probe" => self.cmd_probe(&args),
            "hist" => self.cmd_hist(&args),
            "hide" => self.cmd_hide(&args),
            "reveal" => self.cmd_reveal(&args),
            "capacity" => self.cmd_capacity(&args),
            "cycle" => self.cmd_cycle(&args),
            "age" => self.cmd_age(&args),
            "wearplan" => self.cmd_wearplan(&args),
            "fingerprint" => self.cmd_fingerprint(&args),
            "trng" => self.cmd_trng(&args),
            "meter" => {
                println!("{}", self.chip.meter());
                Ok(())
            }
            "trace" => self.cmd_trace(&args),
            "postmortem" => self.cmd_postmortem(&args),
            "crash" => self.cmd_crash(&args),
            "health" => self.cmd_health(&args),
            "stats" => self.cmd_stats(&args),
            other => Err(format!("unknown command `{other}` (try `help`)")),
        };
        if let Err(msg) = result {
            println!("error: {msg}");
        }
        Outcome::Continue
    }

    fn help(&self) {
        println!(
            "commands:\n\
             \x20 status                      device summary\n\
             \x20 key <passphrase...>         set the hiding key\n\
             \x20 erase <block>               erase a block\n\
             \x20 program <block> <page>      program random public data\n\
             \x20 fill <block>                program every page of a block\n\
             \x20 read <block> <page>         read + verify public data\n\
             \x20 probe <block> <page>        per-cell voltage stats\n\
             \x20 hist <block> <lo> <hi>      block voltage histogram slice\n\
             \x20 hide <block> <page> <text>  hide text in a fresh page\n\
             \x20 reveal <block> <page>       recover hidden text (needs key)\n\
             \x20 capacity <block> <page>     §6.3 capacity assessment\n\
             \x20 cycle <block> <n>           add n P/E cycles of wear\n\
             \x20 age <days>                  retention aging (whole chip)\n\
             \x20 wearplan                    PEC-matched hiding blocks (§5.2)\n\
             \x20 fingerprint <label|cmp a b> enroll / compare fingerprints\n\
             \x20 trng <bytes>                harvest random bytes\n\
             \x20 meter                       op counts / device time / energy\n\
             \x20 trace on|off|dump [fmt]     span tracing; fmt: tree|json|flame\n\
             \x20 trace analyze [file]        critical path + top spans (+ per-chip report\n\
             \x20                             when analyzing the live device)\n\
             \x20 trace diff <old> <new>      per-span deltas between two trace JSONLs\n\
             \x20 trace topn [k] [file]       top-k spans by self device time\n\
             \x20 postmortem [dir]            dump the flight recorder (last ops + spans)\n\
             \x20 crash <at_op> [fraction]    power-cut + cold-remount recovery demo\n\
             \x20 health [--chips N]          device-health report on a demo stack (wear,\n\
             \x20                             margins, detectability, alerts; N-chip array\n\
             \x20                             adds per-chip gauges)\n\
             \x20 stats [prom|json]           export health gauges (Prometheus text or\n\
             \x20                             versioned JSON snapshot)\n\
             \x20 quit"
        );
    }

    fn parse_block(&self, s: Option<&&str>) -> Result<BlockId, String> {
        let b: u32 =
            s.ok_or("missing block")?.parse().map_err(|_| "block must be a number".to_owned())?;
        Ok(BlockId(b))
    }

    fn parse_page(&self, args: &[&str]) -> Result<PageId, String> {
        let block = self.parse_block(args.first())?;
        let p: u32 = args
            .get(1)
            .ok_or("missing page")?
            .parse()
            .map_err(|_| "page must be a number".to_owned())?;
        Ok(PageId::new(block, p))
    }

    fn cmd_key(&mut self, args: &[&str]) -> Result<(), String> {
        if args.is_empty() {
            return Err("usage: key <passphrase>".into());
        }
        self.key = Some(HidingKey::from_passphrase(&args.join(" ")));
        println!("hiding key set");
        Ok(())
    }

    fn cmd_erase(&mut self, args: &[&str]) -> Result<(), String> {
        let b = self.parse_block(args.first())?;
        self.chip.erase_block(b).map_err(|e| e.to_string())?;
        self.publics.retain(|&(blk, _), _| blk != b.0);
        println!("erased {b} (PEC now {})", self.chip.block_pec(b).map_err(|e| e.to_string())?);
        Ok(())
    }

    fn cmd_program(&mut self, args: &[&str]) -> Result<(), String> {
        let page = self.parse_page(args)?;
        let data = BitPattern::random_half(&mut self.rng, self.chip.geometry().cells_per_page());
        self.chip.program_page(page, &data).map_err(|e| e.to_string())?;
        self.publics.insert((page.block.0, page.page), data);
        println!("programmed {page} with pseudorandom data");
        Ok(())
    }

    fn cmd_fill(&mut self, args: &[&str]) -> Result<(), String> {
        let b = self.parse_block(args.first())?;
        let cpp = self.chip.geometry().cells_per_page();
        for p in 0..self.chip.geometry().pages_per_block {
            let page = PageId::new(b, p);
            if self.chip.is_page_programmed(page).map_err(|e| e.to_string())? {
                continue;
            }
            let data = BitPattern::random_half(&mut self.rng, cpp);
            self.chip.program_page(page, &data).map_err(|e| e.to_string())?;
            self.publics.insert((b.0, p), data);
        }
        println!("filled {b}");
        Ok(())
    }

    fn cmd_read(&mut self, args: &[&str]) -> Result<(), String> {
        let page = self.parse_page(args)?;
        let bits = self.chip.read_page(page).map_err(|e| e.to_string())?;
        match self.publics.get(&(page.block.0, page.page)) {
            Some(expected) => println!(
                "read {page}: {} bits, {} errors vs written data",
                bits.len(),
                bits.hamming_distance(expected)
            ),
            None => println!(
                "read {page}: {} bits ({} zeros) — no reference pattern on record",
                bits.len(),
                bits.count_zeros()
            ),
        }
        Ok(())
    }

    fn cmd_probe(&mut self, args: &[&str]) -> Result<(), String> {
        let page = self.parse_page(args)?;
        let mut levels = Vec::new();
        self.chip.probe_voltages_into(page, &mut levels).map_err(|e| e.to_string())?;
        let h = Histogram::from_levels(&levels);
        println!(
            "probe {page}: mean {:.2}, sd {:.2}, >=Vth({}) {:.3}%, >=127 {:.3}%",
            h.mean(),
            h.std_dev(),
            self.cfg.vth,
            h.fraction_at_or_above(self.cfg.vth) * 100.0,
            h.fraction_at_or_above(127) * 100.0,
        );
        Ok(())
    }

    fn cmd_hist(&mut self, args: &[&str]) -> Result<(), String> {
        let b = self.parse_block(args.first())?;
        let lo: u8 = args.get(1).unwrap_or(&"0").parse().map_err(|_| "bad lo".to_owned())?;
        let hi: u8 = args.get(2).unwrap_or(&"80").parse().map_err(|_| "bad hi".to_owned())?;
        let mut h = Histogram::new();
        let mut levels = Vec::new();
        for p in 0..self.chip.geometry().pages_per_block {
            self.chip
                .probe_voltages_into(PageId::new(b, p), &mut levels)
                .map_err(|e| e.to_string())?;
            h.add_levels(&levels);
        }
        let max = (lo..=hi).map(|l| h.pct(l)).fold(0.0f64, f64::max).max(1e-9);
        for level in lo..=hi {
            let bar = "#".repeat(((h.pct(level) / max) * 50.0).round() as usize);
            println!("{level:>3} {:>7.4}% {bar}", h.pct(level));
        }
        Ok(())
    }

    fn key_or_err(&self) -> Result<HidingKey, String> {
        self.key.clone().ok_or_else(|| "set a key first: key <passphrase>".to_owned())
    }

    fn cmd_hide(&mut self, args: &[&str]) -> Result<(), String> {
        if args.len() < 3 {
            return Err("usage: hide <block> <page> <text...>".into());
        }
        let page = self.parse_page(args)?;
        let key = self.key_or_err()?;
        let mut payload = args[2..].join(" ").into_bytes();
        let cap = self.cfg.payload_bytes_per_page();
        if payload.len() > cap {
            return Err(format!("text too long: {} bytes, page hides {cap}", payload.len()));
        }
        payload.resize(cap, 0);
        let public = BitPattern::random_half(&mut self.rng, self.chip.geometry().cells_per_page());
        let tracer = self.tracer.clone();
        let mut hider = Hider::new(&mut self.chip, key, self.cfg.clone()).with_tracer(tracer);
        let report =
            hider.hide_on_fresh_page(page, &public, &payload).map_err(|e| e.to_string())?;
        self.publics.insert((page.block.0, page.page), public);
        println!(
            "hidden {} bytes in {page} ({} cells, {} PP steps)",
            cap,
            report.cells.len(),
            report.pp_steps
        );
        Ok(())
    }

    fn cmd_reveal(&mut self, args: &[&str]) -> Result<(), String> {
        let page = self.parse_page(args)?;
        let key = self.key_or_err()?;
        let public = self.publics.get(&(page.block.0, page.page)).cloned();
        let tracer = self.tracer.clone();
        let mut hider = Hider::new(&mut self.chip, key, self.cfg.clone()).with_tracer(tracer);
        let bytes = hider.reveal_page(page, public.as_ref()).map_err(|e| e.to_string())?;
        let text: String = bytes
            .iter()
            .take_while(|&&b| b != 0)
            .map(|&b| if b.is_ascii_graphic() || b == b' ' { b as char } else { '.' })
            .collect();
        println!("revealed: {text:?}");
        Ok(())
    }

    fn cmd_capacity(&mut self, args: &[&str]) -> Result<(), String> {
        let page = self.parse_page(args)?;
        let public = self
            .publics
            .get(&(page.block.0, page.page))
            .cloned()
            .ok_or("program the page first (capacity reads its public data)")?;
        let cap = PageCapacity::assess(&mut self.chip, page, &public, self.cfg.vth)
            .map_err(|e| e.to_string())?;
        println!(
            "capacity {page}: {} erased cells, {} naturally >= Vth, recommended <= {} hidden bits \
             (config uses {})",
            cap.erased_cells,
            cap.naturally_above,
            cap.recommended_max_bits,
            self.cfg.used_bits_per_page(),
        );
        Ok(())
    }

    fn cmd_cycle(&mut self, args: &[&str]) -> Result<(), String> {
        let b = self.parse_block(args.first())?;
        let n: u32 =
            args.get(1).ok_or("missing count")?.parse().map_err(|_| "bad count".to_owned())?;
        self.chip.cycle_block(b, n).map_err(|e| e.to_string())?;
        self.publics.retain(|&(blk, _), _| blk != b.0);
        println!("cycled {b} to PEC {}", self.chip.block_pec(b).map_err(|e| e.to_string())?);
        Ok(())
    }

    fn cmd_age(&mut self, args: &[&str]) -> Result<(), String> {
        let days: f64 =
            args.first().ok_or("missing days")?.parse().map_err(|_| "bad days".to_owned())?;
        self.chip.age_days(days);
        println!("aged chip by {days} days");
        Ok(())
    }

    fn cmd_wearplan(&mut self, _args: &[&str]) -> Result<(), String> {
        let plan = WearPlan::for_chip(&self.chip, vthi::placement::DEFAULT_PEC_TOLERANCE);
        println!(
            "anchor PEC {}: {} safe blocks, {} outliers",
            plan.anchor_pec,
            plan.safe_blocks.len(),
            plan.outlier_blocks.len()
        );
        if !plan.outlier_blocks.is_empty() {
            let shown: Vec<String> =
                plan.outlier_blocks.iter().take(8).map(ToString::to_string).collect();
            println!("avoid: {}", shown.join(" "));
        }
        Ok(())
    }

    fn cmd_fingerprint(&mut self, args: &[&str]) -> Result<(), String> {
        match args {
            [label] => {
                let fp = Fingerprint::enroll(&mut self.chip, BlockId(0), 4)
                    .map_err(|e| e.to_string())?;
                self.fingerprints.insert((*label).to_owned(), fp);
                self.publics.retain(|&(blk, _), _| blk != 0);
                println!("enrolled fingerprint `{label}` from block 0 (contents destroyed)");
                Ok(())
            }
            ["cmp", a, b] => {
                let fa = self.fingerprints.get(*a).ok_or(format!("no fingerprint `{a}`"))?;
                let fb = self.fingerprints.get(*b).ok_or(format!("no fingerprint `{b}`"))?;
                println!(
                    "similarity({a}, {b}) = {:.3} -> {}",
                    fa.similarity(fb),
                    if fa.matches(fb) { "MATCH" } else { "no match" }
                );
                Ok(())
            }
            _ => Err("usage: fingerprint <label> | fingerprint cmp <a> <b>".into()),
        }
    }

    fn cmd_trace(&mut self, args: &[&str]) -> Result<(), String> {
        match args.first().copied() {
            Some("on") => {
                let tracer = Tracer::shared();
                self.chip.install_recorder(Some(tracer.clone()));
                self.flight.set_tracer(Some(tracer.clone()));
                self.tracer = Some(tracer);
                println!("tracing on — chip ops now attribute to spans");
                Ok(())
            }
            Some("off") => {
                self.chip.install_recorder(None);
                self.flight.set_tracer(None);
                self.tracer = None;
                println!("tracing off");
                Ok(())
            }
            Some("dump") => {
                let tracer = self.tracer.as_ref().ok_or("tracing is off (trace on first)")?;
                let report = tracer.report();
                match args.get(1).copied().unwrap_or("tree") {
                    "tree" => print!("{}", export::render_tree(&report)),
                    "json" => print!("{}", export::export_jsonl(&report)),
                    "flame" => print!("{}", export::export_collapsed(&report)),
                    other => return Err(format!("unknown format `{other}` (tree|json|flame)")),
                }
                Ok(())
            }
            Some("analyze") => {
                let stats = self.trace_stats(args.get(1).copied())?;
                print!("{}", analyze::render_analysis(&stats, 10));
                // File-less analysis runs against the live array: join the
                // span attribution with the per-chip meters.
                if args.get(1).is_none() {
                    let array = self.chip.inner().inner();
                    let chips: Vec<_> =
                        (0..array.chip_count() as usize).map(|i| array.chip_meter(i)).collect();
                    print!("{}", analyze::render_chip_report(&chips, Some(&stats)));
                }
                Ok(())
            }
            Some("diff") => {
                let (a, b) = match (args.get(1), args.get(2)) {
                    (Some(a), Some(b)) => (*a, *b),
                    _ => return Err("usage: trace diff <old.jsonl> <new.jsonl>".into()),
                };
                let old = Self::trace_stats_from_file(a)?;
                let new = Self::trace_stats_from_file(b)?;
                print!("{}", analyze::render_diff(&analyze::diff(&old, &new), 10));
                Ok(())
            }
            Some("topn") => {
                let k: usize = match args.get(1) {
                    Some(s) => s.parse().map_err(|_| "k must be a number".to_owned())?,
                    None => 10,
                };
                let stats = self.trace_stats(args.get(2).copied())?;
                for (name, s) in analyze::top_spans(&stats, k) {
                    println!("{name}: {:.1} us, {:.1} uJ, {} ops", s.device_us, s.energy_uj, s.ops);
                }
                Ok(())
            }
            _ => Err(
                "usage: trace on|off|dump [tree|json|flame]|analyze [file]|diff <a> <b>|topn [k] [file]"
                    .into(),
            ),
        }
    }

    /// Parsed trace stats from a file, or from the live tracer when no
    /// file is given.
    fn trace_stats(&self, file: Option<&str>) -> Result<analyze::TraceStats, String> {
        match file {
            Some(path) => Self::trace_stats_from_file(path),
            None => {
                let tracer = self.tracer.as_ref().ok_or("tracing is off (trace on first)")?;
                analyze::parse_trace(&export::export_jsonl(&tracer.report()))
            }
        }
    }

    fn trace_stats_from_file(path: &str) -> Result<analyze::TraceStats, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        analyze::parse_trace(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Dumps the flight recorder on demand.
    fn cmd_postmortem(&mut self, args: &[&str]) -> Result<(), String> {
        if let Some(dir) = args.first() {
            self.flight.set_dump_dir(*dir);
        }
        if self.flight.is_empty() {
            println!("flight recorder is empty (no device ops yet)");
            return Ok(());
        }
        let path = self.flight.dump("manual").map_err(|e| e.to_string())?;
        println!(
            "postmortem: {} ops (of {} total) -> {}",
            self.flight.len(),
            self.flight.seq(),
            path.display()
        );
        Ok(())
    }

    fn cmd_trng(&mut self, args: &[&str]) -> Result<(), String> {
        let n: usize = args.first().unwrap_or(&"16").parse().map_err(|_| "bad count".to_owned())?;
        if n > 4096 {
            return Err("at most 4096 bytes per call".into());
        }
        let block = BlockId(self.chip.geometry().blocks_per_chip - 1);
        let mut trng = FlashTrng::new(&mut self.chip, block);
        let bytes = trng.bytes(n).map_err(|e| e.to_string())?;
        self.publics.retain(|&(blk, _), _| blk != block.0);
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        println!("{hex}");
        Ok(())
    }

    /// Power-loss demo on a throwaway device: schedule one cut, run the
    /// fill + hide workload into it, reboot, then cold-mount and narrate
    /// what the journal replay and hidden-slot recovery found.
    fn cmd_crash(&mut self, args: &[&str]) -> Result<(), String> {
        let at_op: u64 = args
            .first()
            .ok_or("usage: crash <at_op> [fraction]")?
            .parse()
            .map_err(|_| "at_op must be a number".to_owned())?;
        let fraction: f64 = match args.get(1) {
            Some(s) => s.parse().map_err(|_| "fraction must be a number".to_owned())?,
            None => 0.5,
        };
        if !(0.0..=1.0).contains(&fraction) {
            return Err("fraction must be in [0, 1]".into());
        }

        const SLOTS: usize = 3;
        let seed = 0xCADE;
        let mut profile = ChipProfile::vendor_a();
        profile.geometry = Geometry { blocks_per_chip: 12, pages_per_block: 4, page_bytes: 1024 };
        let cut = PowerCut { at_op, fraction };
        let dev = PowerCutDevice::with_cuts(Chip::new(profile, seed), vec![cut]);
        let ftl_cfg = FtlConfig { reserve_blocks: 6, gc_low_water: 2 };
        let ftl = Ftl::new(dev, ftl_cfg).map_err(|e| e.to_string())?;
        let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        cfg.parity_group = SLOTS;
        let key = self.key.clone().unwrap_or_else(|| HidingKey::from_passphrase("crash demo"));
        let mut vol = HiddenVolume::format(ftl, key.clone(), cfg.clone(), SLOTS)
            .map_err(|e| e.to_string())?;

        let cap = vol.ftl().capacity_pages();
        let cpp = vol.ftl().chip().geometry().cells_per_page();
        let secrets: Vec<Vec<u8>> = (0..SLOTS)
            .map(|s| (0..cfg.slot_bytes()).map(|b| (s * 29 + b + 1) as u8).collect())
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut acked_public: Vec<Option<BitPattern>> = vec![None; cap as usize];
        let mut acked_hidden = 0usize;

        let is_power_loss = |e: &StegoError| {
            matches!(
                e,
                StegoError::Ftl(FtlError::Flash(FlashError::PowerLoss))
                    | StegoError::Hide(HideError::Flash(FlashError::PowerLoss))
            )
        };
        let outcome = (|| -> Result<(), StegoError> {
            for lpn in 0..cap {
                let data = BitPattern::random_half(&mut rng, cpp);
                vol.write_public(lpn, &data)?;
                acked_public[lpn as usize] = Some(data);
            }
            for (s, secret) in secrets.iter().enumerate() {
                vol.write_hidden(s, secret)?;
                acked_hidden += 1;
            }
            Ok(())
        })();
        if let Err(e) = &outcome {
            if !is_power_loss(e) {
                return Err(format!("workload failed for a non-power reason: {e}"));
            }
        }

        let mut dev = vol.unmount().into_chip();
        let acked_count = acked_public.iter().filter(|p| p.is_some()).count();
        println!(
            "workload: {acked_count}/{cap} public writes acked, {acked_hidden}/{SLOTS} hidden slots acked"
        );
        if dev.is_off() {
            println!(
                "power cut fired at device op {at_op} (fraction {fraction}); device dark after op {}",
                dev.op_index()
            );
        } else {
            println!(
                "note: workload finished after {} device ops; cut at op {at_op} never fired",
                dev.op_index()
            );
        }

        dev.reboot();
        println!("-- power restored, cold mount --");
        let (ftl2, mount) = Ftl::mount(dev, ftl_cfg).map_err(|e| e.to_string())?;
        println!(
            "mount:   scanned {} pages, replayed {} live ({} stale, {} torn discarded)",
            mount.scanned_pages, mount.live_pages, mount.stale_pages, mount.torn_pages
        );
        let (mut vol2, rec) =
            HiddenVolume::remount(ftl2, key, cfg, SLOTS).map_err(|e| e.to_string())?;
        println!(
            "remount: {} slots decoded clean, {} rebuilt from parity ({} tag failures), {} lost",
            rec.recovered, rec.reconstructed, rec.tag_failures, rec.lost
        );

        // Acked public writes must read back (modulo raw read noise that
        // the public volume's own ECC would absorb — budget 1% of bits).
        let mut public_ok = 0usize;
        for (lpn, want) in acked_public.iter().enumerate() {
            let Some(want) = want else { continue };
            if let Ok(Some(got)) = vol2.read_public(lpn as u64) {
                let diff: u32 = got
                    .as_bytes()
                    .iter()
                    .zip(want.as_bytes())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                if (diff as f64) <= (want.as_bytes().len() * 8) as f64 * 0.01 {
                    public_ok += 1;
                }
            }
        }
        println!("public:  {public_ok}/{acked_count} acked pages read back");
        let mut hidden_ok = 0usize;
        for (s, secret) in secrets.iter().enumerate().take(acked_hidden) {
            if let Ok(Some(got)) = vol2.read_hidden(s) {
                if got == *secret {
                    hidden_ok += 1;
                }
            }
        }
        println!(
            "hidden:  {hidden_ok}/{acked_hidden} acked payloads byte-identical after recovery"
        );
        match vol2.ftl().check_consistency() {
            Ok(()) => println!("ftl:     mapping consistent"),
            Err(e) => println!("ftl:     INCONSISTENT: {e}"),
        }
        if public_ok == acked_count && hidden_ok == acked_hidden {
            println!("ok: everything acknowledged before the cut survived the crash");
        }
        Ok(())
    }

    /// Builds the deterministic health-demo stack (small chip array with
    /// preconditioned uneven wear → FTL → hidden volume with parity),
    /// exercises it, and collects one [`HealthSample`]: per-block PEC from
    /// the device's wear accounting, journal/retirement/free-pool figures
    /// from the FTL, BER and capacity margins from the hidden volume's
    /// health probe, a fixed-parameter SVM detectability reading, and —
    /// for `chips > 1` — a per-chip attribution breakdown.
    fn demo_health_sample(key: &HidingKey, chips: u32) -> Result<HealthSample, String> {
        const SLOTS: usize = 4;
        let seed = 0x6EA17;
        let chips = chips.max(1);
        let mut profile = ChipProfile::vendor_a();
        profile.geometry = Geometry { blocks_per_chip: 12, pages_per_block: 4, page_bytes: 1024 };
        let mut dev = ArrayDevice::homogeneous(profile, chips, seed);
        // Uneven wear laid down before the FTL formats, so the histogram
        // and hottest-block gauges have real structure to report; the
        // pattern is rotated per chip so the per-chip gauges differ too.
        for c in 0..chips {
            for (b, n) in [(2u32, 40u32), (5, 12), (7, 25), (9, 4)] {
                let block = BlockId(c * 12 + (b + c) % 12);
                dev.cycle_block(block, n).map_err(|e| e.to_string())?;
            }
        }
        let ftl = Ftl::new(dev, FtlConfig { reserve_blocks: 6, gc_low_water: 2 })
            .map_err(|e| e.to_string())?;
        let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        cfg.parity_group = SLOTS;
        let mut vol = HiddenVolume::format(ftl, key.clone(), cfg.clone(), SLOTS)
            .map_err(|e| e.to_string())?;

        // Workload: fill the public volume, then every hidden slot.
        let cap = vol.ftl().capacity_pages();
        let cpp = vol.ftl().chip().geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(seed);
        for lpn in 0..cap {
            let data = BitPattern::random_half(&mut rng, cpp);
            vol.write_public(lpn, &data).map_err(|e| e.to_string())?;
        }
        for s in 0..SLOTS {
            let payload: Vec<u8> = (0..cfg.slot_bytes()).map(|b| (s * 31 + b + 1) as u8).collect();
            vol.write_hidden(s, &payload).map_err(|e| e.to_string())?;
        }

        let hidden = vol.health_probe().map_err(|e| e.to_string())?;
        let detect = Self::detect_probe(&mut vol)?;
        let wear = vol.ftl().chip().wear_summary();
        let per_chip = if chips > 1 {
            let ftl = vol.ftl();
            let array = ftl.chip();
            let local = array.local_blocks();
            let retired = ftl.retired_blocks();
            (0..chips)
                .map(|c| {
                    let w = array.chip_wear_summary(c as usize);
                    let blocks = w.per_block_pec.len().max(1) as f64;
                    let total: u64 = w.per_block_pec.iter().map(|&p| u64::from(p)).sum();
                    ChipHealth {
                        chip: c,
                        hottest_pec: w.per_block_pec.iter().copied().max().unwrap_or(0),
                        mean_pec: total as f64 / blocks,
                        grown_bad_blocks: u64::from(w.grown_bad_blocks),
                        free_blocks: ftl.free_blocks_on_chip(c as usize) as u64,
                        retired_blocks: retired.iter().filter(|b| b.0 / local == c).count() as u64,
                        meter: array.chip_meter(c as usize),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(HealthSample {
            per_block_pec: wear.per_block_pec,
            grown_bad_blocks: u64::from(wear.grown_bad_blocks),
            journal_depth: vol.ftl().journal_depth(),
            retired_blocks: vol.ftl().retired_count() as u64,
            free_blocks: vol.ftl().free_blocks() as u64,
            corrected_bits_max: hidden.corrected_bits_max as u64,
            correctable_bits_per_slot: hidden.correctable_bits_per_slot as u64,
            advertised_slots: hidden.advertised_slots as u64,
            data_slots: hidden.data_slots as u64,
            parity_slots: hidden.parity_slots as u64,
            lost_capacity_slots: hidden.lost_capacity_slots as u64,
            detect_accuracy: Some(detect),
            meter: vol.ftl().chip().meter(),
            per_chip,
        })
    }

    /// Fixed-parameter SVM detectability probe: can a linear SVM separate
    /// voltage histograms of slot-backing pages from ordinary public pages
    /// on the demo stack? Held-out accuracy near the coin flip means the
    /// hidden volume leaves no voltage-domain tell.
    fn detect_probe<D: NandDevice>(vol: &mut HiddenVolume<D>) -> Result<f64, String> {
        let slot_lpns = vol.slot_lpns().to_vec();
        let cap = vol.ftl().capacity_pages();
        let clean_lpns: Vec<u64> =
            (0..cap).filter(|l| !slot_lpns.contains(l)).take(slot_lpns.len()).collect();
        let mut levels = Vec::new();
        let mut hist_of = |lpn: u64| -> Result<Vec<f64>, String> {
            let page = vol.ftl().physical_of(lpn).ok_or(format!("lpn {lpn} unmapped"))?;
            vol.ftl_mut()
                .chip_mut()
                .probe_voltages_into(page, &mut levels)
                .map_err(|e| e.to_string())?;
            let mut hist = vec![0.0f64; 32];
            for &v in &levels {
                hist[(v as usize) / 8] += 1.0;
            }
            let n = levels.len().max(1) as f64;
            hist.iter_mut().for_each(|h| *h /= n);
            Ok(hist)
        };
        let (mut train, mut test) = (Dataset::new(), Dataset::new());
        for (lpns, label) in [(&slot_lpns, 1i8), (&clean_lpns, -1i8)] {
            for (i, &lpn) in lpns.iter().enumerate() {
                let h = hist_of(lpn)?;
                if i % 2 == 0 {
                    train.push(h, label);
                } else {
                    test.push(h, label);
                }
            }
        }
        let params = SvmParams { kernel: Kernel::Linear, c: 1.0, ..Default::default() };
        let scaler = StandardScaler::fit(&train);
        Ok(Svm::train(&scaler.transform_dataset(&train), &params)
            .accuracy(&scaler.transform_dataset(&test)))
    }

    /// Health report: collect a demo-stack sample, feed the monitor, then
    /// render the wear heatmap, the gauge table and any alerts that fired.
    fn cmd_health(&mut self, args: &[&str]) -> Result<(), String> {
        let chips: u32 = match args {
            [] => 1,
            ["--chips", n] | [n] => {
                n.parse().map_err(|_| "usage: health [--chips N]".to_owned())?
            }
            _ => return Err("usage: health [--chips N]".into()),
        };
        if !(1..=64).contains(&chips) {
            return Err("chips must be in 1..=64".into());
        }
        let key = self.key.clone().unwrap_or_else(|| HidingKey::from_passphrase("health demo"));
        let sample = Self::demo_health_sample(&key, chips)?;
        let fired = self.health.observe(&sample);

        println!(
            "demo stack: {} blocks, {}/{} hidden slots advertised (+{} parity), sample #{}",
            sample.per_block_pec.len(),
            sample.advertised_slots,
            sample.data_slots,
            sample.parity_slots,
            self.health.sample_count(),
        );
        let hottest = sample.per_block_pec.iter().copied().max().unwrap_or(0).max(1);
        println!("per-block wear (P/E cycles):");
        for (b, &pec) in sample.per_block_pec.iter().enumerate() {
            let bar = "#".repeat(((f64::from(pec) / f64::from(hottest)) * 40.0).round() as usize);
            println!("{b:>4} {pec:>6} {bar}");
        }
        if !sample.per_chip.is_empty() {
            println!("per-chip:");
            for c in &sample.per_chip {
                println!(
                    "  chip {:>2}: hottest {} PEC, mean {:.1}, free {}, retired {}, grown-bad {}, {} ops",
                    c.chip,
                    c.hottest_pec,
                    c.mean_pec,
                    c.free_blocks,
                    c.retired_blocks,
                    c.grown_bad_blocks,
                    c.meter.total_ops(),
                );
            }
        }
        println!("gauges:");
        for ((name, label), v) in self.health.registry().gauges() {
            if label.is_empty() {
                println!("  {name:<28} {v}");
            } else {
                println!("  {name:<28} {v}  ({label})");
            }
        }
        if fired.is_empty() {
            println!("alerts: none fired on this sample ({} total)", self.health.alerts().len());
        } else {
            for a in &fired {
                println!("alert: {a}");
            }
            // Edge-triggered alerts are a dump trigger: preserve the last
            // console-device ops leading up to the threshold crossing (the
            // ring is empty when the console device hasn't been touched).
            if !self.flight.is_empty() {
                if let Some(p) = self.flight.dump_on_alerts(&fired) {
                    println!("postmortem: alert context -> {}", p.display());
                }
            }
        }
        Ok(())
    }

    /// Exports the health registry — merged with the live trace metrics
    /// when tracing is on — as Prometheus text or a JSON snapshot.
    fn cmd_stats(&mut self, args: &[&str]) -> Result<(), String> {
        let mut registry = self.health.registry().clone();
        if let Some(tracer) = &self.tracer {
            registry.merge(&tracer.registry());
        }
        match args.first().copied().unwrap_or("prom") {
            "prom" => print!("{}", render_prometheus(&registry)),
            "json" => println!("{}", write_snapshot(&registry)),
            other => return Err(format!("unknown format `{other}` (prom|json)")),
        }
        Ok(())
    }
}

impl Default for Console {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(console: &mut Console, lines: &[&str]) {
        for l in lines {
            assert_eq!(console.dispatch(l), Outcome::Continue, "line {l}");
        }
    }

    #[test]
    fn full_session_smoke() {
        let mut c = Console::new();
        run(
            &mut c,
            &[
                "status",
                "help",
                "key open sesame",
                "erase 0",
                "fill 0",
                "read 0 3",
                "probe 0 3",
                "capacity 0 3",
                "meter",
                "wearplan",
                "cycle 5 100",
                "age 30",
            ],
        );
    }

    #[test]
    fn hide_reveal_through_console() {
        let mut c = Console::new();
        run(&mut c, &["key hunter2", "erase 1", "hide 1 0 meet at dawn", "reveal 1 0"]);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut c = Console::new();
        run(
            &mut c,
            &[
                "bogus",
                "erase notanumber",
                "erase 99999",
                "reveal 0 0", // no key set
                "hide 0 0 x", // still no key
                "trng 100000",
            ],
        );
    }

    #[test]
    fn trace_workflow_through_console() {
        let mut c = Console::new();
        run(
            &mut c,
            &[
                "trace dump", // error: tracing off — reported, not fatal
                "trace on",
                "key hunter2",
                "erase 1",
                "hide 1 0 meet at dawn",
                "reveal 1 0",
                "trace dump tree",
                "trace dump json",
                "trace dump flame",
                "trace dump bogus", // error reported, not fatal
                "trace off",
            ],
        );
        assert!(c.tracer.is_none());
        // And the spans really captured the work.
        c.dispatch("trace on");
        c.dispatch("erase 2");
        let report = c.tracer.as_ref().unwrap().report();
        assert!(report.totals.total_ops() >= 1);
    }

    #[test]
    fn postmortem_and_trace_analysis_through_console() {
        let dir = std::env::temp_dir().join("stash_cli_postmortem_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Console::new();
        // Empty ring: reported, nothing written, not fatal.
        run(&mut c, &["postmortem"]);
        assert!(c.flight.last_dump().is_none());
        run(&mut c, &["trace on", "key hunter2", "erase 1", "hide 1 0 meet at dawn", "reveal 1 0"]);
        run(&mut c, &[&format!("postmortem {}", dir.display())]);
        let path = c.flight.last_dump().expect("dump written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"stash-postmortem/1\""));
        // Ops carry span context resolved through the live tracer.
        assert!(text.contains("\"span\":\"root;"), "span paths attributed:\n{text}");

        // Analysis: live device, then file-based diff across two snapshots.
        let a = dir.join("a.jsonl");
        std::fs::write(&a, export::export_jsonl(&c.tracer.as_ref().unwrap().report())).unwrap();
        run(&mut c, &["erase 2", "fill 2"]);
        let b = dir.join("b.jsonl");
        std::fs::write(&b, export::export_jsonl(&c.tracer.as_ref().unwrap().report())).unwrap();
        run(
            &mut c,
            &[
                "trace analyze",
                "trace topn 5",
                &format!("trace analyze {}", a.display()),
                &format!("trace diff {} {}", a.display(), b.display()),
                "trace diff onlyone", // usage error — reported, not fatal
                "trace analyze /nonexistent", // io error — reported, not fatal
            ],
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_demo_through_console() {
        let mut c = Console::new();
        run(
            &mut c,
            &[
                "crash 50 0.5", // cut mid-way through device op 50
                "crash 40",     // default fraction
                "crash 999999", // workload finishes first; cut never fires
                "crash",        // usage error — reported, not fatal
                "crash x y",    // parse error — reported, not fatal
                "crash 10 7.5", // fraction out of range — reported, not fatal
            ],
        );
    }

    #[test]
    fn health_and_stats_through_console() {
        let mut c = Console::new();
        run(
            &mut c,
            &[
                "stats",       // empty registry: valid (empty) exposition
                "health",      // collects a demo sample, renders the report
                "health",      // second sample: monitor state accumulates
                "stats",       // default format is Prometheus text
                "stats prom",  // explicit
                "stats json",  // snapshot
                "stats bogus", // error reported, not fatal
            ],
        );
        assert_eq!(c.health.sample_count(), 2);
        // And the exports really round-trip through the in-crate parsers.
        let reg = c.health.registry();
        let back = stash_obs::parse_prometheus(&render_prometheus(reg)).expect("prom parses");
        assert_eq!(&back, reg);
        let back = stash_obs::parse_snapshot(&write_snapshot(reg)).expect("snapshot parses");
        assert_eq!(&back, reg);
    }

    #[test]
    fn health_gauges_pin_the_demo_stack_meter() {
        // The demo stack's health gauges must agree with ground truth from
        // the stack itself: the chip meter totals, the block count and the
        // slot accounting — not merely be plausible numbers.
        let key = HidingKey::from_passphrase("health demo");
        let sample = Console::demo_health_sample(&key, 1).expect("demo sample");
        assert_eq!(sample.per_block_pec.len(), 12);
        assert!(sample.per_chip.is_empty(), "single-chip stack publishes no per-chip section");
        assert_eq!(sample.data_slots, 4);
        assert_eq!(sample.advertised_slots, 4);
        assert_eq!(sample.parity_slots, 1);
        assert!(sample.journal_depth > 0, "workload must have journaled writes");
        let hottest = sample.per_block_pec.iter().copied().max().unwrap();
        assert!(hottest >= 40, "preconditioned wear visible in the sample");
        let acc = sample.detect_accuracy.expect("probe ran");
        assert!((0.0..=1.0).contains(&acc));

        let mut m = HealthMonitor::default();
        m.observe(&sample);
        let r = m.registry();
        assert_eq!(r.gauge("health_ops_total", ""), Some(sample.meter.total_ops() as f64));
        assert_eq!(r.gauge("health_faults_total", ""), Some(sample.meter.total_faults() as f64));
        assert_eq!(r.gauge("health_device_time_us", ""), Some(sample.meter.device_time_us));
        assert_eq!(r.gauge("health_energy_uj", ""), Some(sample.meter.energy_uj));
        assert_eq!(r.gauge("health_hottest_pec", ""), Some(f64::from(hottest)));
        assert_eq!(r.gauge("health_journal_depth", ""), Some(sample.journal_depth as f64));
        assert_eq!(r.gauge("health_free_blocks", ""), Some(sample.free_blocks as f64));
        assert_eq!(r.gauge("health_detect_margin", ""), Some(acc - 0.5));
        assert_eq!(
            r.histogram("health_block_pec", "").unwrap().total(),
            sample.per_block_pec.len() as u64
        );
    }

    #[test]
    fn demo_health_sample_is_deterministic() {
        let key = HidingKey::from_passphrase("health demo");
        let a = Console::demo_health_sample(&key, 1).expect("first sample");
        let b = Console::demo_health_sample(&key, 1).expect("second sample");
        assert_eq!(a, b, "demo stack must be fully seeded");
    }

    #[test]
    fn multi_chip_health_sample_attributes_per_chip() {
        let key = HidingKey::from_passphrase("health demo");
        let sample = Console::demo_health_sample(&key, 3).expect("array sample");
        assert_eq!(sample.per_block_pec.len(), 36, "wear summary spans the whole array");
        assert_eq!(sample.per_chip.len(), 3);
        for (i, c) in sample.per_chip.iter().enumerate() {
            assert_eq!(c.chip, i as u32);
            assert!(c.meter.total_ops() > 0, "every chip saw work: {c:?}");
            assert!(c.hottest_pec >= 40, "preconditioned wear visible on chip {i}");
        }
        // Per-chip meters partition the aggregate exactly.
        let ops: u64 = sample.per_chip.iter().map(|c| c.meter.total_ops()).sum();
        assert_eq!(ops, sample.meter.total_ops());
        // And the per-chip gauges land in the registry under a chip label.
        let mut m = HealthMonitor::default();
        m.observe(&sample);
        assert_eq!(
            m.registry().gauge("health_chip_hottest_pec", "chip:2"),
            Some(f64::from(sample.per_chip[2].hottest_pec))
        );
    }

    #[test]
    fn health_command_accepts_chips_flag() {
        let mut c = Console::new();
        run(&mut c, &["health --chips 2", "health 2", "health --chips 0", "health x y z"]);
        assert_eq!(c.health.sample_count(), 2, "only the valid invocations sampled");
    }

    #[test]
    fn multi_chip_console_smoke() {
        let mut c = Console::with_chips(2);
        let blocks = c.chip.geometry().blocks_per_chip;
        assert_eq!(c.chip.chip_count(), 2);
        // Address a block on the second chip through the widened space.
        let far = blocks - 1;
        run(
            &mut c,
            &[
                "status",
                "key open sesame",
                &format!("erase {far}"),
                &format!("program {far} 0"),
                &format!("read {far} 0"),
                "erase 1",
                "hide 1 0 meet at dawn",
                "reveal 1 0",
            ],
        );
    }

    #[test]
    fn quit_outcomes() {
        let mut c = Console::new();
        assert_eq!(c.dispatch("quit"), Outcome::Quit);
        assert_eq!(c.dispatch("exit"), Outcome::Quit);
        assert_eq!(c.dispatch(""), Outcome::Continue);
    }

    #[test]
    fn fingerprint_workflow() {
        let mut c = Console::new();
        run(&mut c, &["fingerprint first", "fingerprint second", "fingerprint cmp first second"]);
        let fa = c.fingerprints.get("first").unwrap();
        let fb = c.fingerprints.get("second").unwrap();
        assert!(fa.matches(fb), "same chip must match itself");
    }
}
