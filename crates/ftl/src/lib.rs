//! # stash-ftl — a page-mapped flash translation layer
//!
//! Every flash device the paper targets sits behind an FTL (§3): logical
//! addresses are remapped onto physical pages because flash forbids
//! in-place updates; garbage collection and wear leveling migrate data
//! between blocks. The FTL matters to data hiding for two reasons the paper
//! calls out:
//!
//! 1. **Migration endangers hidden data** (§5.1): when the FTL moves or
//!    erases a page that carries hidden bits, the hiding user must re-embed
//!    them. [`WriteReport::migrations`] surfaces every move so a hiding
//!    layer (see `stash-stego`) can do exactly that.
//! 2. **Wear must stay locally uniform** (§5.2, §7): VT-HI is undetectable
//!    only among blocks of comparable PEC, and the FTL's wear-leveling
//!    policy is what delivers that.
//!
//! The design is a textbook page-mapped FTL: an active block absorbs
//! writes, greedy cost-benefit GC reclaims the block with the fewest valid
//! pages, and the free-block allocator prefers the least-worn block.

mod ftl;
pub mod sector;
pub mod workload;

pub use ftl::{Ftl, FtlConfig, FtlError, FtlStats, Migration, MountReport, WriteReport};
pub use sector::{SectorDevice, SECTOR_BYTES};
pub use workload::{AccessPattern, WorkloadGen};
