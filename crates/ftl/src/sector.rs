//! A conventional 512-byte-sector block-device surface over the FTL.
//!
//! The paper's hidden-volume sketch (§9.2) assumes "data can then be read
//! and written from this volume using standard block-level operations."
//! Hosts speak sectors, flash speaks pages; this adapter packs sectors into
//! pages, protects every page with interleaved SEC-DED ECC (the paper's
//! Fig. 4 runs public data through an ECC encoder — this is it), and
//! performs read-modify-write for partial-page updates — exactly what a
//! USB thumb drive's controller does. Because reads return *corrected*
//! data, RMW cycles do not accumulate bit rot, and the paper-faithful
//! ones-indexed hidden-cell selection has the exact public bits it needs.

use crate::ftl::{Ftl, FtlError, Lpn, Migration};
use stash_ecc::hamming::ExtendedHamming;
use stash_ecc::{bits_to_bytes, bytes_to_bits, BlockCode};
use stash_flash::BitPattern;

/// Bytes per host sector.
pub const SECTOR_BYTES: usize = 512;

/// A sector-addressed block device over a page-mapped FTL with per-page
/// SEC-DED protection.
#[derive(Debug)]
pub struct SectorDevice {
    ftl: Ftl,
    sectors_per_page: usize,
    /// Interleaved (64,57) extended Hamming code protecting each page.
    code: ExtendedHamming,
    /// Codewords per page.
    codewords: usize,
}

impl SectorDevice {
    /// Wraps an FTL. Each physical page stores
    /// `floor(page_bits / 64) * 57` protected data bits, of which whole
    /// 512-byte sectors are exposed; the rest is ECC overhead and slack.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] if a page cannot hold at least
    /// one protected sector.
    pub fn new(ftl: Ftl) -> Result<Self, FtlError> {
        let page_bits = ftl.chip().geometry().cells_per_page();
        let code = ExtendedHamming::code_72_64(); // (64, 57)
        let codewords = page_bits / code.code_len();
        let data_bits = codewords * code.data_len();
        let sectors_per_page = data_bits / (SECTOR_BYTES * 8);
        if sectors_per_page == 0 {
            return Err(FtlError::InvalidConfig(format!(
                "page of {page_bits} bits cannot hold one protected {SECTOR_BYTES}-byte sector"
            )));
        }
        Ok(SectorDevice { ftl, sectors_per_page, code, codewords })
    }

    /// Host-visible sectors per physical page after ECC overhead.
    pub fn sectors_per_page(&self) -> usize {
        self.sectors_per_page
    }

    /// Encodes a page's data bytes into the protected flash pattern.
    fn protect(&self, data: &[u8]) -> BitPattern {
        let page_bits = self.ftl.chip().geometry().cells_per_page();
        let data_bits = bytes_to_bits(data, self.codewords * self.code.data_len());
        let mut out: Vec<bool> = Vec::with_capacity(page_bits);
        for chunk in data_bits.chunks(self.code.data_len()) {
            out.extend(self.code.encode(chunk));
        }
        out.resize(page_bits, true); // slack cells stay erased
        out.into_iter().collect()
    }

    /// Decodes a protected flash pattern back to data bytes, correcting
    /// single-bit errors per codeword.
    fn unprotect(&self, page: &BitPattern) -> Result<Vec<u8>, FtlError> {
        let bits: Vec<bool> = page.iter().collect();
        let mut data: Vec<bool> = Vec::with_capacity(self.codewords * self.code.data_len());
        for chunk in bits.chunks(self.code.code_len()).take(self.codewords) {
            match self.code.decode(chunk) {
                Ok(d) => data.extend(d),
                // A detected-but-uncorrectable codeword is a media error;
                // surface the raw bits rather than failing the whole page.
                Err(_) => data.extend(&chunk[..self.code.data_len()]),
            }
        }
        Ok(bits_to_bytes(&data))
    }

    /// Total host-visible sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.ftl.capacity_pages() * self.sectors_per_page as u64
    }

    /// The underlying FTL (e.g. for a hiding layer to inspect migrations).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Consumes the device, returning the FTL.
    pub fn into_ftl(self) -> Ftl {
        self.ftl
    }

    fn locate(&self, sector: u64) -> Result<(Lpn, usize), FtlError> {
        if sector >= self.capacity_sectors() {
            return Err(FtlError::LpnOutOfRange {
                lpn: sector / self.sectors_per_page as u64,
                capacity: self.ftl.capacity_pages(),
            });
        }
        Ok((
            sector / self.sectors_per_page as u64,
            (sector % self.sectors_per_page as u64) as usize,
        ))
    }

    /// Reads one sector; unwritten space reads as zeros (like a fresh
    /// drive after TRIM).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses or flash errors.
    pub fn read_sector(
        &mut self,
        sector: u64,
        buf: &mut [u8; SECTOR_BYTES],
    ) -> Result<(), FtlError> {
        let (lpn, idx) = self.locate(sector)?;
        match self.ftl.read(lpn)? {
            None => buf.fill(0),
            Some(page) => {
                let bytes = self.unprotect(&page)?;
                buf.copy_from_slice(&bytes[idx * SECTOR_BYTES..(idx + 1) * SECTOR_BYTES]);
            }
        }
        Ok(())
    }

    /// Writes one sector (read-modify-write of the containing page).
    /// Returns the FTL migrations the write triggered, so hiding layers can
    /// re-embed.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses or flash errors.
    pub fn write_sector(
        &mut self,
        sector: u64,
        buf: &[u8; SECTOR_BYTES],
    ) -> Result<Vec<Migration>, FtlError> {
        let (lpn, idx) = self.locate(sector)?;
        let data_bytes = self.codewords * self.code.data_len() / 8;
        let mut page = match self.ftl.read(lpn)? {
            Some(p) => self.unprotect(&p)?,
            None => vec![0u8; data_bytes],
        };
        page.resize(data_bytes, 0);
        page[idx * SECTOR_BYTES..(idx + 1) * SECTOR_BYTES].copy_from_slice(buf);
        let pattern = self.protect(&page);
        let report = self.ftl.write(lpn, &pattern)?;
        Ok(report.migrations)
    }

    /// Discards a whole-page-aligned range of sectors (TRIM).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses.
    pub fn trim_sectors(&mut self, start: u64, count: u64) -> Result<(), FtlError> {
        let spp = self.sectors_per_page as u64;
        let first_page = start.div_ceil(spp);
        let last_page = (start + count) / spp;
        for lpn in first_page..last_page {
            self.ftl.trim(lpn)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::FtlConfig;
    use stash_flash::{Chip, ChipProfile, Geometry};

    fn device() -> SectorDevice {
        let mut profile = ChipProfile::vendor_a();
        profile.geometry = Geometry { blocks_per_chip: 10, pages_per_block: 8, page_bytes: 2048 };
        let ftl = Ftl::new(Chip::new(profile, 77), FtlConfig::default()).unwrap();
        SectorDevice::new(ftl).unwrap()
    }

    #[test]
    fn sector_roundtrip_within_and_across_pages() {
        let mut d = device();
        // 2048-byte pages: 256 (64,57) codewords -> 14592 data bits ->
        // 3 protected sectors per page.
        assert_eq!(d.sectors_per_page(), 3);
        assert_eq!(d.capacity_sectors(), 6 * 8 * 3);
        let mut bufs = Vec::new();
        for s in 0..9u64 {
            let mut buf = [0u8; SECTOR_BYTES];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (s as usize * 31 + i) as u8;
            }
            d.write_sector(s, &buf).unwrap();
            bufs.push(buf);
        }
        for (s, expected) in bufs.iter().enumerate() {
            let mut got = [0u8; SECTOR_BYTES];
            d.read_sector(s as u64, &mut got).unwrap();
            assert_eq!(&got, expected, "sector {s}");
        }
    }

    #[test]
    fn rmw_preserves_sibling_sectors() {
        let mut d = device();
        let a = [0xAAu8; SECTOR_BYTES];
        let b = [0xBBu8; SECTOR_BYTES];
        d.write_sector(0, &a).unwrap(); // sector 0 of page 0
        d.write_sector(1, &b).unwrap(); // sector 1 of the same page
        let mut got = [0u8; SECTOR_BYTES];
        d.read_sector(0, &mut got).unwrap();
        assert_eq!(got, a, "RMW clobbered a sibling sector");
        d.read_sector(1, &mut got).unwrap();
        assert_eq!(got, b);
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut d = device();
        let mut got = [7u8; SECTOR_BYTES];
        d.read_sector(123, &mut got).unwrap();
        assert_eq!(got, [0u8; SECTOR_BYTES]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = device();
        let cap = d.capacity_sectors();
        let buf = [0u8; SECTOR_BYTES];
        assert!(matches!(d.write_sector(cap, &buf), Err(FtlError::LpnOutOfRange { .. })));
    }

    #[test]
    fn trim_clears_aligned_pages() {
        let mut d = device();
        let buf = [0x11u8; SECTOR_BYTES];
        for s in 0..6 {
            d.write_sector(s, &buf).unwrap();
        }
        // Trim sectors 0..6 = pages 0..2 (3 sectors per page).
        d.trim_sectors(0, 6).unwrap();
        let mut got = [9u8; SECTOR_BYTES];
        d.read_sector(0, &mut got).unwrap();
        assert_eq!(got, [0u8; SECTOR_BYTES]);
    }

    #[test]
    fn too_small_page_rejected() {
        let mut profile = ChipProfile::vendor_a();
        // 256-byte pages cannot hold one protected 512-byte sector.
        profile.geometry = Geometry { blocks_per_chip: 8, pages_per_block: 8, page_bytes: 256 };
        let ftl = Ftl::new(Chip::new(profile, 1), FtlConfig::default()).unwrap();
        assert!(matches!(SectorDevice::new(ftl), Err(FtlError::InvalidConfig(_))));
    }

    #[test]
    fn rmw_cycles_do_not_accumulate_bit_rot() {
        // 200 RMW cycles on the same page: without per-page ECC the raw
        // read noise would accumulate; with it the data stays exact.
        let mut d = device();
        let stable = [0x5Au8; SECTOR_BYTES];
        d.write_sector(0, &stable).unwrap();
        for round in 0..200u64 {
            let buf = [(round % 251) as u8; SECTOR_BYTES];
            d.write_sector(1, &buf).unwrap(); // same page as sector 0
        }
        let mut got = [0u8; SECTOR_BYTES];
        d.read_sector(0, &mut got).unwrap();
        assert_eq!(got, stable, "sector 0 rotted across RMW cycles");
    }
}
