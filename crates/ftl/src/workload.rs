//! Synthetic host workloads for exercising the FTL and the hiding layers
//! above it — the traffic a long-lived steganographic SSD must survive
//! (paper §2: PT-HI's wear behaviour "potentially disqualifies PT-HI as a
//! building block for a long-lived, steganographic SSD"; §9.2's hidden
//! volume rides on exactly this kind of device activity).

use crate::ftl::Lpn;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Host access patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential sweeps over the logical space.
    Sequential,
    /// Uniformly random page writes.
    UniformRandom,
    /// Zipfian-skewed writes (a small hot set absorbs most traffic),
    /// parameterized by the skew exponent (≈1.0 for classic Zipf).
    Zipfian {
        /// Skew exponent; larger = hotter hot set.
        theta: f64,
    },
}

/// A reproducible stream of logical page numbers to write.
#[derive(Debug)]
pub struct WorkloadGen {
    pattern: AccessPattern,
    capacity: u64,
    rng: SmallRng,
    cursor: u64,
    /// Precomputed inverse-CDF table for Zipfian sampling.
    zipf_cdf: Vec<f64>,
}

impl WorkloadGen {
    /// Creates a workload over `capacity` logical pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(pattern: AccessPattern, capacity: u64, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let zipf_cdf = match pattern {
            AccessPattern::Zipfian { theta } => {
                // Rank-1 is the hottest page; identity permutation keeps the
                // generator simple (the FTL is rank-agnostic anyway).
                let mut weights: Vec<f64> =
                    (1..=capacity.min(1 << 16)).map(|r| 1.0 / (r as f64).powf(theta)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
            _ => Vec::new(),
        };
        WorkloadGen { pattern, capacity, rng: SmallRng::seed_from_u64(seed), cursor: 0, zipf_cdf }
    }

    /// The next logical page to write.
    pub fn next_lpn(&mut self) -> Lpn {
        match self.pattern {
            AccessPattern::Sequential => {
                let lpn = self.cursor % self.capacity;
                self.cursor += 1;
                lpn
            }
            AccessPattern::UniformRandom => self.rng.gen_range(0..self.capacity),
            AccessPattern::Zipfian { .. } => {
                let u: f64 = self.rng.gen();
                let rank =
                    match self.zipf_cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
                        Ok(i) | Err(i) => i,
                    };
                (rank as u64).min(self.capacity - 1)
            }
        }
    }

    /// Convenience: the next `n` logical pages.
    pub fn take_lpns(&mut self, n: usize) -> Vec<Lpn> {
        (0..n).map(|_| self.next_lpn()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_sweeps_wrap() {
        let mut w = WorkloadGen::new(AccessPattern::Sequential, 4, 1);
        assert_eq!(w.take_lpns(6), vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn uniform_covers_space() {
        let mut w = WorkloadGen::new(AccessPattern::UniformRandom, 16, 2);
        let mut seen = std::collections::HashSet::new();
        for lpn in w.take_lpns(400) {
            assert!(lpn < 16);
            seen.insert(lpn);
        }
        assert_eq!(seen.len(), 16, "400 uniform draws must cover 16 pages");
    }

    #[test]
    fn zipfian_is_skewed_but_total() {
        let mut w = WorkloadGen::new(AccessPattern::Zipfian { theta: 1.0 }, 64, 3);
        let lpns = w.take_lpns(4000);
        let hot = lpns.iter().filter(|&&l| l < 8).count() as f64 / 4000.0;
        assert!(hot > 0.5, "top 12.5% of pages should absorb >50% of traffic, got {hot}");
        assert!(lpns.iter().all(|&l| l < 64));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WorkloadGen::new(AccessPattern::Zipfian { theta: 0.9 }, 100, 7).take_lpns(50);
        let b = WorkloadGen::new(AccessPattern::Zipfian { theta: 0.9 }, 100, 7).take_lpns(50);
        assert_eq!(a, b);
    }
}
