//! The page-mapped FTL implementation.

use stash_flash::{
    crc32, BitPattern, BlockId, Chip, CmdResult, FlashError, NandCmd, NandDevice, PageId,
};
use stash_obs::{span, Tracer};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Logical page number.
pub type Lpn = u64;

/// Journal record magic, first bytes of every spare the FTL writes.
const JOURNAL_MAGIC: [u8; 4] = *b"SJ01";
/// Journal record format version.
const JOURNAL_VERSION: u8 = 1;
/// Encoded journal record length: magic + version + seq + lpn + crc32.
const JOURNAL_LEN: usize = 4 + 1 + 8 + 8 + 4;

/// Encodes the per-page journal record the FTL appends to every program's
/// spare area: which logical page this physical page holds, stamped with a
/// monotonically increasing sequence number so a remount scan can order
/// copies of the same LPN.
fn encode_journal(seq: u64, lpn: Lpn) -> [u8; JOURNAL_LEN] {
    let mut rec = [0u8; JOURNAL_LEN];
    rec[..4].copy_from_slice(&JOURNAL_MAGIC);
    rec[4] = JOURNAL_VERSION;
    rec[5..13].copy_from_slice(&seq.to_le_bytes());
    rec[13..21].copy_from_slice(&lpn.to_le_bytes());
    let crc = crc32(&rec[..21]);
    rec[21..25].copy_from_slice(&crc.to_le_bytes());
    rec
}

/// Decodes a journal record; `None` for anything that is not a well-formed
/// record (wrong length, magic, version, or CRC) — a remount scan treats
/// such pages as torn.
fn decode_journal(spare: &[u8]) -> Option<(u64, Lpn)> {
    if spare.len() != JOURNAL_LEN || spare[..4] != JOURNAL_MAGIC || spare[4] != JOURNAL_VERSION {
        return None;
    }
    let crc = u32::from_le_bytes(spare[21..25].try_into().ok()?);
    if crc != crc32(&spare[..21]) {
        return None;
    }
    let seq = u64::from_le_bytes(spare[5..13].try_into().ok()?);
    let lpn = u64::from_le_bytes(spare[13..21].try_into().ok()?);
    Some((seq, lpn))
}

/// FTL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtlConfig {
    /// Blocks withheld from logical capacity (over-provisioning); must be
    /// at least 2 so GC always has somewhere to move data.
    pub reserve_blocks: u32,
    /// GC starts when the free-block pool shrinks to this size.
    pub gc_low_water: u32,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig { reserve_blocks: 4, gc_low_water: 2 }
    }
}

/// Errors returned by the FTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// An underlying flash operation failed.
    Flash(FlashError),
    /// The logical address is beyond the exported capacity.
    LpnOutOfRange {
        /// Requested logical page.
        lpn: Lpn,
        /// Exported logical pages.
        capacity: u64,
    },
    /// The device is full and garbage collection cannot reclaim space.
    NoSpace,
    /// Configuration is unusable for this geometry.
    InvalidConfig(String),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::Flash(e) => write!(f, "flash operation failed: {e}"),
            FtlError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "lpn {lpn} beyond logical capacity {capacity}")
            }
            FtlError::NoSpace => write!(f, "no reclaimable space left"),
            FtlError::InvalidConfig(m) => write!(f, "invalid ftl configuration: {m}"),
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

/// One page relocation performed by garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Logical page that moved.
    pub lpn: Lpn,
    /// Previous physical location (now erased or about to be).
    pub from: PageId,
    /// New physical location.
    pub to: PageId,
}

/// Outcome of a logical write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReport {
    /// Physical page that received the data.
    pub page: PageId,
    /// Relocations performed by GC to make room, in order. A hiding layer
    /// must re-embed hidden payloads for these pages (paper §5.1).
    pub migrations: Vec<Migration>,
    /// Blocks erased by GC during this write (hidden data there is gone).
    pub erased_blocks: Vec<BlockId>,
}

/// What a crash-recovery mount scan found on the device. Produced by
/// [`Ftl::mount`]; the counts feed the recovery metrics in the chaos and
/// crash-point benches.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MountReport {
    /// Physical pages whose spare area was scanned.
    pub scanned_pages: u64,
    /// Pages whose journal record won its LPN (now mapped).
    pub live_pages: u64,
    /// Pages holding a superseded copy of an LPN (valid journal, lost on
    /// sequence number).
    pub stale_pages: u64,
    /// Programmed pages with a missing or corrupt journal record — torn
    /// programs, discarded by the durable-or-absent rule.
    pub torn_pages: u64,
    /// Blocks sealed against further appends (any programmed page).
    pub sealed_blocks: u32,
    /// Blocks returned to the free pool (will be erased before reuse).
    pub free_blocks: u32,
    /// Blocks found grown bad and retired.
    pub retired_blocks: u32,
    /// Simulated device time the scan cost, microseconds.
    pub scan_device_us: f64,
}

/// Cumulative FTL statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlStats {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Physical page programs issued (host + GC).
    pub physical_writes: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Pages relocated by GC.
    pub gc_moves: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Blocks permanently retired after going grown bad.
    pub retirements: u64,
    /// Transient program/erase failures absorbed by retries.
    pub transient_retries: u64,
}

impl FtlStats {
    /// Write amplification factor (physical / host writes).
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.physical_writes as f64 / self.host_writes as f64
        }
    }
}

/// A page-mapped flash translation layer owning a [`NandDevice`].
///
/// Generic over the device backend, defaulting to a bare [`Chip`]; hand it
/// a middleware stack (`FaultDevice<TraceDevice<Chip>>`, …) to run the same
/// FTL against fault injection or tracing.
#[derive(Debug)]
pub struct Ftl<D: NandDevice = Chip> {
    chip: D,
    cfg: FtlConfig,
    /// lpn → physical page.
    map: HashMap<Lpn, PageId>,
    /// physical page → lpn (valid pages only).
    rmap: HashMap<PageId, Lpn>,
    /// Valid-page count per block.
    valid: Vec<u32>,
    /// Next free page index per block (pages_per_block = full).
    cursor: Vec<u32>,
    /// Fully-free blocks (erased, cursor 0), one pool per chip: allocation,
    /// GC and wear leveling are confined to the chip that owns an LPN, so
    /// cross-chip placement guarantees made above the FTL survive every
    /// relocation.
    free: Vec<Vec<BlockId>>,
    /// Block currently absorbing writes, one per chip.
    active: Vec<Option<BlockId>>,
    /// Chips behind the device ([`NandDevice::chip_count`]); 1 for a bare
    /// chip.
    chips: u32,
    /// Blocks per chip (`blocks_per_chip / chips`).
    local_blocks: u32,
    /// Blocks pulled out of rotation after going grown bad.
    retired: Vec<bool>,
    /// Blocks that must be erased before accepting writes even though they
    /// look empty — after a mount, an empty block may hide a torn erase.
    needs_erase: Vec<bool>,
    /// Sequence number stamped on the next journal record.
    next_seq: u64,
    stats: FtlStats,
    tracer: Option<Arc<Tracer>>,
}

/// Attempts after the first for transient program/erase failures.
const TRANSIENT_RETRIES: u32 = 4;
/// Simulated backoff before retry `n` is `RETRY_BACKOFF_US * 2^n`.
const RETRY_BACKOFF_US: f64 = 50.0;

impl<D: NandDevice> Ftl<D> {
    /// Creates an FTL over a device, erasing nothing up front (all blocks
    /// are treated as free).
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] when the reserve does not leave
    /// at least one logical block or GC headroom is impossible.
    pub fn new(chip: D, cfg: FtlConfig) -> Result<Self, FtlError> {
        let blocks = chip.geometry().blocks_per_chip;
        let chips = chip.chip_count().max(1);
        if blocks % chips != 0 {
            return Err(FtlError::InvalidConfig(format!(
                "{blocks} blocks do not divide evenly over {chips} chips"
            )));
        }
        let local_blocks = blocks / chips;
        if cfg.reserve_blocks < 2 {
            return Err(FtlError::InvalidConfig("reserve_blocks must be at least 2".into()));
        }
        // Reserve and GC headroom are per chip: each chip runs its own
        // allocation rotation, so each needs its own over-provisioning.
        if cfg.reserve_blocks >= local_blocks {
            return Err(FtlError::InvalidConfig(format!(
                "reserve {} exceeds {} blocks per chip",
                cfg.reserve_blocks, local_blocks
            )));
        }
        if cfg.gc_low_water < 1 || cfg.gc_low_water >= cfg.reserve_blocks {
            return Err(FtlError::InvalidConfig(
                "gc_low_water must be in [1, reserve_blocks)".into(),
            ));
        }
        let free: Vec<Vec<BlockId>> = (0..chips)
            .map(|c| (c * local_blocks..(c + 1) * local_blocks).map(BlockId).collect())
            .collect();
        Ok(Ftl {
            chip,
            cfg,
            map: HashMap::new(),
            rmap: HashMap::new(),
            valid: vec![0; blocks as usize],
            cursor: vec![0; blocks as usize],
            free,
            active: vec![None; chips as usize],
            chips,
            local_blocks,
            retired: vec![false; blocks as usize],
            needs_erase: vec![false; blocks as usize],
            next_seq: 0,
            stats: FtlStats::default(),
            tracer: None,
        })
    }

    /// The chip that owns a global block id.
    fn chip_of_block(&self, b: BlockId) -> usize {
        (b.0 / self.local_blocks) as usize
    }

    /// The home chip of a logical page. LPNs stripe round-robin over chips
    /// (`lpn % chips`) and never change home: GC, wear leveling and
    /// evacuation all relocate within the owning chip, so any cross-chip
    /// placement a layer above arranged (parity groups on distinct chips)
    /// is preserved for the life of the data.
    pub fn chip_of_lpn(&self, lpn: Lpn) -> usize {
        (lpn % u64::from(self.chips)) as usize
    }

    /// Chips behind the device (1 for a bare chip).
    pub fn chip_count(&self) -> u32 {
        self.chips
    }

    /// Mounts an FTL over a device that may hold prior state — the
    /// crash-recovery path. Scans every page's spare-area journal record
    /// and rebuilds the logical map from what actually became durable:
    ///
    /// * A programmed page with a valid journal record is a candidate copy
    ///   of its LPN; the highest sequence number wins, older copies are
    ///   stale.
    /// * A programmed page with a missing or corrupt record is a **torn
    ///   program** (the power died mid-pulse, before the spare landed). It
    ///   is left unmapped — the durable-or-absent rule — and its block is
    ///   sealed so GC reclaims it.
    /// * An empty block cannot be distinguished from a partially torn
    ///   erase, so it re-enters the free pool flagged for a clean erase
    ///   before reuse.
    /// * Grown-bad blocks are retired.
    ///
    /// # Errors
    ///
    /// Fails on configuration errors or device faults during the scan.
    pub fn mount(chip: D, cfg: FtlConfig) -> Result<(Self, MountReport), FtlError> {
        let mut f = Self::new(chip, cfg)?;
        let report = f.rebuild_from_device()?;
        Ok((f, report))
    }

    /// The mount-time scan behind [`mount`](Self::mount).
    fn rebuild_from_device(&mut self) -> Result<MountReport, FtlError> {
        let blocks_per_chip = self.chip.geometry().blocks_per_chip;
        let pages_per_block = self.chip.geometry().pages_per_block;
        let device_us_before = self.chip.meter().device_time_us;
        let mut report = MountReport::default();
        // (seq, lpn, page) candidates; seq is unique, so the sort below is
        // total and the rebuild deterministic.
        let mut candidates: Vec<(u64, Lpn, PageId)> = Vec::new();

        for pool in &mut self.free {
            pool.clear();
        }
        for slot in &mut self.active {
            *slot = None;
        }
        // One journal-scan batch for the whole device: on a multi-chip
        // array, `exec` partitions it by chip and scans every chip in
        // parallel (deterministic merge — results come back in command
        // order, and replay below is ordered by the global sequence number
        // anyway).
        let mut spare_cmds: Vec<NandCmd> = Vec::new();
        let mut spare_pages: Vec<PageId> = Vec::new();
        for b in (0..blocks_per_chip).map(BlockId) {
            if self.chip.is_grown_bad(b)? {
                self.mark_retired(b);
                self.cursor[b.0 as usize] = pages_per_block;
                report.retired_blocks += 1;
                continue;
            }
            let mut programmed = 0u32;
            for p in 0..pages_per_block {
                let page = PageId::new(b, p);
                if !self.chip.is_page_programmed(page)? {
                    continue;
                }
                programmed += 1;
                report.scanned_pages += 1;
                spare_cmds.push(NandCmd::ReadSpare(page));
                spare_pages.push(page);
            }
            if programmed > 0 {
                // Seal: no appends into a block with history; GC reclaims.
                self.cursor[b.0 as usize] = pages_per_block;
                report.sealed_blocks += 1;
            } else {
                self.cursor[b.0 as usize] = 0;
                self.needs_erase[b.0 as usize] = true;
                let owner = self.chip_of_block(b);
                self.free[owner].push(b);
                report.free_blocks += 1;
            }
        }
        for (result, &page) in self.chip.exec(&spare_cmds).into_iter().zip(&spare_pages) {
            let spare = match result {
                CmdResult::Spare(r) => r?,
                _ => unreachable!("ReadSpare returns Spare"),
            };
            match spare.as_deref().and_then(decode_journal) {
                Some((seq, lpn)) => candidates.push((seq, lpn, page)),
                None => report.torn_pages += 1,
            }
        }

        // Replay the journal in sequence order; the last write to an LPN
        // wins, exactly as it did before the crash.
        candidates.sort_unstable_by_key(|&(seq, _, _)| seq);
        for &(seq, lpn, page) in &candidates {
            if let Some(old) = self.map.insert(lpn, page) {
                self.rmap.remove(&old);
                self.valid[old.block.0 as usize] -= 1;
                report.stale_pages += 1;
            }
            self.rmap.insert(page, lpn);
            self.valid[page.block.0 as usize] += 1;
            self.next_seq = seq + 1;
        }
        report.live_pages = self.map.len() as u64;
        report.scan_device_us = self.chip.meter().device_time_us - device_us_before;
        Ok(report)
    }

    /// Verifies the internal mapping invariants: `map`/`rmap` are mutually
    /// consistent bijections, per-block valid counters agree with `rmap`,
    /// and no mapping points at a retired block.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (lpn, page) in &self.map {
            if self.rmap.get(page) != Some(lpn) {
                return Err(format!("map/rmap disagree for lpn {lpn} at {page}"));
            }
            if self.retired[page.block.0 as usize] {
                return Err(format!("lpn {lpn} mapped onto retired {}", page.block));
            }
        }
        for (page, lpn) in &self.rmap {
            if self.map.get(lpn) != Some(page) {
                return Err(format!("rmap/map disagree for {page} (lpn {lpn})"));
            }
        }
        for b in 0..self.valid.len() {
            let counted = self.rmap.keys().filter(|p| p.block.0 as usize == b).count() as u32;
            if self.valid[b] != counted {
                return Err(format!(
                    "block {b} valid counter {} != counted {counted}",
                    self.valid[b]
                ));
            }
        }
        Ok(())
    }

    /// Attaches (or detaches, with `None`) a tracer: GC, wear leveling and
    /// evacuation open spans on it, and the tracer is installed as the
    /// device's [`Recorder`](stash_flash::Recorder) so every flash op
    /// attributes to the span that issued it (a no-op unless a
    /// [`TraceDevice`](stash_flash::TraceDevice) sits in the stack).
    pub fn attach_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.chip.install_recorder(tracer.clone().map(|t| t as stash_flash::SharedRecorder));
        self.tracer = tracer;
    }

    /// The tracer attached via [`attach_tracer`](Self::attach_tracer).
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Logical pages exported to the host: per-chip capacity × chips (the
    /// reserve is withheld on every chip).
    pub fn capacity_pages(&self) -> u64 {
        let g = self.chip.geometry();
        u64::from(self.chips)
            * u64::from(self.local_blocks - self.cfg.reserve_blocks)
            * u64::from(g.pages_per_block)
    }

    /// Shared access to the device.
    pub fn chip(&self) -> &D {
        &self.chip
    }

    /// Exclusive access to the device — used by hiding layers to run their
    /// extra programming passes on pages the FTL just placed.
    pub fn chip_mut(&mut self) -> &mut D {
        &mut self.chip
    }

    /// Consumes the FTL, returning the device.
    pub fn into_chip(self) -> D {
        self.chip
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Physical location of a logical page, if mapped.
    pub fn physical_of(&self, lpn: Lpn) -> Option<PageId> {
        self.map.get(&lpn).copied()
    }

    /// Logical owner of a physical page, if valid.
    pub fn logical_of(&self, page: PageId) -> Option<Lpn> {
        self.rmap.get(&page).copied()
    }

    /// Writes one logical page. Any GC work needed to make room happens
    /// first and is reported.
    ///
    /// # Errors
    ///
    /// Fails when the LPN is out of range, the pattern is mis-sized, or the
    /// device cannot reclaim space.
    pub fn write(&mut self, lpn: Lpn, data: &BitPattern) -> Result<WriteReport, FtlError> {
        self.check_lpn(lpn)?;
        let _write = span!(self.tracer, "host_write", "lpn={lpn}");
        let (mut migrations, mut erased) = (Vec::new(), Vec::new());
        self.ensure_headroom(self.chip_of_lpn(lpn), &mut migrations, &mut erased)?;

        let page = self.program_on_fresh_page(lpn, data, &mut migrations, &mut erased)?;
        self.stats.host_writes += 1;

        // Invalidate the old copy, if any.
        if let Some(old) = self.map.insert(lpn, page) {
            self.rmap.remove(&old);
            self.valid[old.block.0 as usize] -= 1;
        }
        self.rmap.insert(page, lpn);
        self.valid[page.block.0 as usize] += 1;

        Ok(WriteReport { page, migrations, erased_blocks: erased })
    }

    /// Reads one logical page; `None` if never written or trimmed.
    ///
    /// # Errors
    ///
    /// Fails when the LPN is out of range or the flash read fails.
    pub fn read(&mut self, lpn: Lpn) -> Result<Option<BitPattern>, FtlError> {
        self.check_lpn(lpn)?;
        match self.map.get(&lpn) {
            None => Ok(None),
            Some(&page) => {
                let _read = span!(self.tracer, "host_read", "lpn={lpn}");
                Ok(Some(self.chip.read_page(page)?))
            }
        }
    }

    /// Discards a logical page (TRIM).
    ///
    /// # Errors
    ///
    /// Fails when the LPN is out of range.
    pub fn trim(&mut self, lpn: Lpn) -> Result<(), FtlError> {
        self.check_lpn(lpn)?;
        if let Some(old) = self.map.remove(&lpn) {
            self.rmap.remove(&old);
            self.valid[old.block.0 as usize] -= 1;
        }
        Ok(())
    }

    /// Static wear leveling (paper refs [70–72]): when the wear spread
    /// exceeds `threshold`, relocate the cold data parked on the
    /// least-worn full block so that block re-enters the allocation
    /// rotation. Returns the migrations performed (a hiding layer must
    /// re-embed for them, like any GC move). No-op when wear is even.
    ///
    /// Keeping wear locally uniform is not just an endurance concern here:
    /// the paper's detectability result (Fig. 10) holds only among blocks
    /// of comparable PEC, so a steganographic device *must* wear-level.
    ///
    /// # Errors
    ///
    /// Fails on flash errors or if space cannot be reclaimed.
    pub fn static_wear_level(&mut self, threshold: u32) -> Result<Vec<Migration>, FtlError> {
        // Wear is judged and leveled within each chip: the detectability
        // argument needs comparable PEC *among the blocks an examiner would
        // compare*, and relocations must not move an LPN off its home chip.
        let mut migrations = Vec::new();
        for c in 0..self.chips as usize {
            migrations.extend(self.wear_level_chip(c, threshold)?);
        }
        Ok(migrations)
    }

    /// One chip's static wear-leveling pass (see
    /// [`static_wear_level`](Self::static_wear_level)).
    fn wear_level_chip(&mut self, c: usize, threshold: u32) -> Result<Vec<Migration>, FtlError> {
        let pages_per_block = self.chip.geometry().pages_per_block;
        let lo = c as u32 * self.local_blocks;
        let hi = lo + self.local_blocks;
        let pecs: Vec<u32> =
            (lo..hi).map(|b| self.chip.block_pec(BlockId(b)).unwrap_or(0)).collect();
        let max_pec = *pecs.iter().max().unwrap_or(&0);
        // Coldest candidate: least-worn, fully-written, non-active block.
        let Some(cold) = (lo..hi)
            .map(BlockId)
            .filter(|b| Some(*b) != self.active[c])
            .filter(|b| !self.retired[b.0 as usize])
            .filter(|b| self.cursor[b.0 as usize] == pages_per_block)
            .filter(|b| self.valid[b.0 as usize] > 0)
            .min_by_key(|b| pecs[(b.0 - lo) as usize])
        else {
            return Ok(Vec::new());
        };
        if max_pec.saturating_sub(pecs[(cold.0 - lo) as usize]) < threshold {
            return Ok(Vec::new());
        }
        let _wl = span!(self.tracer, "static_wear_level", "cold={cold}");

        let mut migrations = Vec::new();
        let mut erased = Vec::new();
        for p in 0..pages_per_block {
            let from = PageId::new(cold, p);
            let Some(&lpn) = self.rmap.get(&from) else { continue };
            let data = self.chip.read_page(from)?;
            let to = self.program_on_fresh_page(lpn, &data, &mut migrations, &mut erased)?;
            self.stats.gc_moves += 1;
            self.rmap.remove(&from);
            self.valid[cold.0 as usize] -= 1;
            self.map.insert(lpn, to);
            self.rmap.insert(to, lpn);
            self.valid[to.block.0 as usize] += 1;
            migrations.push(Migration { lpn, from, to });
        }
        if self.erase_unless_grown_bad(cold)? {
            self.cursor[cold.0 as usize] = 0;
            self.free[c].push(cold);
        }
        Ok(migrations)
    }

    /// Blocks currently in the free pool (all chips).
    pub fn free_blocks(&self) -> usize {
        self.free.iter().map(Vec::len).sum::<usize>()
            + (0..self.chips as usize).filter(|&c| self.active_has_room(c)).count()
    }

    /// Blocks currently in chip `c`'s free pool.
    pub fn free_blocks_on_chip(&self, c: usize) -> usize {
        self.free[c].len() + usize::from(self.active_has_room(c))
    }

    /// Number of blocks permanently retired after going grown bad — the
    /// cheap census [`retired_blocks`](Self::retired_blocks) enumerates.
    pub fn retired_count(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }

    /// Depth of the spare-area write journal: the next sequence number to
    /// be issued, i.e. how many journaled page writes this FTL has
    /// performed (or replayed) over its lifetime.
    pub fn journal_depth(&self) -> u64 {
        self.next_seq
    }

    /// Blocks permanently retired after going grown bad.
    pub fn retired_blocks(&self) -> Vec<BlockId> {
        self.retired
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(i, _)| BlockId(i as u32))
            .collect()
    }

    /// Moves every valid page off `block` and takes it out of rotation.
    ///
    /// This is the grown-bad remap hook for scrub/recovery layers: when the
    /// chip declares a block grown bad its pages still *read* fine but can
    /// never be erased or reprogrammed, so live data must move while it is
    /// legible. The block is erased and refreed when it is actually
    /// healthy, retired otherwise. Returns the migrations performed —
    /// hidden payloads on them must be re-embedded, like any GC move.
    ///
    /// # Errors
    ///
    /// Fails on flash errors or if space cannot be reclaimed for the moved
    /// pages.
    pub fn evacuate_block(&mut self, block: BlockId) -> Result<Vec<Migration>, FtlError> {
        let _evac = span!(self.tracer, "evacuate_block", "block={block}");
        let pages_per_block = self.chip.geometry().pages_per_block;
        let c = self.chip_of_block(block);
        if self.active[c] == Some(block) {
            self.active[c] = None;
        }
        // Never hand out pages from the block while it drains.
        self.cursor[block.0 as usize] = pages_per_block;
        if let Some(pos) = self.free[c].iter().position(|&b| b == block) {
            self.free[c].swap_remove(pos);
        }
        let mut migrations = Vec::new();
        let mut erased = Vec::new();
        for p in 0..pages_per_block {
            let from = PageId::new(block, p);
            let Some(&lpn) = self.rmap.get(&from) else { continue };
            let data = {
                let _copy = span!(self.tracer, "migrate_read");
                self.chip.read_page(from)?
            };
            let to = self.program_on_fresh_page(lpn, &data, &mut migrations, &mut erased)?;
            self.stats.gc_moves += 1;
            self.rmap.remove(&from);
            self.valid[block.0 as usize] -= 1;
            self.map.insert(lpn, to);
            self.rmap.insert(to, lpn);
            self.valid[to.block.0 as usize] += 1;
            migrations.push(Migration { lpn, from, to });
        }
        if self.chip.is_grown_bad(block)? {
            self.mark_retired(block);
        } else if self.erase_unless_grown_bad(block)? {
            self.cursor[block.0 as usize] = 0;
            self.free[c].push(block);
        }
        Ok(migrations)
    }

    /// Takes a block out of every allocation structure, permanently.
    fn mark_retired(&mut self, b: BlockId) {
        if !self.retired[b.0 as usize] {
            self.retired[b.0 as usize] = true;
            self.stats.retirements += 1;
            if let Some(t) = &self.tracer {
                t.counter_add("block_retirements", "", 1);
            }
        }
        let c = self.chip_of_block(b);
        if let Some(pos) = self.free[c].iter().position(|&x| x == b) {
            self.free[c].swap_remove(pos);
        }
        if self.active[c] == Some(b) {
            self.active[c] = None;
        }
    }

    /// Erases a block, absorbing transient failures with bounded retries.
    /// Returns `Ok(false)` — and retires the block — when the erase fails
    /// because the block went grown bad.
    fn erase_unless_grown_bad(&mut self, b: BlockId) -> Result<bool, FtlError> {
        let _erase = span!(self.tracer, "erase_block", "block={b}");
        let mut attempt = 0u32;
        loop {
            match self.chip.erase_block(b) {
                Ok(()) => {
                    self.stats.erases += 1;
                    self.needs_erase[b.0 as usize] = false;
                    return Ok(true);
                }
                Err(FlashError::GrownBadBlock(_)) => {
                    self.mark_retired(b);
                    return Ok(false);
                }
                Err(FlashError::EraseFail(_)) if attempt < TRANSIENT_RETRIES => {
                    self.stats.transient_retries += 1;
                    self.chip.advance_time_us(RETRY_BACKOFF_US * f64::from(1u32 << attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Programs `data` on a freshly allocated page, retrying transient
    /// program failures and re-allocating elsewhere when the destination
    /// block goes grown bad mid-write. Every program carries a journal
    /// record for `lpn` in its spare area — the append-only log a
    /// crash-recovery [`mount`](Self::mount) replays. A power loss
    /// ([`FlashError::PowerLoss`]) is *not* transient and propagates
    /// immediately: the device is off and nothing can be retried.
    fn program_on_fresh_page(
        &mut self,
        lpn: Lpn,
        data: &BitPattern,
        migrations: &mut Vec<Migration>,
        erased: &mut Vec<BlockId>,
    ) -> Result<PageId, FtlError> {
        let home = self.chip_of_lpn(lpn);
        loop {
            let page = self.allocate_page(home, migrations, erased)?;
            let _prog = span!(self.tracer, "program_page");
            let mut attempt = 0u32;
            loop {
                let record = encode_journal(self.next_seq, lpn);
                match self.chip.program_page_with_spare(page, data, &record) {
                    Ok(()) => {
                        self.next_seq += 1;
                        self.stats.physical_writes += 1;
                        return Ok(page);
                    }
                    Err(FlashError::GrownBadBlock(_)) => {
                        // Valid pages already on the block stay mapped —
                        // grown-bad blocks still read — but nothing new
                        // lands there.
                        self.mark_retired(page.block);
                        break;
                    }
                    Err(FlashError::TransientProgramFail(_)) if attempt < TRANSIENT_RETRIES => {
                        self.stats.transient_retries += 1;
                        self.chip.advance_time_us(RETRY_BACKOFF_US * f64::from(1u32 << attempt));
                        attempt += 1;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }

    fn active_has_room(&self, c: usize) -> bool {
        match self.active[c] {
            Some(b) => self.cursor[b.0 as usize] < self.chip.geometry().pages_per_block,
            None => false,
        }
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn >= self.capacity_pages() {
            return Err(FtlError::LpnOutOfRange { lpn, capacity: self.capacity_pages() });
        }
        Ok(())
    }

    /// Ensures chip `c`'s free pool stays above the GC low-water mark.
    fn ensure_headroom(
        &mut self,
        c: usize,
        migrations: &mut Vec<Migration>,
        erased: &mut Vec<BlockId>,
    ) -> Result<(), FtlError> {
        while self.free[c].len() < self.cfg.gc_low_water as usize {
            self.collect_one(c, migrations, erased)?;
        }
        Ok(())
    }

    /// Runs one GC cycle on chip `c`: picks its fullest-of-garbage block,
    /// relocates its valid pages (within the chip), erases it.
    fn collect_one(
        &mut self,
        c: usize,
        migrations: &mut Vec<Migration>,
        erased: &mut Vec<BlockId>,
    ) -> Result<(), FtlError> {
        let pages_per_block = self.chip.geometry().pages_per_block;
        let lo = c as u32 * self.local_blocks;
        let hi = lo + self.local_blocks;
        // Victim: a fully-written, non-active block with the fewest valid
        // pages (greedy); must exist with fewer valid pages than capacity.
        let victim = (lo..hi)
            .map(BlockId)
            .filter(|b| Some(*b) != self.active[c])
            .filter(|b| !self.retired[b.0 as usize])
            .filter(|b| self.cursor[b.0 as usize] == pages_per_block)
            .min_by_key(|b| self.valid[b.0 as usize])
            .ok_or(FtlError::NoSpace)?;
        if self.valid[victim.0 as usize] == pages_per_block {
            return Err(FtlError::NoSpace);
        }
        self.stats.gc_runs += 1;
        let _gc = span!(self.tracer, "gc_collect", "victim={victim}");
        let moved_before = migrations.len();

        // Relocate valid pages.
        for p in 0..pages_per_block {
            let from = PageId::new(victim, p);
            let Some(&lpn) = self.rmap.get(&from) else { continue };
            let data = {
                let _copy = span!(self.tracer, "migrate_read");
                self.chip.read_page(from)?
            };
            let to = self.program_on_fresh_page(lpn, &data, migrations, erased)?;
            self.stats.gc_moves += 1;

            self.rmap.remove(&from);
            self.valid[victim.0 as usize] -= 1;
            self.map.insert(lpn, to);
            self.rmap.insert(to, lpn);
            self.valid[to.block.0 as usize] += 1;
            migrations.push(Migration { lpn, from, to });
        }

        if self.erase_unless_grown_bad(victim)? {
            erased.push(victim);
            self.cursor[victim.0 as usize] = 0;
            self.free[c].push(victim);
        }
        if let Some(t) = &self.tracer {
            t.counter_add("gc_migrations", "", (migrations.len() - moved_before) as u64);
            t.gauge_set("free_blocks", "", self.free_blocks() as f64);
        }
        Ok(())
    }

    /// Hands out the next physical page of chip `c`'s active block, opening
    /// a new (least-worn) block on that chip when needed.
    fn allocate_page(
        &mut self,
        c: usize,
        migrations: &mut Vec<Migration>,
        erased: &mut Vec<BlockId>,
    ) -> Result<PageId, FtlError> {
        let pages_per_block = self.chip.geometry().pages_per_block;
        loop {
            if let Some(b) = self.active[c] {
                let cur = self.cursor[b.0 as usize];
                if cur < pages_per_block {
                    self.cursor[b.0 as usize] = cur + 1;
                    return Ok(PageId::new(b, cur));
                }
                self.active[c] = None;
            }
            // Drop blocks the chip has since declared grown bad.
            let bad: Vec<BlockId> = self.free[c]
                .iter()
                .copied()
                .filter(|&b| self.chip.is_grown_bad(b).unwrap_or(false))
                .collect();
            for b in bad {
                self.mark_retired(b);
            }
            if self.free[c].is_empty() {
                self.collect_one(c, migrations, erased)?;
                continue;
            }
            // Dynamic wear leveling: open the least-worn free block.
            let (idx, _) = self.free[c]
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| self.chip.block_pec(**b).unwrap_or(u32::MAX))
                .ok_or(FtlError::NoSpace)?;
            let b = self.free[c].swap_remove(idx);
            // Blocks enter the pool erased except at mount time, where an
            // empty block may hide a torn erase and is flagged; an erase
            // that outs the block as grown bad sends us back for another.
            if (self.needs_erase[b.0 as usize]
                || self.cursor[b.0 as usize] != 0
                || self.chip.is_page_programmed(PageId::new(b, 0))?)
                && !self.erase_unless_grown_bad(b)?
            {
                continue;
            }
            self.cursor[b.0 as usize] = 0;
            self.active[c] = Some(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use stash_flash::ChipProfile;

    fn ftl() -> Ftl {
        let chip = Chip::new(ChipProfile::test_small(), 5);
        Ftl::new(chip, FtlConfig::default()).unwrap()
    }

    fn pattern(ftl: &Ftl, seed: u64) -> BitPattern {
        BitPattern::random_half(
            &mut SmallRng::seed_from_u64(seed),
            ftl.chip().geometry().cells_per_page(),
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = ftl();
        let d = pattern(&f, 1);
        f.write(3, &d).unwrap();
        let back = f.read(3).unwrap().unwrap();
        assert!(back.hamming_distance(&d) <= 1);
        assert_eq!(f.read(4).unwrap(), None);
    }

    #[test]
    fn overwrite_remaps() {
        let mut f = ftl();
        let d1 = pattern(&f, 1);
        let d2 = pattern(&f, 2);
        let r1 = f.write(0, &d1).unwrap();
        let r2 = f.write(0, &d2).unwrap();
        assert_ne!(r1.page, r2.page, "no in-place update on flash");
        let back = f.read(0).unwrap().unwrap();
        assert!(back.hamming_distance(&d2) <= 1);
        assert_eq!(f.logical_of(r1.page), None, "old copy invalidated");
        assert_eq!(f.logical_of(r2.page), Some(0));
    }

    #[test]
    fn trim_unmaps() {
        let mut f = ftl();
        let d = pattern(&f, 3);
        f.write(7, &d).unwrap();
        f.trim(7).unwrap();
        assert_eq!(f.read(7).unwrap(), None);
        assert_eq!(f.physical_of(7), None);
    }

    #[test]
    fn lpn_bounds_enforced() {
        let mut f = ftl();
        let cap = f.capacity_pages();
        let d = pattern(&f, 4);
        assert!(matches!(f.write(cap, &d), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(f.read(cap), Err(FtlError::LpnOutOfRange { .. })));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_survive() {
        // Fill logical space, then overwrite well past physical capacity:
        // GC must reclaim and data must stay correct.
        let mut f = ftl();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut truth: HashMap<Lpn, BitPattern> = HashMap::new();
        for round in 0..6u64 {
            for lpn in 0..cap {
                if rng.gen_bool(0.5) || round == 0 {
                    let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
                    f.write(lpn, &d).unwrap();
                    truth.insert(lpn, d);
                }
            }
        }
        assert!(f.stats().gc_runs > 0, "GC should have run");
        assert!(f.stats().write_amplification() >= 1.0);
        for (lpn, d) in &truth {
            let back = f.read(*lpn).unwrap().expect("mapped");
            assert!(back.hamming_distance(d) <= 2, "lpn {lpn} corrupted");
        }
    }

    #[test]
    fn migrations_are_reported_accurately() {
        let mut f = ftl();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(2);
        // Fill once.
        for lpn in 0..cap {
            let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
            f.write(lpn, &d).unwrap();
        }
        // Keep overwriting random pages until GC reports migrations
        // (victim blocks then still hold live copies that must move).
        let mut seen = Vec::new();
        for i in 0..4000u64 {
            let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
            let lpn = rng.gen_range(0..cap);
            let rep = f.write(lpn, &d).unwrap();
            if !rep.migrations.is_empty() {
                seen = rep.migrations;
                break;
            }
            assert!(i < 3999, "GC never migrated anything");
        }
        for m in &seen {
            // Every reported migration's destination must now be the live
            // mapping (unless migrated again later in the same write).
            let current = f.physical_of(m.lpn).unwrap();
            let still_there =
                current == m.to || seen.iter().any(|m2| m2.lpn == m.lpn && m2.from == m.to);
            assert!(still_there, "migration report inconsistent for lpn {}", m.lpn);
        }
    }

    #[test]
    fn wear_spreads_across_blocks() {
        let mut f = ftl();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..4 {
            for lpn in 0..cap {
                let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
                f.write(lpn, &d).unwrap();
            }
        }
        let blocks = f.chip().geometry().blocks_per_chip;
        let pecs: Vec<u32> = (0..blocks).map(|b| f.chip().block_pec(BlockId(b)).unwrap()).collect();
        let max = *pecs.iter().max().unwrap();
        let nonzero = pecs.iter().filter(|&&p| p > 0).count() as u32;
        // Dynamic wear leveling: nearly every block participates and no
        // block runs far ahead of the pack.
        assert!(nonzero >= blocks - 1, "most blocks should participate: {pecs:?}");
        assert!(max < 60, "wear should be spread, max {max}");
    }

    #[test]
    fn mapping_invariants_hold() {
        let mut f = ftl();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(4);
        for round in 0..3u64 {
            for lpn in (0..cap).step_by(2) {
                let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
                f.write((lpn + round) % cap, &d).unwrap();
            }
        }
        // map and rmap are mutually consistent bijections.
        for (lpn, page) in &f.map {
            assert_eq!(f.rmap.get(page), Some(lpn));
        }
        for (page, lpn) in &f.rmap {
            assert_eq!(f.map.get(lpn), Some(page));
        }
        // valid counters agree with rmap.
        for b in 0..f.valid.len() {
            let counted = f.rmap.keys().filter(|p| p.block.0 as usize == b).count() as u32;
            assert_eq!(f.valid[b], counted, "block {b} valid counter");
        }
    }

    #[test]
    fn static_wear_level_rotates_cold_blocks() {
        let mut f = ftl();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(11);
        // Fill everything once: this data never moves again on its own.
        for lpn in 0..cap {
            let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
            f.write(lpn, &d).unwrap();
        }
        // Hammer a small hot set so some blocks accumulate wear while the
        // cold blocks sit still.
        for i in 0..300u64 {
            let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
            f.write(i % 4, &d).unwrap();
        }
        let spread_before = wear_spread(&f);
        // Run static WL until quiescent.
        let mut total_moves = 0;
        for _ in 0..8 {
            let moves = f.static_wear_level(5).unwrap();
            if moves.is_empty() {
                break;
            }
            total_moves += moves.len();
            for m in &moves {
                assert_eq!(f.physical_of(m.lpn), Some(m.to));
            }
        }
        assert!(total_moves > 0, "cold data should have been rotated");
        // All data still correct.
        for lpn in 4..cap.min(20) {
            assert!(f.read(lpn).unwrap().is_some());
        }
        let _ = spread_before;
    }

    fn wear_spread(f: &Ftl) -> u32 {
        let blocks = f.chip().geometry().blocks_per_chip;
        let pecs: Vec<u32> = (0..blocks).map(|b| f.chip().block_pec(BlockId(b)).unwrap()).collect();
        pecs.iter().max().unwrap() - pecs.iter().min().unwrap()
    }

    #[test]
    fn static_wear_level_noop_when_even() {
        let mut f = ftl();
        let d = pattern(&f, 1);
        f.write(0, &d).unwrap();
        let moves = f.static_wear_level(1000).unwrap();
        assert!(moves.is_empty());
    }

    #[test]
    fn bad_config_rejected() {
        let chip = Chip::new(ChipProfile::test_small(), 5);
        assert!(Ftl::new(chip.clone(), FtlConfig { reserve_blocks: 1, gc_low_water: 1 }).is_err());
        assert!(Ftl::new(chip.clone(), FtlConfig { reserve_blocks: 99, gc_low_water: 1 }).is_err());
        assert!(Ftl::new(chip, FtlConfig { reserve_blocks: 4, gc_low_water: 4 }).is_err());
    }

    #[test]
    fn grown_bad_blocks_leave_the_allocation_rotation() {
        let mut f = ftl();
        let bad = BlockId(2);
        f.chip_mut().grow_bad_block(bad).unwrap();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(21);
        for round in 0..3u64 {
            for lpn in 0..cap {
                let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
                f.write((lpn + round) % cap, &d).unwrap();
            }
        }
        assert_eq!(f.retired_blocks(), vec![bad]);
        assert!(f.stats().retirements >= 1);
        for page in f.map.values() {
            assert_ne!(page.block, bad, "write landed on a grown-bad block");
        }
    }

    #[test]
    fn evacuate_block_moves_data_and_retires_grown_bad() {
        let mut f = ftl();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(31);
        let mut truth = HashMap::new();
        for lpn in 0..cap {
            let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
            f.write(lpn, &d).unwrap();
            truth.insert(lpn, d);
        }
        let victim_block = f.physical_of(0).unwrap().block;
        f.chip_mut().grow_bad_block(victim_block).unwrap();
        let moves = f.evacuate_block(victim_block).unwrap();
        assert!(!moves.is_empty(), "live pages should have moved");
        for m in &moves {
            assert_eq!(m.from.block, victim_block);
            assert_ne!(m.to.block, victim_block);
        }
        assert!(f.retired_blocks().contains(&victim_block));
        // Every logical page, including the moved ones, still reads back.
        for (lpn, d) in &truth {
            let back = f.read(*lpn).unwrap().expect("mapped");
            assert!(back.hamming_distance(d) <= 2, "lpn {lpn} corrupted");
        }
    }

    #[test]
    fn evacuate_healthy_block_refrees_it() {
        let mut f = ftl();
        let d = pattern(&f, 41);
        f.write(0, &d).unwrap();
        let b = f.physical_of(0).unwrap().block;
        let before = f.free_blocks();
        f.evacuate_block(b).unwrap();
        assert!(f.retired_blocks().is_empty());
        assert!(f.free_blocks() >= before, "healthy block should re-enter the pool");
        assert!(f.read(0).unwrap().is_some());
    }

    #[test]
    fn transient_program_faults_are_absorbed_by_retries() {
        use stash_flash::{ChipProfile, FaultDevice, FaultPlan};
        let plan = FaultPlan::new(7).with_program_fail(0.05).with_erase_fail(0.05);
        let chip = FaultDevice::with_plan(Chip::new(ChipProfile::test_small(), 5), plan);
        let mut f = Ftl::new(chip, FtlConfig::default()).unwrap();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(51);
        let mut truth = HashMap::new();
        for round in 0..4u64 {
            for lpn in 0..cap {
                let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
                f.write((lpn * 7 + round) % cap, &d).unwrap();
                truth.insert((lpn * 7 + round) % cap, d);
            }
        }
        assert!(f.stats().transient_retries > 0, "faults should have fired");
        assert!(f.chip().meter().total_faults() > 0);
        for (lpn, d) in &truth {
            let back = f.read(*lpn).unwrap().expect("mapped");
            assert!(back.hamming_distance(d) <= 2, "lpn {lpn} corrupted");
        }
    }

    #[test]
    fn journal_records_roundtrip_and_reject_corruption() {
        let rec = encode_journal(42, 7);
        assert_eq!(decode_journal(&rec), Some((42, 7)));
        // Any single corrupt byte kills the record.
        for i in 0..rec.len() {
            let mut bad = rec;
            bad[i] ^= 0x01;
            assert_eq!(decode_journal(&bad), None, "byte {i} corruption accepted");
        }
        assert_eq!(decode_journal(&rec[..24]), None, "truncated record accepted");
        assert_eq!(decode_journal(b""), None);
    }

    #[test]
    fn mount_rebuilds_map_from_journal() {
        let mut f = ftl();
        let cap = f.capacity_pages();
        let mut rng = SmallRng::seed_from_u64(61);
        let mut truth = HashMap::new();
        for round in 0..2u64 {
            for lpn in 0..cap / 2 {
                let d = BitPattern::random_half(&mut rng, f.chip().geometry().cells_per_page());
                f.write((lpn + round * 3) % cap, &d).unwrap();
                truth.insert((lpn + round * 3) % cap, d);
            }
        }
        let expected: HashMap<Lpn, PageId> = f.map.clone();
        let chip = f.into_chip();

        let (mut m, report) = Ftl::mount(chip, FtlConfig::default()).unwrap();
        assert_eq!(m.map, expected, "mount must rebuild the exact pre-crash map");
        m.check_consistency().unwrap();
        assert_eq!(report.live_pages, expected.len() as u64);
        assert!(report.stale_pages > 0, "overwrites must surface as stale copies");
        assert_eq!(report.torn_pages, 0);
        assert!(report.scan_device_us > 0.0);
        // The remounted FTL keeps serving reads and accepts new writes.
        for (lpn, d) in &truth {
            let back = m.read(*lpn).unwrap().expect("mapped after mount");
            assert!(back.hamming_distance(d) <= 2, "lpn {lpn} corrupted across mount");
        }
        let d = BitPattern::random_half(&mut rng, m.chip().geometry().cells_per_page());
        m.write(0, &d).unwrap();
        m.check_consistency().unwrap();
    }

    #[test]
    fn mount_discards_torn_page_and_keeps_acked_writes() {
        let mut f = ftl();
        let d1 = pattern(&f, 71);
        let d2 = pattern(&f, 72);
        f.write(1, &d1).unwrap();
        let r2 = f.write(2, &d2).unwrap();
        let mut chip = f.into_chip();
        // Simulate a torn program on the page right after the last acked
        // write: data cells half-land, the spare never does.
        let torn = PageId::new(r2.page.block, r2.page.page + 1);
        let cpp = chip.geometry().cells_per_page();
        chip.torn_program_page(torn, &BitPattern::ones(cpp), 0.5).unwrap();

        let (mut m, report) = Ftl::mount(chip, FtlConfig::default()).unwrap();
        assert_eq!(report.torn_pages, 1, "the torn program must be detected");
        assert_eq!(report.live_pages, 2);
        assert_eq!(m.logical_of(torn), None, "torn page must stay unmapped");
        assert!(m.read(1).unwrap().is_some());
        assert!(m.read(2).unwrap().is_some());
        m.check_consistency().unwrap();
    }

    #[test]
    fn mount_seals_written_blocks_and_erases_empty_ones_before_reuse() {
        let mut f = ftl();
        let d = pattern(&f, 81);
        let r = f.write(0, &d).unwrap();
        let written_block = r.page.block;
        let chip = f.into_chip();
        let (mut m, report) = Ftl::mount(chip, FtlConfig::default()).unwrap();
        assert!(report.sealed_blocks >= 1);
        assert_eq!(
            report.sealed_blocks + report.free_blocks + report.retired_blocks,
            m.chip().geometry().blocks_per_chip
        );
        // New writes never append into the sealed block.
        for i in 0..4u64 {
            let d = pattern(&m, 90 + i);
            let rep = m.write(1 + i, &d).unwrap();
            assert_ne!(rep.page.block, written_block, "append into a sealed block");
        }
        // Reused empty blocks were erased first (needs_erase drained).
        assert!(m.stats().erases >= 1, "empty block must be erased before reuse");
    }

    #[test]
    fn multi_chip_lpns_pin_to_home_chips_and_survive_mount() {
        use stash_flash::ArrayDevice;
        let arr = ArrayDevice::homogeneous(ChipProfile::test_small(), 2, 5);
        let local = arr.local_blocks();
        let mut f = Ftl::new(arr, FtlConfig::default()).unwrap();
        assert_eq!(f.chip_count(), 2);
        let g = *f.chip().geometry();
        let cap = f.capacity_pages();
        assert_eq!(cap, 2 * u64::from(local - 4) * u64::from(g.pages_per_block));

        // Write everything twice so GC and block turnover happen.
        let mut rng = SmallRng::seed_from_u64(77);
        let mut truth = HashMap::new();
        for _ in 0..3 {
            for lpn in 0..cap {
                let d = BitPattern::random_half(&mut rng, g.cells_per_page());
                f.write(lpn, &d).unwrap();
                truth.insert(lpn, d);
            }
        }
        // Home pinning: an LPN's physical page always sits on lpn % chips,
        // through every GC relocation.
        for (lpn, page) in &f.map {
            assert_eq!(
                u64::from(page.block.0 / local),
                lpn % 2,
                "lpn {lpn} strayed off its home chip"
            );
        }
        f.check_consistency().unwrap();

        // Global journal sequencing makes the per-chip replay exact.
        let expected = f.map.clone();
        let (m, report) = Ftl::mount(f.into_chip(), FtlConfig::default()).unwrap();
        assert_eq!(m.map, expected, "mount must rebuild the exact multi-chip map");
        assert_eq!(report.live_pages, expected.len() as u64);
        m.check_consistency().unwrap();
    }

    #[test]
    fn stats_track_activity() {
        let mut f = ftl();
        let d = pattern(&f, 8);
        f.write(0, &d).unwrap();
        f.write(1, &d).unwrap();
        let s = f.stats();
        assert_eq!(s.host_writes, 2);
        assert!(s.physical_writes >= 2);
        assert!((s.write_amplification() - 1.0).abs() < 1e-9);
    }
}
