//! # pthi — the PT-HI baseline (Wang et al., IEEE S&P 2013)
//!
//! *Stash in a Flash* compares VT-HI against **PT-HI**, the closest prior
//! work: a covert channel in the *programming time* of flash cells. PT-HI
//! applies hundreds of stress-programming cycles to key-selected groups of
//! cells; stressed cells program measurably faster ever after. A hidden bit
//! is encoded per group (stressed ⇒ `1`), and decoded by incrementally
//! programming the page while timing when each cell crosses into the
//! programmed state — which *destroys* any public data stored there.
//!
//! The paper's Table 1 and §8 attribute to PT-HI (optimal setup):
//! 625 program cycles per page to encode, ~30 program+read steps per page
//! to decode, destructive decoding, rapid BER growth once the device has a
//! few hundred public P/E cycles, and ~72 Kb of hidden bits per block.
//! This implementation reproduces those operation counts against the same
//! simulated chip and timing model as VT-HI, so every comparison in the
//! benchmarks runs both schemes on identical silicon.
//!
//! ```
//! use stash_flash::{Chip, ChipProfile, BitPattern, BlockId, PageId};
//! use stash_crypto::HidingKey;
//! use pthi::{PthiConfig, PthiHider};
//!
//! # fn main() -> Result<(), pthi::PthiError> {
//! let mut chip = Chip::new(ChipProfile::vendor_a_scaled(), 3);
//! let key = HidingKey::from_passphrase("prior work");
//! let cfg = PthiConfig::scaled_for(chip.geometry());
//! let mut hider = PthiHider::new(&mut chip, key, cfg.clone());
//!
//! let block = BlockId(0);
//! let page = PageId::new(block, 0);
//! let bits: Vec<bool> = (0..cfg.bits_per_page).map(|i| i % 3 == 0).collect();
//!
//! hider.chip_mut().erase_block(block)?;
//! hider.encode_page(page, &bits)?;             // 625 stress cycles
//! hider.chip_mut().erase_block(block)?;        // stress survives erase
//! // ... the normal user stores public data, uses the drive, ...
//! let decoded = hider.decode_page(page)?;      // destructive!
//! let errors = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
//! assert!(errors <= 2);
//! # Ok(())
//! # }
//! ```

use stash_crypto::{HidingKey, SelectionPrng};
use stash_flash::{BitPattern, Chip, FlashError, Geometry, NandDevice, PageId};
use std::fmt;

/// Errors returned by the PT-HI layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PthiError {
    /// An underlying flash operation failed.
    Flash(FlashError),
    /// The page cannot carry the configured number of groups.
    InsufficientCells {
        /// Cells required (`groups × group_size`).
        needed: usize,
        /// Cells in a page.
        available: usize,
    },
    /// Bit count does not match the configuration.
    PayloadLength {
        /// Bits per page configured.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
}

impl fmt::Display for PthiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PthiError::Flash(e) => write!(f, "flash operation failed: {e}"),
            PthiError::InsufficientCells { needed, available } => {
                write!(f, "page has {available} cells, groups need {needed}")
            }
            PthiError::PayloadLength { expected, got } => {
                write!(f, "payload is {got} bits, configuration stores {expected}")
            }
        }
    }
}

impl std::error::Error for PthiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PthiError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for PthiError {
    fn from(e: FlashError) -> Self {
        PthiError::Flash(e)
    }
}

/// PT-HI configuration (the "optimal setup" of \[38\] as §8 describes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PthiConfig {
    /// Cells per hidden-bit group (timing is averaged over the group).
    pub group_size: usize,
    /// Hidden bits per page.
    pub bits_per_page: usize,
    /// Stress-programming cycles applied to encode a `1` group.
    pub stress_cycles: u32,
    /// Incremental program+read steps used to decode a page.
    pub decode_steps: u16,
}

impl PthiConfig {
    /// The paper's §8 setup on full-size pages: 625 stress cycles, 30
    /// decode steps, one bit per 128 cells (72 Kb per 64-page block).
    pub fn paper_default(geometry: &Geometry) -> Self {
        PthiConfig {
            group_size: 16,
            bits_per_page: geometry.cells_per_page() / 128,
            stress_cycles: 625,
            decode_steps: 30,
        }
    }

    /// Same densities on a scaled simulation geometry.
    pub fn scaled_for(geometry: &Geometry) -> Self {
        PthiConfig::paper_default(geometry)
    }

    /// Cells consumed per page.
    pub fn cells_needed(&self) -> usize {
        self.group_size * self.bits_per_page
    }
}

/// The PT-HI hiding user's handle on a device.
///
/// Generic over the [`NandDevice`] backend, defaulting to a bare [`Chip`].
#[derive(Debug)]
pub struct PthiHider<'c, D: NandDevice = Chip> {
    chip: &'c mut D,
    key: HidingKey,
    cfg: PthiConfig,
}

impl<'c, D: NandDevice> PthiHider<'c, D> {
    /// Creates a PT-HI hider.
    pub fn new(chip: &'c mut D, key: HidingKey, cfg: PthiConfig) -> Self {
        PthiHider { chip, key, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PthiConfig {
        &self.cfg
    }

    /// Shared access to the device.
    pub fn chip(&self) -> &D {
        self.chip
    }

    /// Exclusive access to the device.
    pub fn chip_mut(&mut self) -> &mut D {
        self.chip
    }

    /// The group cell offsets for a page, in bit order (keyed, like VT-HI's
    /// selection, so an adversary cannot enumerate groups).
    fn groups(&self, page: PageId) -> Result<Vec<Vec<usize>>, PthiError> {
        let cpp = self.chip.geometry().cells_per_page();
        let needed = self.cfg.cells_needed();
        if needed > cpp {
            return Err(PthiError::InsufficientCells { needed, available: cpp });
        }
        let stream = u64::from(page.block.0) * u64::from(self.chip.geometry().pages_per_block)
            + u64::from(page.page);
        let mut prng = SelectionPrng::new(&self.key, stream);
        let cells = prng.choose_distinct(needed, cpp);
        Ok(cells.chunks(self.cfg.group_size).map(<[usize]>::to_vec).collect())
    }

    /// Encodes hidden bits into a page by stressing the groups whose bit is
    /// `1` with the configured number of program cycles. The page contents
    /// are destroyed; erase the block before storing public data.
    ///
    /// # Errors
    ///
    /// Fails on flash errors or size mismatches.
    pub fn encode_page(&mut self, page: PageId, bits: &[bool]) -> Result<(), PthiError> {
        if bits.len() != self.cfg.bits_per_page {
            return Err(PthiError::PayloadLength {
                expected: self.cfg.bits_per_page,
                got: bits.len(),
            });
        }
        let groups = self.groups(page)?;
        let cpp = self.chip.geometry().cells_per_page();
        let mut mask = BitPattern::zeros(cpp);
        for (group, &bit) in groups.iter().zip(bits) {
            if bit {
                for &c in group {
                    mask.set(c, true);
                }
            }
        }
        self.chip.stress_cells(page, &mask, self.cfg.stress_cycles)?;
        Ok(())
    }

    /// Decodes the hidden bits of a page by incrementally programming it
    /// and timing each cell's crossing (destroys public data in the page —
    /// the defining drawback the paper's Table 1 records).
    ///
    /// # Errors
    ///
    /// Fails on flash errors or size mismatches.
    pub fn decode_page(&mut self, page: PageId) -> Result<Vec<bool>, PthiError> {
        let groups = self.groups(page)?;
        let steps = self.chip.program_time_probe(page, self.cfg.decode_steps)?;

        // Group-average crossing step; stressed groups cross earlier.
        let means: Vec<f64> = groups
            .iter()
            .map(|g| g.iter().map(|&c| f64::from(steps[c])).sum::<f64>() / g.len() as f64)
            .collect();
        // Split the group means into fast/slow clusters (1-D two-means):
        // robust to unbalanced payloads, unlike a median threshold.
        let mut lo = means.iter().cloned().fold(f64::MAX, f64::min);
        let mut hi = means.iter().cloned().fold(f64::MIN, f64::max);
        if (hi - lo).abs() < 1e-9 {
            // Degenerate page (no contrast at all): everything reads as 0.
            return Ok(vec![false; means.len()]);
        }
        for _ in 0..16 {
            let mid = (lo + hi) / 2.0;
            let (mut sl, mut nl, mut sh, mut nh) = (0.0, 0usize, 0.0, 0usize);
            for &m in &means {
                if m < mid {
                    sl += m;
                    nl += 1;
                } else {
                    sh += m;
                    nh += 1;
                }
            }
            if nl == 0 || nh == 0 {
                break;
            }
            lo = sl / nl as f64;
            hi = sh / nh as f64;
        }
        let threshold = (lo + hi) / 2.0;
        Ok(means.iter().map(|&m| m < threshold).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_flash::{BlockId, ChipProfile, OpKind};

    fn setup() -> (Chip, PthiConfig) {
        let chip = Chip::new(ChipProfile::vendor_a_scaled(), 11);
        let cfg = PthiConfig::scaled_for(chip.geometry());
        (chip, cfg)
    }

    fn key() -> HidingKey {
        HidingKey::new([6u8; 32])
    }

    fn ber(a: &[bool], b: &[bool]) -> f64 {
        a.iter().zip(b).filter(|(x, y)| x != y).count() as f64 / a.len() as f64
    }

    #[test]
    fn fresh_chip_roundtrip_is_reliable() {
        let (mut chip, cfg) = setup();
        let bits: Vec<bool> = (0..cfg.bits_per_page).map(|i| i % 2 == 0).collect();
        let page = PageId::new(BlockId(0), 0);
        let mut h = PthiHider::new(&mut chip, key(), cfg);
        h.chip_mut().erase_block(BlockId(0)).unwrap();
        h.encode_page(page, &bits).unwrap();
        h.chip_mut().erase_block(BlockId(0)).unwrap();
        let decoded = h.decode_page(page).unwrap();
        let e = ber(&decoded, &bits);
        assert!(e < 0.02, "fresh PT-HI BER {e}");
    }

    #[test]
    fn stress_survives_public_use() {
        let (mut chip, cfg) = setup();
        let bits: Vec<bool> = (0..cfg.bits_per_page).map(|i| (i / 3) % 2 == 0).collect();
        let page = PageId::new(BlockId(0), 0);
        let mut h = PthiHider::new(&mut chip, key(), cfg);
        h.chip_mut().erase_block(BlockId(0)).unwrap();
        h.encode_page(page, &bits).unwrap();
        // The normal user cycles the block a few times with public data.
        for s in 0..3u64 {
            h.chip_mut().erase_block(BlockId(0)).unwrap();
            let cpp = h.chip().geometry().cells_per_page();
            let data = BitPattern::random_half(
                &mut <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(s),
                cpp,
            );
            h.chip_mut().program_page(page, &data).unwrap();
        }
        let decoded = h.decode_page(page).unwrap();
        let e = ber(&decoded, &bits);
        assert!(e < 0.05, "PT-HI BER after light use {e}");
    }

    #[test]
    fn reliability_collapses_with_wear() {
        // Paper §2: "the error rate of the hidden payload significantly
        // increases after only a few hundred public PEC".
        let (mut chip, cfg) = setup();
        let bits: Vec<bool> = (0..cfg.bits_per_page).map(|i| i % 2 == 1).collect();
        let page = PageId::new(BlockId(0), 0);
        let mut h = PthiHider::new(&mut chip, key(), cfg);
        h.chip_mut().erase_block(BlockId(0)).unwrap();
        h.encode_page(page, &bits).unwrap();
        h.chip_mut().cycle_block(BlockId(0), 1500).unwrap();
        let decoded = h.decode_page(page).unwrap();
        let e = ber(&decoded, &bits);
        assert!(e > 0.2, "PT-HI should be unusable at 1500 PEC, BER {e}");
    }

    #[test]
    fn decode_destroys_public_data() {
        let (mut chip, cfg) = setup();
        let cpp = chip.geometry().cells_per_page();
        let page = PageId::new(BlockId(1), 0);
        chip.erase_block(BlockId(1)).unwrap();
        let public = BitPattern::random_half(
            &mut <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(9),
            cpp,
        );
        chip.program_page(page, &public).unwrap();
        let mut h = PthiHider::new(&mut chip, key(), cfg);
        let _ = h.decode_page(page).unwrap();
        let after = h.chip_mut().read_page(page).unwrap();
        let distance = after.hamming_distance(&public);
        assert!(
            distance > public.len() / 4,
            "public data should be destroyed, distance {distance}"
        );
    }

    #[test]
    fn operation_counts_match_paper_model() {
        let (mut chip, cfg) = setup();
        let bits: Vec<bool> = vec![true; cfg.bits_per_page];
        let page = PageId::new(BlockId(0), 0);
        let mut h = PthiHider::new(&mut chip, key(), cfg.clone());
        h.chip_mut().erase_block(BlockId(0)).unwrap();
        h.chip_mut().reset_meter();
        h.encode_page(page, &bits).unwrap();
        let m = h.chip().meter();
        assert_eq!(m.count(OpKind::Program), u64::from(cfg.stress_cycles));

        h.chip_mut().reset_meter();
        let _ = h.decode_page(page).unwrap();
        let m = h.chip().meter();
        assert_eq!(m.count(OpKind::PartialProgram), u64::from(cfg.decode_steps));
        assert_eq!(m.count(OpKind::Read), u64::from(cfg.decode_steps));
    }

    #[test]
    fn wrong_key_reads_noise() {
        let (mut chip, cfg) = setup();
        let bits: Vec<bool> = (0..cfg.bits_per_page).map(|i| i % 4 == 0).collect();
        let page = PageId::new(BlockId(0), 0);
        {
            let mut h = PthiHider::new(&mut chip, key(), cfg.clone());
            h.chip_mut().erase_block(BlockId(0)).unwrap();
            h.encode_page(page, &bits).unwrap();
        }
        let mut h2 = PthiHider::new(&mut chip, HidingKey::new([7u8; 32]), cfg);
        let decoded = h2.decode_page(page).unwrap();
        let e = ber(&decoded, &bits);
        assert!(e > 0.2, "wrong key should read ~noise, BER {e}");
    }

    #[test]
    fn config_validation_errors() {
        let (mut chip, mut cfg) = setup();
        cfg.bits_per_page = 1 << 20;
        let mut h = PthiHider::new(&mut chip, key(), cfg);
        let bits = vec![true; 1 << 20];
        let err = h.encode_page(PageId::new(BlockId(0), 0), &bits).unwrap_err();
        assert!(matches!(err, PthiError::InsufficientCells { .. }));
        let err2 = h.encode_page(PageId::new(BlockId(0), 0), &[true]).unwrap_err();
        assert!(matches!(err2, PthiError::PayloadLength { .. }));
    }
}
