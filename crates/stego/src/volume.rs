//! The hidden-volume implementation.

use stash_crypto::{HidingKey, SelectionPrng};
use stash_flash::{BitPattern, BlockId, Chip, NandDevice};
use stash_ftl::{Ftl, FtlError, Migration};
use stash_obs::{span, Tracer};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use vthi::{HideError, Hider, RetryPolicy, SelectionMode, VthiConfig};

/// Stream id (PRNG namespace) for the slot → LPN placement permutation.
const PLACEMENT_STREAM: u64 = 0x5157_4F4C_5F4D_4150;

/// Widest integrity tag carved from a slot's VT-HI page payload. The tag
/// is a (truncated) CRC-32 over the slot payload and the slot's identity;
/// it catches half-encoded pages (a power cut partway through the PP
/// train decodes cleanly through the ECC often enough that ECC success
/// alone cannot be trusted) and cross-slot decode mixups. Small geometries
/// carry only a couple of payload bytes per page, so the width adapts —
/// see [`StegoConfig::tag_bytes`].
const MAX_TAG_BYTES: usize = 4;

/// The integrity tag stored alongside a slot's payload, `n` bytes wide.
fn slot_tag(payload: &[u8], slot: usize, n: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&(slot as u64).to_le_bytes());
    stash_flash::crc32(&buf).to_le_bytes()[..n].to_vec()
}

/// Hidden-volume configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StegoConfig {
    /// The underlying VT-HI configuration.
    pub vthi: VthiConfig,
    /// Data slots per parity group; 0 disables parity. Each group carries
    /// one extra parity slot that can reconstruct a single lost member.
    ///
    /// On a multi-chip array the volume stripes every group's slots across
    /// distinct chips, so one lost *chip* costs each group at most one slot
    /// — a whole-chip failure is fully recoverable when
    /// `parity_group + 1 <= chips`.
    pub parity_group: usize,
    /// Defer hidden embedding until the owning public page is rewritten
    /// anyway (multiple-snapshot hardening, §9.2).
    pub piggyback: bool,
}

impl StegoConfig {
    /// A sensible default for a given chip geometry: scaled VT-HI, parity
    /// groups of 4, immediate embedding.
    pub fn for_geometry(geometry: &stash_flash::Geometry) -> Self {
        StegoConfig { vthi: VthiConfig::scaled_for(geometry), parity_group: 4, piggyback: false }
    }

    /// Hidden bytes per slot: the VT-HI page payload minus the integrity
    /// tag every slot carries.
    pub fn slot_bytes(&self) -> usize {
        self.vthi.payload_bytes_per_page().saturating_sub(self.tag_bytes())
    }

    /// Width of the per-slot integrity tag: a quarter of the page payload,
    /// clamped to `[1, 4]` bytes, so tiny geometries still keep most of
    /// their capacity while large ones get the full CRC-32.
    pub fn tag_bytes(&self) -> usize {
        (self.vthi.payload_bytes_per_page() / 4).clamp(1, MAX_TAG_BYTES)
    }
}

/// Errors from the hidden volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StegoError {
    /// FTL failure.
    Ftl(FtlError),
    /// Hiding-layer failure.
    Hide(HideError),
    /// Slot index out of range.
    SlotOutOfRange {
        /// Requested slot.
        slot: usize,
        /// Slots in the volume.
        count: usize,
    },
    /// The slot's public page has never been written, so there is nothing
    /// to hide inside yet.
    UnbackedSlot {
        /// The public logical page that must be written first.
        lpn: u64,
    },
    /// Payload does not match the slot size.
    PayloadLength {
        /// Bytes per slot.
        expected: usize,
        /// Bytes supplied.
        got: usize,
    },
}

impl fmt::Display for StegoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StegoError::Ftl(e) => write!(f, "ftl failure: {e}"),
            StegoError::Hide(e) => write!(f, "hiding failure: {e}"),
            StegoError::SlotOutOfRange { slot, count } => {
                write!(f, "slot {slot} out of range (volume has {count})")
            }
            StegoError::UnbackedSlot { lpn } => {
                write!(f, "slot's public page {lpn} has no data yet")
            }
            StegoError::PayloadLength { expected, got } => {
                write!(f, "slot payload is {got} bytes, slots hold {expected}")
            }
        }
    }
}

impl std::error::Error for StegoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StegoError::Ftl(e) => Some(e),
            StegoError::Hide(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FtlError> for StegoError {
    fn from(e: FtlError) -> Self {
        StegoError::Ftl(e)
    }
}

impl From<HideError> for StegoError {
    fn from(e: HideError) -> Self {
        StegoError::Hide(e)
    }
}

/// What a remount or scrub managed to recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Slots decoded directly.
    pub recovered: usize,
    /// Slots rebuilt from parity (or, during a scrub, re-written from the
    /// mounted cache after their flash copy stopped decoding).
    pub reconstructed: usize,
    /// Slots lost for good.
    pub lost: usize,
    /// Slots that were never written.
    pub empty: usize,
    /// Slots rewritten onto fresh cells because their winning read still
    /// needed too many ECC corrections (scrub only).
    pub refreshed: usize,
    /// Slots moved off grown-bad blocks (scrub only).
    pub migrated: usize,
    /// Slots whose decode failed the per-slot integrity tag — half-encoded
    /// pages from a power cut mid-embed (subset of the failures routed into
    /// reconstruction or loss above).
    pub tag_failures: usize,
    /// Data slots written off as unrecoverable — the advertised hidden
    /// capacity shrank by this many slots (scrub only).
    pub capacity_lost: usize,
}

/// A read-only health census of the hidden slot space, produced by
/// [`HiddenVolume::health_probe`]. Everything a health monitor needs to
/// compute the live BER margin and capacity-reserve gauges without
/// mutating the volume (no refresh, no parity rebuild, no write-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HiddenHealth {
    /// Slots whose hidden payload decoded (directly, tags intact).
    pub slots_present: usize,
    /// Slots never written (no hidden payload).
    pub slots_empty: usize,
    /// Slots that failed to decode on this probe (tag failure or beyond
    /// ECC) — scrub, not the probe, decides their fate.
    pub slots_failed: usize,
    /// ECC corrections summed over all decoded slots.
    pub corrected_bits_total: usize,
    /// Worst single-slot ECC correction count — the live BER headroom is
    /// `correctable_bits_per_slot - corrected_bits_max`.
    pub corrected_bits_max: usize,
    /// Correction ceiling per slot under the volume's ECC configuration
    /// (0 in raw mode).
    pub correctable_bits_per_slot: usize,
    /// Data slots the volume was formatted with.
    pub data_slots: usize,
    /// Data slots still advertised (formatted minus written off).
    pub advertised_slots: usize,
    /// Data slots written off by scrub so far.
    pub lost_capacity_slots: usize,
    /// Parity slots backing the data slots.
    pub parity_slots: usize,
}

/// A mounted hidden volume: the public block device plus the keyed hidden
/// slot space inside it.
///
/// Generic over the [`NandDevice`] backend, defaulting to a bare [`Chip`].
#[derive(Debug)]
pub struct HiddenVolume<D: NandDevice = Chip> {
    ftl: Ftl<D>,
    key: HidingKey,
    cfg: StegoConfig,
    /// Data slots exposed to the user (parity slots live after them).
    data_slots: usize,
    /// Slot → owning public LPN (keyed permutation, derived at mount).
    slot_lpn: Vec<u64>,
    /// Reverse: LPN → slot.
    lpn_slot: HashMap<u64, usize>,
    /// In-memory slot contents while mounted.
    cache: Vec<Option<Vec<u8>>>,
    /// Slots whose on-flash embedding is stale (piggyback mode).
    dirty: Vec<bool>,
    /// Data slots scrubbed off as unrecoverable.
    lost_capacity: usize,
    /// Per-slot write-off flags, so capacity shrinks once per slot.
    written_off: Vec<bool>,
    tracer: Option<Arc<Tracer>>,
}

impl<D: NandDevice> HiddenVolume<D> {
    /// Creates (formats) a hidden volume of `slots` data slots over an FTL.
    /// Parity slots are added on top of `slots` when parity is enabled.
    ///
    /// # Errors
    ///
    /// Fails if the FTL cannot host that many slots.
    pub fn format(
        ftl: Ftl<D>,
        key: HidingKey,
        cfg: StegoConfig,
        slots: usize,
    ) -> Result<Self, StegoError> {
        let total = Self::total_slots(&cfg, slots);
        let capacity = ftl.capacity_pages();
        if total as u64 > capacity / 2 {
            return Err(StegoError::SlotOutOfRange { slot: total, count: capacity as usize / 2 });
        }
        let chips = ftl.chip_count() as usize;
        let slot_lpn = if chips > 1 {
            // The half-capacity bound above is global; striping also needs
            // headroom on every individual chip.
            let per_chip = (capacity / chips as u64) as usize;
            let mut counts = vec![0usize; chips];
            for slot in 0..total {
                counts[Self::striped_chip_of_slot(&cfg, slots, slot, chips)] += 1;
            }
            if counts.iter().any(|&c| c > per_chip / 2) {
                return Err(StegoError::SlotOutOfRange {
                    slot: total,
                    count: chips * (per_chip / 2),
                });
            }
            Self::derive_placement_striped(&key, capacity, &cfg, slots, total, chips)
        } else {
            Self::derive_placement(&key, capacity, total)
        };
        let lpn_slot = slot_lpn.iter().enumerate().map(|(s, &l)| (l, s)).collect();
        // Inherit a tracer already attached to the FTL, so a remount over
        // a traced FTL is traced from the first decode.
        let tracer = ftl.tracer().cloned();
        Ok(HiddenVolume {
            ftl,
            key,
            cfg,
            data_slots: slots,
            slot_lpn,
            lpn_slot,
            cache: vec![None; total],
            dirty: vec![false; total],
            lost_capacity: 0,
            written_off: vec![false; total],
            tracer,
        })
    }

    /// Attaches (or detaches, with `None`) a tracer to the whole stack:
    /// the volume's scrub/embed/decode phases, the FTL's GC phases and the
    /// chip's per-op recorder all report to it.
    pub fn attach_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.ftl.attach_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The tracer attached via [`attach_tracer`](Self::attach_tracer).
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Re-mounts an existing volume: re-derives slot placement from the key
    /// and decodes every slot from flash, using parity to rebuild single
    /// losses per group.
    ///
    /// # Errors
    ///
    /// Fails only on flash/FTL errors; unrecoverable slots are reported,
    /// not fatal.
    pub fn remount(
        ftl: Ftl<D>,
        key: HidingKey,
        cfg: StegoConfig,
        slots: usize,
    ) -> Result<(Self, RecoveryReport), StegoError> {
        let mut vol = Self::format(ftl, key, cfg, slots)?;
        let _mount = span!(vol.tracer, "remount");
        let mut report = RecoveryReport::default();
        let total = vol.cache.len();
        let mut failed: Vec<usize> = Vec::new();
        // One hider serves the whole scan: slots decode in exactly the
        // order (and noise-draw order) of per-slot `try_decode_slot` calls,
        // but share one derived key and one set of read buffers instead of
        // rebuilding both for every slot.
        let pages: Vec<Option<stash_flash::PageId>> =
            (0..total).map(|slot| vol.ftl.physical_of(vol.slot_lpn[slot])).collect();
        let tag_bytes = vol.cfg.tag_bytes();
        let key = vol.key.clone();
        let vthi_cfg = vol.cfg.vthi.clone();
        let tracer = vol.tracer.clone();
        let mut outcomes = Vec::with_capacity(total);
        {
            let mut hider = Hider::new(vol.ftl.chip_mut(), key, vthi_cfg)
                .with_selection_mode(SelectionMode::Absolute)
                .with_retry_policy(RetryPolicy::standard())
                .with_tracer(tracer.clone());
            for (slot, page) in pages.iter().enumerate() {
                outcomes.push(match page {
                    Some(page) => {
                        Self::decode_slot_via(&mut hider, &tracer, tag_bytes, slot, *page)
                    }
                    None => Ok(None),
                });
            }
        }
        for (slot, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(Some((bytes, _))) => {
                    vol.cache[slot] = Some(bytes);
                    report.recovered += 1;
                }
                Ok(None) => report.empty += 1,
                Err(StegoError::Hide(HideError::NeedsRecovery)) => {
                    report.tag_failures += 1;
                    failed.push(slot);
                }
                Err(_) => failed.push(slot),
            }
        }
        // Parity reconstruction: one loss per group is recoverable. Groups
        // are initialized as a unit, so any non-present slot (failed decode
        // OR read-as-empty) inside a group with present members is a loss.
        if vol.cfg.parity_group > 0 {
            let groups = vol.data_slots.div_ceil(vol.cfg.parity_group);
            let mut losses: Vec<usize> = failed.clone();
            for group in 0..groups {
                let mut members = vol.group_members(group);
                members.push(vol.parity_slot_of_group(group));
                let present = members.iter().filter(|m| vol.cache[**m].is_some()).count();
                if present == 0 || present == members.len() {
                    continue;
                }
                for &m in &members {
                    if vol.cache[m].is_none() && !losses.contains(&m) {
                        losses.push(m);
                        report.empty = report.empty.saturating_sub(1);
                    }
                }
            }
            for &slot in &losses {
                let group = vol.group_of(slot);
                let mut members = vol.group_members(group);
                members.push(vol.parity_slot_of_group(group));
                let missing: Vec<usize> =
                    members.iter().copied().filter(|m| vol.cache[*m].is_none()).collect();
                if missing == vec![slot] {
                    let mut acc = vec![0u8; vol.cfg.slot_bytes()];
                    for &m in &members {
                        if m != slot {
                            for (a, b) in
                                acc.iter_mut().zip(vol.cache[m].as_ref().expect("present"))
                            {
                                *a ^= b;
                            }
                        }
                    }
                    vol.cache[slot] = Some(acc);
                    // Re-embed the rebuilt slot so flash is healthy again.
                    vol.dirty[slot] = true;
                    report.reconstructed += 1;
                } else {
                    report.lost += 1;
                }
            }
        } else {
            report.lost = failed.len();
        }
        let _ = &failed;
        // Recovered-but-empty parity slots of never-written groups read as
        // empty; counted under `empty` above.
        if !vol.cfg.piggyback {
            vol.flush_lenient()?;
        }
        if let Some(t) = &vol.tracer {
            t.counter_add("remount_recovered", "", report.recovered as u64);
            t.counter_add("remount_reconstructed", "", report.reconstructed as u64);
            t.counter_add("remount_tag_failures", "", report.tag_failures as u64);
            t.counter_add("remount_lost", "", report.lost as u64);
        }
        Ok((vol, report))
    }

    fn total_slots(cfg: &StegoConfig, data_slots: usize) -> usize {
        if cfg.parity_group == 0 {
            data_slots
        } else {
            // One parity slot per (possibly partial) group.
            data_slots + data_slots.div_ceil(cfg.parity_group)
        }
    }

    /// Maps a volume-visible data-slot index to the internal slot index
    /// (data slots come first; parity slots are appended after them).
    fn internal_slot(&self, data_slot: usize) -> usize {
        data_slot
    }

    /// The internal parity-slot index of a group.
    fn parity_slot_of_group(&self, group: usize) -> usize {
        self.data_slots + group
    }

    /// The data members (internal indices) of a parity group.
    fn group_members(&self, group: usize) -> Vec<usize> {
        let g = self.cfg.parity_group;
        (group * g..((group + 1) * g).min(self.data_slots)).collect()
    }

    /// The parity group an internal slot belongs to.
    fn group_of(&self, slot: usize) -> usize {
        if slot < self.data_slots {
            slot / self.cfg.parity_group.max(1)
        } else {
            slot - self.data_slots
        }
    }

    fn derive_placement(key: &HidingKey, capacity: u64, total: usize) -> Vec<u64> {
        let mut prng = SelectionPrng::new(key, PLACEMENT_STREAM);
        prng.choose_distinct(total, capacity as usize).into_iter().map(|v| v as u64).collect()
    }

    /// The chip hosting an internal slot under cross-chip striping: slot
    /// `k` of parity group `G` (the group's parity slot being position
    /// `parity_group`) lands on chip `(G + k) % chips`. Every slot of a
    /// group therefore lives on a distinct chip whenever
    /// `parity_group + 1 <= chips`, and the group starting-chip rotation
    /// spreads load evenly. With parity off, slots simply round-robin.
    fn striped_chip_of_slot(
        cfg: &StegoConfig,
        data_slots: usize,
        slot: usize,
        chips: usize,
    ) -> usize {
        if cfg.parity_group == 0 {
            return slot % chips;
        }
        let (group, pos) = if slot < data_slots {
            (slot / cfg.parity_group, slot % cfg.parity_group)
        } else {
            (slot - data_slots, cfg.parity_group)
        };
        (group + pos) % chips
    }

    /// Striped placement over a multi-chip array. Each slot's LPN is drawn
    /// from its assigned chip's residue class (`lpn % chips == chip`,
    /// matching the FTL's home-chip pinning, which GC and wear-leveling
    /// preserve — so a slot placed on a chip *stays* on it for life). The
    /// per-chip index is chosen by one shared keyed partial Fisher–Yates
    /// per chip, all fed from the single placement stream in slot order.
    ///
    /// Single-chip volumes use [`derive_placement`](Self::derive_placement)
    /// instead: its draw sequence predates striping and stays byte-stable.
    fn derive_placement_striped(
        key: &HidingKey,
        capacity: u64,
        cfg: &StegoConfig,
        data_slots: usize,
        total: usize,
        chips: usize,
    ) -> Vec<u64> {
        let per_chip = (capacity / chips as u64) as usize;
        let mut prng = SelectionPrng::new(key, PLACEMENT_STREAM);
        let mut pools: Vec<Vec<usize>> = (0..chips).map(|_| (0..per_chip).collect()).collect();
        let mut taken = vec![0usize; chips];
        let mut out = Vec::with_capacity(total);
        for slot in 0..total {
            let c = Self::striped_chip_of_slot(cfg, data_slots, slot, chips);
            let i = taken[c];
            let j = i + prng.prng_mut().next_below((per_chip - i) as u64) as usize;
            pools[c].swap(i, j);
            out.push(c as u64 + chips as u64 * pools[c][i] as u64);
            taken[c] += 1;
        }
        out
    }

    /// Data slots visible to the user.
    pub fn data_slot_count(&self) -> usize {
        self.data_slots
    }

    /// Data slots still advertised: formatted slots minus those the
    /// scrubber wrote off as unrecoverable.
    pub fn advertised_slot_count(&self) -> usize {
        self.data_slots - self.lost_capacity
    }

    /// Hidden bytes the volume still promises to hold.
    pub fn advertised_capacity_bytes(&self) -> usize {
        self.advertised_slot_count() * self.slot_bytes()
    }

    /// Bytes per slot.
    pub fn slot_bytes(&self) -> usize {
        self.cfg.slot_bytes()
    }

    /// The underlying FTL (public volume view).
    pub fn ftl(&self) -> &Ftl<D> {
        &self.ftl
    }

    /// Exclusive access to the underlying FTL — fault-injection and
    /// maintenance harnesses use this to reach the device.
    pub fn ftl_mut(&mut self) -> &mut Ftl<D> {
        &mut self.ftl
    }

    /// Physical page currently backing a data slot, if its public page has
    /// been written (maintenance tooling uses this to target scrub tests).
    ///
    /// # Errors
    ///
    /// Returns [`StegoError::SlotOutOfRange`] for an invalid slot index.
    pub fn slot_location(
        &self,
        data_slot: usize,
    ) -> Result<Option<stash_flash::PageId>, StegoError> {
        if data_slot >= self.data_slot_count() {
            return Err(StegoError::SlotOutOfRange {
                slot: data_slot,
                count: self.data_slot_count(),
            });
        }
        Ok(self.ftl.physical_of(self.slot_lpn[self.internal_slot(data_slot)]))
    }

    /// The public LPN owning each internal slot (data slots first, then
    /// parity slots). Crash harnesses use this to tell hidden-bearing pages
    /// apart from plain public pages when choosing cut points.
    pub fn slot_lpns(&self) -> &[u64] {
        &self.slot_lpn
    }

    /// Unmounts, returning the FTL. Pending piggyback embeddings are NOT
    /// flushed — exactly the situation where parity earns its keep.
    pub fn unmount(self) -> Ftl<D> {
        self.ftl
    }

    /// Public-volume write. Re-embeds any hidden slots disturbed by GC, and
    /// (in piggyback mode) flushes a pending hidden write for this page.
    ///
    /// # Errors
    ///
    /// Fails on FTL or hiding errors.
    pub fn write_public(&mut self, lpn: u64, data: &BitPattern) -> Result<(), StegoError> {
        let report = self.ftl.write(lpn, data)?;
        self.reembed_after_migrations(&report.migrations)?;
        if let Some(&slot) = self.lpn_slot.get(&lpn) {
            // The slot's backing page moved to fresh cells: embed its
            // payload (if any) into the new physical page.
            if self.cache[slot].is_some() {
                self.embed_slot(slot)?;
                self.dirty[slot] = false;
            }
        }
        Ok(())
    }

    /// Public-volume read.
    ///
    /// # Errors
    ///
    /// Fails on FTL errors.
    pub fn read_public(&mut self, lpn: u64) -> Result<Option<BitPattern>, StegoError> {
        Ok(self.ftl.read(lpn)?)
    }

    /// Writes a hidden slot. In immediate mode the owning public page is
    /// rewritten at once (cover traffic); in piggyback mode the payload
    /// waits in memory until that page is next written publicly.
    ///
    /// # Errors
    ///
    /// Fails on range/size errors, an unbacked public page (immediate
    /// mode), or FTL/hiding errors.
    pub fn write_hidden(&mut self, data_slot: usize, payload: &[u8]) -> Result<(), StegoError> {
        if data_slot >= self.data_slot_count() {
            return Err(StegoError::SlotOutOfRange {
                slot: data_slot,
                count: self.data_slot_count(),
            });
        }
        if payload.len() != self.slot_bytes() {
            return Err(StegoError::PayloadLength {
                expected: self.slot_bytes(),
                got: payload.len(),
            });
        }
        let slot = self.internal_slot(data_slot);
        self.cache[slot] = Some(payload.to_vec());
        self.dirty[slot] = true;
        // Maintain the group parity in cache. The whole group is
        // initialized as a unit (unwritten siblings become zero-filled), so
        // that at remount an *empty* slot inside a live group is provably a
        // destroyed slot and parity knows to rebuild it.
        if let Some(group) = data_slot.checked_div(self.cfg.parity_group) {
            for member in self.group_members(group) {
                if self.cache[member].is_none() {
                    self.cache[member] = Some(vec![0u8; self.slot_bytes()]);
                    self.dirty[member] = true;
                }
            }
            self.recompute_parity(group);
        }
        if !self.cfg.piggyback {
            self.flush()?;
        }
        Ok(())
    }

    /// Reads a hidden slot (from the mounted cache; `None` if never
    /// written).
    ///
    /// # Errors
    ///
    /// Returns range errors only — a mounted volume serves from cache.
    pub fn read_hidden(&mut self, data_slot: usize) -> Result<Option<Vec<u8>>, StegoError> {
        if data_slot >= self.data_slot_count() {
            return Err(StegoError::SlotOutOfRange {
                slot: data_slot,
                count: self.data_slot_count(),
            });
        }
        let slot = self.internal_slot(data_slot);
        Ok(self.cache[slot].clone())
    }

    /// Embeds every dirty slot, rewriting its public page as cover traffic.
    ///
    /// # Errors
    ///
    /// Fails on FTL or hiding errors; [`StegoError::UnbackedSlot`] if a
    /// slot's public page was never written.
    pub fn flush(&mut self) -> Result<(), StegoError> {
        for slot in 0..self.cache.len() {
            if !self.dirty[slot] || self.cache[slot].is_none() {
                continue;
            }
            self.refresh_slot(slot)?;
        }
        Ok(())
    }

    /// Like [`flush`](Self::flush), but slots with no backing public page
    /// stay cached and dirty instead of failing the whole pass. Remount
    /// reconstruction uses this: a slot rebuilt from parity after its
    /// owning chip died has no page to re-embed into until the public
    /// volume writes its LPN again, and that must not abort recovery.
    fn flush_lenient(&mut self) -> Result<(), StegoError> {
        for slot in 0..self.cache.len() {
            if !self.dirty[slot] || self.cache[slot].is_none() {
                continue;
            }
            match self.refresh_slot(slot) {
                Ok(()) | Err(StegoError::UnbackedSlot { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Slots with pending (unflushed) hidden writes.
    pub fn pending_slots(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Preventive-maintenance walk over every hidden slot — the online half
    /// of the recovery pipeline (remount reconstruction is the offline
    /// half).
    ///
    /// 1. Slots sitting on grown-bad blocks are migrated off via the FTL's
    ///    evacuation hook and re-embedded on their new pages (grown-bad
    ///    blocks still *read*, so this must happen before they degrade
    ///    further).
    /// 2. Every backed slot is re-read with the standard recovery sweep;
    ///    slots whose winning read still needed at least
    ///    `refresh_threshold` bit corrections are rewritten onto fresh
    ///    cells before retention finishes the job.
    /// 3. Slots that no longer decode are rebuilt from the mounted cache or
    ///    group parity when possible; otherwise they are written off and
    ///    the advertised hidden capacity shrinks
    ///    ([`advertised_slot_count`](Self::advertised_slot_count)).
    ///
    /// # Errors
    ///
    /// Fails on FTL/flash errors only; per-slot decode failures are
    /// accounted in the report, not fatal.
    pub fn scrub(&mut self, refresh_threshold: usize) -> Result<RecoveryReport, StegoError> {
        let _scrub = span!(self.tracer, "scrub");
        let mut report = RecoveryReport::default();

        // Pass 1: get hidden data off grown-bad blocks while it still reads.
        let _evac_pass = span!(self.tracer, "scrub_evacuate");
        let mut bad_blocks: Vec<BlockId> = Vec::new();
        for slot in 0..self.cache.len() {
            if let Some(page) = self.ftl.physical_of(self.slot_lpn[slot]) {
                let grown = self.ftl.chip().is_grown_bad(page.block).map_err(HideError::from)?;
                if grown && !bad_blocks.contains(&page.block) {
                    bad_blocks.push(page.block);
                }
            }
        }
        for block in bad_blocks {
            let moves = self.ftl.evacuate_block(block)?;
            report.migrated += moves.iter().filter(|m| self.lpn_slot.contains_key(&m.lpn)).count();
            self.reembed_after_migrations(&moves)?;
        }
        drop(_evac_pass);

        // Pass 2: health-read every slot; refresh the ones going stale.
        let _health_pass = span!(self.tracer, "scrub_health");
        for slot in 0..self.cache.len() {
            if self.ftl.physical_of(self.slot_lpn[slot]).is_none() {
                // No backing page to health-read. If the payload survives
                // in the mounted cache (or still XORs out of its parity
                // group — e.g. the owning chip died wholesale and mount
                // retired its blocks), keep serving it and leave it flagged
                // for re-embedding by the next public write to its LPN.
                if self.cache[slot].is_some() || self.rebuild_from_parity(slot) {
                    self.dirty[slot] = true;
                    report.reconstructed += 1;
                } else {
                    report.empty += 1;
                }
                continue;
            }
            match self.try_decode_slot_counting(slot) {
                Ok(None) => report.empty += 1,
                Ok(Some((bytes, corrected))) => {
                    self.cache[slot] = Some(bytes);
                    report.recovered += 1;
                    if corrected >= refresh_threshold {
                        self.refresh_slot(slot)?;
                        report.refreshed += 1;
                    }
                }
                Err(StegoError::Hide(
                    err @ (HideError::Unrecoverable { .. } | HideError::NeedsRecovery),
                )) => {
                    if matches!(err, HideError::NeedsRecovery) {
                        report.tag_failures += 1;
                    }
                    if self.cache[slot].is_some() || self.rebuild_from_parity(slot) {
                        // The mounted cache (or parity) still holds the
                        // payload: rewrite it onto fresh cells.
                        self.refresh_slot(slot)?;
                        report.reconstructed += 1;
                    } else {
                        report.lost += 1;
                        if slot < self.data_slots && !self.written_off[slot] {
                            self.written_off[slot] = true;
                            self.lost_capacity += 1;
                            report.capacity_lost += 1;
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        drop(_health_pass);
        if let Some(t) = &self.tracer {
            t.counter_add("scrub_runs", "", 1);
            t.counter_add("scrub_migrations", "", report.migrated as u64);
            t.counter_add("scrub_refreshes", "", report.refreshed as u64);
            t.counter_add("scrub_reconstructed", "", report.reconstructed as u64);
            t.counter_add("scrub_lost", "", report.lost as u64);
            t.gauge_set("lost_capacity_slots", "", self.lost_capacity as f64);
        }
        Ok(report)
    }

    /// Health-reads every slot without repairing anything: counts decoded /
    /// empty / failing slots and the ECC corrections the decodes needed.
    /// Unlike [`scrub`](Self::scrub) this never refreshes, rebuilds or
    /// writes off capacity, so it is safe to run on any cadence — the
    /// telemetry layer samples it for the live BER-margin and
    /// capacity-reserve gauges.
    ///
    /// # Errors
    ///
    /// Fails on FTL/flash errors only; per-slot decode failures are
    /// tallied in [`HiddenHealth::slots_failed`], not fatal.
    pub fn health_probe(&mut self) -> Result<HiddenHealth, StegoError> {
        let _probe = span!(self.tracer, "health_probe");
        let mut h = HiddenHealth {
            correctable_bits_per_slot: self.cfg.vthi.correctable_bits_per_page(),
            data_slots: self.data_slots,
            advertised_slots: self.advertised_slot_count(),
            lost_capacity_slots: self.lost_capacity,
            parity_slots: self.cache.len() - self.data_slots,
            ..HiddenHealth::default()
        };
        for slot in 0..self.cache.len() {
            if self.ftl.physical_of(self.slot_lpn[slot]).is_none() {
                h.slots_empty += 1;
                continue;
            }
            match self.try_decode_slot_counting(slot) {
                Ok(None) => h.slots_empty += 1,
                Ok(Some((_, corrected))) => {
                    h.slots_present += 1;
                    h.corrected_bits_total += corrected;
                    h.corrected_bits_max = h.corrected_bits_max.max(corrected);
                }
                Err(StegoError::Hide(
                    HideError::Unrecoverable { .. } | HideError::NeedsRecovery,
                )) => h.slots_failed += 1,
                Err(e) => return Err(e),
            }
        }
        if let Some(t) = &self.tracer {
            t.counter_add("health_probes", "", 1);
            t.gauge_set("health_slot_corrected_max", "", h.corrected_bits_max as f64);
        }
        Ok(h)
    }

    // ---- internals --------------------------------------------------------

    /// Rewrites a slot's public page (getting fresh cells to charge) and
    /// re-embeds its cached payload.
    fn refresh_slot(&mut self, slot: usize) -> Result<(), StegoError> {
        let _refresh = span!(self.tracer, "refresh_slot", "slot={slot}");
        let lpn = self.slot_lpn[slot];
        let public = self.ftl.read(lpn)?.ok_or(StegoError::UnbackedSlot { lpn })?;
        let report = self.ftl.write(lpn, &public)?;
        self.reembed_after_migrations(&report.migrations)?;
        self.embed_slot(slot)?;
        self.dirty[slot] = false;
        Ok(())
    }

    /// Rebuilds a slot's cache entry by XOR-ing the rest of its parity
    /// group; `true` on success.
    fn rebuild_from_parity(&mut self, slot: usize) -> bool {
        if self.cfg.parity_group == 0 {
            return false;
        }
        let group = self.group_of(slot);
        let mut members = self.group_members(group);
        members.push(self.parity_slot_of_group(group));
        let mut acc = vec![0u8; self.slot_bytes()];
        for &m in &members {
            if m == slot {
                continue;
            }
            match &self.cache[m] {
                Some(data) => {
                    for (a, b) in acc.iter_mut().zip(data) {
                        *a ^= b;
                    }
                }
                None => return false,
            }
        }
        self.cache[slot] = Some(acc);
        true
    }

    fn recompute_parity(&mut self, group: usize) {
        let parity_slot = self.parity_slot_of_group(group);
        if parity_slot >= self.cache.len() {
            return;
        }
        let mut acc = vec![0u8; self.slot_bytes()];
        let mut any = false;
        for s in self.group_members(group) {
            if let Some(data) = &self.cache[s] {
                any = true;
                for (a, b) in acc.iter_mut().zip(data) {
                    *a ^= b;
                }
            }
        }
        if any {
            self.cache[parity_slot] = Some(acc);
            self.dirty[parity_slot] = true;
        }
    }

    /// Re-embeds cached slots whose backing pages were migrated by GC.
    fn reembed_after_migrations(&mut self, migrations: &[Migration]) -> Result<(), StegoError> {
        let mut affected: Vec<usize> =
            migrations.iter().filter_map(|m| self.lpn_slot.get(&m.lpn).copied()).collect();
        affected.sort_unstable();
        affected.dedup();
        for slot in affected {
            if self.cache[slot].is_some() {
                self.embed_slot(slot)?;
            }
        }
        Ok(())
    }

    /// Charges one slot's payload into its current physical page.
    fn embed_slot(&mut self, slot: usize) -> Result<(), StegoError> {
        let _embed = span!(self.tracer, "embed_slot", "slot={slot}");
        let lpn = self.slot_lpn[slot];
        let Some(page) = self.ftl.physical_of(lpn) else {
            return Err(StegoError::UnbackedSlot { lpn });
        };
        let payload = self.cache[slot].clone().expect("caller checked");
        // Tag + payload fill the full VT-HI page payload; the tag travels
        // through the same PP train, so a torn embed tears it too.
        let mut encoded = payload;
        encoded.extend_from_slice(&slot_tag(&encoded, slot, self.cfg.tag_bytes()));
        let public = {
            let _cover = span!(self.tracer, "cover_read");
            self.ftl.chip_mut().read_page(page).map_err(HideError::from)?
        };
        let key = self.key.clone();
        let cfg = self.cfg.vthi.clone();
        let tracer = self.tracer.clone();
        // Absolute selection: the volume has no ECC-exact copy of the
        // public bits (the paper assumes the public path is ECC-protected),
        // so it uses the read-error-tolerant selection variant.
        // The standard retry policy rides out transient partial-program
        // faults during the charge passes.
        let mut hider = Hider::new(self.ftl.chip_mut(), key, cfg)
            .with_selection_mode(SelectionMode::Absolute)
            .with_retry_policy(RetryPolicy::standard())
            .with_tracer(tracer);
        hider.hide_in_programmed_page(page, &public, &encoded, false)?;
        Ok(())
    }

    /// Attempts to decode one slot from flash, also reporting the winning
    /// read's ECC correction count (the scrubber's health signal). Decodes
    /// run under the standard recovery sweep.
    fn try_decode_slot_counting(
        &mut self,
        slot: usize,
    ) -> Result<Option<(Vec<u8>, usize)>, StegoError> {
        let lpn = self.slot_lpn[slot];
        let Some(page) = self.ftl.physical_of(lpn) else {
            return Ok(None);
        };
        let key = self.key.clone();
        let cfg = self.cfg.vthi.clone();
        let tracer = self.tracer.clone();
        let tag_bytes = self.cfg.tag_bytes();
        let mut hider = Hider::new(self.ftl.chip_mut(), key, cfg)
            .with_selection_mode(SelectionMode::Absolute)
            .with_retry_policy(RetryPolicy::standard())
            .with_tracer(tracer.clone());
        Self::decode_slot_via(&mut hider, &tracer, tag_bytes, slot, page)
    }

    /// Decodes one slot through a caller-supplied [`Hider`], so scans over
    /// many slots (remount's parity-group decode in particular) share one
    /// hider — one derived key and one set of reusable read buffers —
    /// instead of rebuilding them per slot.
    fn decode_slot_via(
        hider: &mut Hider<'_, D>,
        tracer: &Option<Arc<Tracer>>,
        tag_bytes: usize,
        slot: usize,
        page: stash_flash::PageId,
    ) -> Result<Option<(Vec<u8>, usize)>, StegoError> {
        let _decode = span!(tracer, "decode_slot", "slot={slot}");
        // The shifted read serves the emptiness heuristic first. A written
        // slot has ≈half its hidden cells charged above Vth; an untouched
        // page has only the natural ~1-2% there.
        let bits = {
            let _probe = span!(tracer, "probe_read");
            hider.read_hidden_bits(page, None)?
        };
        let above = bits.iter().filter(|&&b| !b).count();
        if above * 10 < bits.len() {
            return Ok(None);
        }
        let (bytes, corrected) = hider.reveal_page_recovered(page, None)?;
        // Integrity gate: a decode that passes the ECC but fails the tag is
        // a half-encoded page (or a misplaced payload) and must be rebuilt,
        // not returned.
        let split = bytes.len().saturating_sub(tag_bytes);
        let (payload, tag) = bytes.split_at(split);
        if tag != slot_tag(payload, slot, tag_bytes) {
            return Err(StegoError::Hide(HideError::NeedsRecovery));
        }
        Ok(Some((payload.to_vec(), corrected)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use stash_flash::{Chip, ChipProfile};
    use stash_ftl::FtlConfig;

    /// A small-volume profile: vendor-A physics, few blocks, 1 KB pages —
    /// functional tests do not need statistical scale.
    fn small_profile() -> ChipProfile {
        let mut p = ChipProfile::vendor_a();
        p.geometry =
            stash_flash::Geometry { blocks_per_chip: 12, pages_per_block: 8, page_bytes: 1024 };
        p
    }

    fn make_ftl(seed: u64) -> Ftl {
        let chip = Chip::new(small_profile(), seed);
        Ftl::new(chip, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).unwrap()
    }

    fn key() -> HidingKey {
        HidingKey::from_passphrase("hidden volume")
    }

    fn fill_public<D: NandDevice>(vol: &mut HiddenVolume<D>, lpns: u64, seed: u64) {
        let cpp = vol.ftl().chip().geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(seed);
        for lpn in 0..lpns {
            let data = BitPattern::random_half(&mut rng, cpp);
            vol.write_public(lpn, &data).unwrap();
        }
    }

    #[test]
    fn hidden_roundtrip_through_volume() {
        let ftl = make_ftl(1);
        let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        let mut vol = HiddenVolume::format(ftl, key(), cfg, 8).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 10);

        let secret: Vec<u8> = (0..vol.slot_bytes() as u8).collect();
        vol.write_hidden(0, &secret).unwrap();
        assert_eq!(vol.read_hidden(0).unwrap().unwrap(), secret);
        // Slot 1 shares slot 0's parity group: initialized to zeros.
        assert_eq!(vol.read_hidden(1).unwrap(), Some(vec![0u8; vol.slot_bytes()]));
    }

    #[test]
    fn health_probe_counts_without_repairing() {
        let ftl = make_ftl(7);
        let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        let mut vol = HiddenVolume::format(ftl, key(), cfg, 6).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 12);
        for i in 0..3usize {
            vol.write_hidden(i, &vec![i as u8 + 1; vol.slot_bytes()]).unwrap();
        }

        let h = vol.health_probe().unwrap();
        assert_eq!(h.data_slots, 6);
        assert_eq!(h.advertised_slots, 6);
        assert_eq!(h.lost_capacity_slots, 0);
        // Writing slots 0..3 also materialized their groups' parity slots
        // and zero-initialized their groupmates; nothing should fail.
        assert_eq!(h.slots_failed, 0);
        assert!(h.slots_present >= 3, "at least the written slots decode: {h:?}");
        assert_eq!(
            h.slots_present + h.slots_empty,
            6 + h.parity_slots,
            "every slot is accounted: {h:?}"
        );
        assert_eq!(h.correctable_bits_per_slot, vol.cfg.vthi.correctable_bits_per_page());
        assert!(h.corrected_bits_max <= h.correctable_bits_per_slot, "{h:?}");
        assert!(h.corrected_bits_total >= h.corrected_bits_max);

        // Probing is read-only: a second probe sees the same census and the
        // payloads still read back.
        assert_eq!(vol.health_probe().unwrap(), h);
        for i in 0..3usize {
            assert_eq!(vol.read_hidden(i).unwrap().unwrap(), vec![i as u8 + 1; vol.slot_bytes()]);
        }
    }

    #[test]
    fn survives_remount() {
        let ftl = make_ftl(2);
        let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        let secrets: Vec<Vec<u8>>;
        let ftl_back;
        {
            let mut vol = HiddenVolume::format(ftl, key(), cfg.clone(), 6).unwrap();
            let cap = vol.ftl().capacity_pages();
            fill_public(&mut vol, cap, 11);
            secrets = (0..4u8).map(|i| vec![i.wrapping_mul(17); vol.slot_bytes()]).collect();
            for (i, s) in secrets.iter().enumerate() {
                vol.write_hidden(i, s).unwrap();
            }
            ftl_back = vol.unmount();
        }
        let (mut vol, report) = HiddenVolume::remount(ftl_back, key(), cfg, 6).unwrap();
        assert_eq!(report.lost, 0, "nothing should be lost: {report:?}");
        assert!(report.recovered >= 4);
        for (i, s) in secrets.iter().enumerate() {
            assert_eq!(vol.read_hidden(i).unwrap().as_ref(), Some(s), "slot {i}");
        }
    }

    #[test]
    fn hidden_data_survives_gc_churn() {
        let ftl = make_ftl(3);
        let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        let mut vol = HiddenVolume::format(ftl, key(), cfg, 4).unwrap();
        let lpns = vol.ftl().capacity_pages();
        fill_public(&mut vol, lpns, 12);
        let secret = vec![0xC3u8; vol.slot_bytes()];
        vol.write_hidden(2, &secret).unwrap();

        // Grind the public volume until GC has run repeatedly.
        let cpp = vol.ftl().chip().geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..(lpns * 2) {
            let lpn = rng.gen_range(0..lpns);
            let data = BitPattern::random_half(&mut rng, cpp);
            vol.write_public(lpn, &data).unwrap();
        }
        assert!(vol.ftl().stats().gc_runs > 0, "GC must have churned");
        assert_eq!(vol.read_hidden(2).unwrap().unwrap(), secret);

        // And the on-flash copy (not just the cache) survived: remount.
        let ftl_back = vol.unmount();
        let geometry = *ftl_back.chip().geometry();
        let (mut vol2, report) =
            HiddenVolume::remount(ftl_back, key(), StegoConfig::for_geometry(&geometry), 4)
                .unwrap();
        assert_eq!(report.lost, 0, "{report:?}");
        assert_eq!(vol2.read_hidden(2).unwrap().unwrap(), secret);
    }

    #[test]
    fn parity_reconstructs_slot_lost_while_unmounted() {
        let ftl = make_ftl(4);
        let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        cfg.parity_group = 3;
        let mut vol = HiddenVolume::format(ftl, key(), cfg.clone(), 3).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 14);
        let secrets: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i + 1; vol.slot_bytes()]).collect();
        for (i, s) in secrets.iter().enumerate() {
            vol.write_hidden(i, s).unwrap();
        }
        // Unmounted: the normal user overwrites one slot's public page,
        // destroying its hidden payload (fresh physical page, no hiding).
        let victim_lpn = vol.slot_lpn[vol.internal_slot(1)];
        let mut ftl_back = vol.unmount();
        let cpp = ftl_back.chip().geometry().cells_per_page();
        let noise = BitPattern::random_half(&mut SmallRng::seed_from_u64(15), cpp);
        ftl_back.write(victim_lpn, &noise).unwrap();

        let (mut vol2, report) = HiddenVolume::remount(ftl_back, key(), cfg, 3).unwrap();
        assert_eq!(report.reconstructed, 1, "{report:?}");
        assert_eq!(report.lost, 0, "{report:?}");
        assert_eq!(vol2.read_hidden(1).unwrap().unwrap(), secrets[1]);
    }

    #[test]
    fn piggyback_defers_until_public_write() {
        let ftl = make_ftl(5);
        let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        cfg.piggyback = true;
        cfg.parity_group = 0;
        let mut vol = HiddenVolume::format(ftl, key(), cfg, 4).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 16);

        let secret = vec![0x42u8; vol.slot_bytes()];
        vol.write_hidden(0, &secret).unwrap();
        assert_eq!(vol.pending_slots(), 1, "embedding must be deferred");

        // A public write to the owning page flushes the hidden bits.
        let lpn = vol.slot_lpn[0];
        let cpp = vol.ftl().chip().geometry().cells_per_page();
        let data = BitPattern::random_half(&mut SmallRng::seed_from_u64(17), cpp);
        vol.write_public(lpn, &data).unwrap();
        assert_eq!(vol.pending_slots(), 0);
        assert_eq!(vol.read_hidden(0).unwrap().unwrap(), secret);
    }

    #[test]
    fn errors_are_typed() {
        let ftl = make_ftl(6);
        let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        let mut vol = HiddenVolume::format(ftl, key(), cfg, 2).unwrap();
        assert!(matches!(vol.write_hidden(5, &[]), Err(StegoError::SlotOutOfRange { .. })));
        let wrong = vec![0u8; vol.slot_bytes() + 1];
        assert!(matches!(vol.write_hidden(0, &wrong), Err(StegoError::PayloadLength { .. })));
        // Unbacked public page.
        let secret = vec![0u8; vol.slot_bytes()];
        assert!(matches!(vol.write_hidden(0, &secret), Err(StegoError::UnbackedSlot { .. })));
    }

    #[test]
    fn scrub_migrates_slots_off_grown_bad_blocks() {
        let ftl = make_ftl(7);
        let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        let mut vol = HiddenVolume::format(ftl, key(), cfg, 4).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 18);
        let secret = vec![0x5Au8; vol.slot_bytes()];
        vol.write_hidden(0, &secret).unwrap();

        let block = vol.ftl.physical_of(vol.slot_lpn[0]).unwrap().block;
        vol.ftl.chip_mut().grow_bad_block(block).unwrap();

        let report = vol.scrub(usize::MAX).unwrap();
        assert!(report.migrated >= 1, "{report:?}");
        assert_eq!(report.lost, 0, "{report:?}");
        assert_ne!(
            vol.ftl.physical_of(vol.slot_lpn[0]).unwrap().block,
            block,
            "slot must have moved off the grown-bad block"
        );
        assert_eq!(vol.read_hidden(0).unwrap().unwrap(), secret);

        // The migrated on-flash copy (not just the cache) decodes: remount.
        let ftl_back = vol.unmount();
        let geometry = *ftl_back.chip().geometry();
        let (mut vol2, rep) =
            HiddenVolume::remount(ftl_back, key(), StegoConfig::for_geometry(&geometry), 4)
                .unwrap();
        assert_eq!(rep.lost, 0, "{rep:?}");
        assert_eq!(vol2.read_hidden(0).unwrap().unwrap(), secret);
    }

    #[test]
    fn scrub_refreshes_slots_over_the_watermark() {
        let ftl = make_ftl(8);
        let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        let mut vol = HiddenVolume::format(ftl, key(), cfg, 4).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 19);
        let secret = vec![0x77u8; vol.slot_bytes()];
        vol.write_hidden(0, &secret).unwrap();

        // Threshold 0 forces a refresh of every live slot; the payload must
        // survive the rewrite cycle.
        let report = vol.scrub(0).unwrap();
        assert!(report.refreshed >= 1, "{report:?}");
        assert_eq!(report.lost, 0, "{report:?}");
        assert_eq!(vol.read_hidden(0).unwrap().unwrap(), secret);

        // An impossible threshold refreshes nothing.
        let report = vol.scrub(usize::MAX).unwrap();
        assert_eq!(report.refreshed, 0, "{report:?}");
        assert_eq!(vol.read_hidden(0).unwrap().unwrap(), secret);
    }

    #[test]
    fn scrub_writes_off_destroyed_slots_and_shrinks_capacity() {
        use stash_flash::{FaultDevice, FaultPlan};
        // A fault-capable backend from the start, so the stuck-cell plan
        // can be installed mid-test; no plan means exact passthrough.
        let chip = FaultDevice::new(Chip::new(small_profile(), 9));
        let ftl = Ftl::new(chip, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).unwrap();
        let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        cfg.parity_group = 0; // no parity: destruction is permanent
        let mut vol = HiddenVolume::format(ftl, key(), cfg.clone(), 3).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 20);
        for i in 0..3 {
            vol.write_hidden(i, &vec![i as u8 + 1; vol.slot_bytes()]).unwrap();
        }
        assert_eq!(vol.advertised_slot_count(), 3);

        // Slot 1's page dies hard while the volume is unmounted: every cell
        // reads a stuck alternating pattern, so the slot still *looks*
        // written (≈half its hidden cells read charged) but no sweep offset
        // decodes it, and with the cache gone there is nothing to rebuild
        // from (parity is off).
        let victim = vol.ftl.physical_of(vol.slot_lpn[vol.internal_slot(1)]).unwrap();
        let mut ftl_back = vol.unmount();
        let cpp = ftl_back.chip().geometry().cells_per_page();
        let base = victim.page as usize * cpp;
        let mut plan = FaultPlan::new(1);
        for i in 0..cpp {
            let level = if i % 2 == 0 { 5 } else { 120 };
            plan = plan.with_stuck_cell(victim.block, base + i, level);
        }
        ftl_back.chip_mut().set_plan(plan);

        let (mut vol2, remount_report) = HiddenVolume::remount(ftl_back, key(), cfg, 3).unwrap();
        assert_eq!(remount_report.lost, 1, "{remount_report:?}");
        let report = vol2.scrub(usize::MAX).unwrap();
        assert_eq!(report.capacity_lost, 1, "{report:?}");
        assert_eq!(report.lost, 1, "{report:?}");
        assert_eq!(vol2.advertised_slot_count(), 2);
        assert_eq!(vol2.advertised_capacity_bytes(), 2 * vol2.slot_bytes());
        // The surviving slots still read.
        assert_eq!(vol2.read_hidden(0).unwrap().unwrap(), vec![1u8; vol2.slot_bytes()]);
        assert_eq!(vol2.read_hidden(2).unwrap().unwrap(), vec![3u8; vol2.slot_bytes()]);
        // A second scrub does not write the same slot off twice.
        let report = vol2.scrub(usize::MAX).unwrap();
        assert_eq!(report.capacity_lost, 0, "{report:?}");
        assert_eq!(vol2.advertised_slot_count(), 2);
    }

    #[test]
    fn integrity_tag_rejects_mis_tagged_payload_and_parity_rebuilds() {
        let ftl = make_ftl(10);
        let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        cfg.parity_group = 3;
        let mut vol = HiddenVolume::format(ftl, key(), cfg.clone(), 3).unwrap();
        let cap = vol.ftl().capacity_pages();
        fill_public(&mut vol, cap, 22);
        let secrets: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i + 9; vol.slot_bytes()]).collect();
        for (i, s) in secrets.iter().enumerate() {
            vol.write_hidden(i, s).unwrap();
        }

        // While unmounted, slot 1's public page is rewritten and a payload
        // carrying the WRONG slot identity is embedded on the fresh page —
        // the ECC will decode it cleanly, so only the tag can notice.
        let victim_lpn = vol.slot_lpn[vol.internal_slot(1)];
        let mut ftl_back = vol.unmount();
        let cpp = ftl_back.chip().geometry().cells_per_page();
        let noise = BitPattern::random_half(&mut SmallRng::seed_from_u64(23), cpp);
        ftl_back.write(victim_lpn, &noise).unwrap();
        let page = ftl_back.physical_of(victim_lpn).unwrap();
        let public = ftl_back.chip_mut().read_page(page).unwrap();
        let mut encoded = vec![0xEEu8; cfg.slot_bytes()];
        let bad_tag = slot_tag(&encoded, 999, cfg.tag_bytes());
        encoded.extend_from_slice(&bad_tag);
        let mut hider = Hider::new(ftl_back.chip_mut(), key(), cfg.vthi.clone())
            .with_selection_mode(SelectionMode::Absolute)
            .with_retry_policy(RetryPolicy::standard());
        hider.hide_in_programmed_page(page, &public, &encoded, false).unwrap();

        let (mut vol2, report) = HiddenVolume::remount(ftl_back, key(), cfg, 3).unwrap();
        assert_eq!(report.tag_failures, 1, "{report:?}");
        assert_eq!(report.reconstructed, 1, "{report:?}");
        assert_eq!(report.lost, 0, "{report:?}");
        assert_eq!(vol2.read_hidden(1).unwrap().unwrap(), secrets[1]);
    }

    #[test]
    fn striped_placement_spans_distinct_chips_per_group() {
        use stash_flash::ArrayDevice;
        let array = ArrayDevice::homogeneous(small_profile(), 4, 11);
        let ftl = Ftl::new(array, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).unwrap();
        let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
        cfg.parity_group = 3;
        let vol = HiddenVolume::format(ftl, key(), cfg, 9).unwrap();
        let lpns = vol.slot_lpns();
        assert_eq!(lpns.len(), 9 + 3, "9 data slots + one parity slot per group");
        let mut sorted = lpns.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), lpns.len(), "slot LPNs are distinct");
        // Every group's 3 data slots + parity slot sit on 4 distinct chips,
        // so losing any single chip costs each group at most one member.
        for group in 0..3usize {
            let mut chips_used: Vec<u64> =
                (group * 3..group * 3 + 3).map(|s| lpns[s] % 4).collect();
            chips_used.push(lpns[9 + group] % 4);
            chips_used.sort_unstable();
            chips_used.dedup();
            assert_eq!(chips_used.len(), 4, "group {group} must span all 4 chips");
        }
        // And the placement is key-dependent on arrays too.
        let array2 = ArrayDevice::homogeneous(small_profile(), 4, 11);
        let ftl2 = Ftl::new(array2, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).unwrap();
        let mut cfg2 = StegoConfig::for_geometry(ftl2.chip().geometry());
        cfg2.parity_group = 3;
        let vol2 =
            HiddenVolume::format(ftl2, HidingKey::from_passphrase("other"), cfg2, 9).unwrap();
        assert_ne!(vol.slot_lpns(), vol2.slot_lpns());
    }

    #[test]
    fn placement_is_key_dependent() {
        let a = HiddenVolume::<Chip>::derive_placement(&key(), 1024, 16);
        let b = HiddenVolume::<Chip>::derive_placement(&key(), 1024, 16);
        let c =
            HiddenVolume::<Chip>::derive_placement(&HidingKey::from_passphrase("other"), 1024, 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
