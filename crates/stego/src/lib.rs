//! # stash-stego — a steganographic hidden volume over VT-HI
//!
//! The paper sketches (§9.2) how VT-HI becomes a building block for a
//! steganographic storage system: a publicly visible, encrypted volume
//! inside which a user can mount a hidden volume with a secret key. This
//! crate implements that design against the [`stash_ftl::Ftl`]:
//!
//! * Hidden data lives in fixed-size **slots**; each slot rides inside the
//!   physical page currently backing one key-selected public logical page,
//!   so the hidden volume's location is re-derived from the key at mount
//!   time and never persisted.
//! * Writing a hidden slot rewrites its public page (flash cells only
//!   charge upward, so fresh hidden bits need a fresh physical page) — the
//!   public rewrite *is* the cover traffic.
//! * When FTL garbage collection migrates or erases pages, the mounted
//!   volume re-embeds affected slots ([paper §5.1]: "the HU must re-embed
//!   the hidden data in a new location before the old NU page containing it
//!   is permanently erased").
//! * Optional XOR **parity groups** reconstruct slots that were lost while
//!   the volume was unmounted (the paper's suggested RAID-like redundancy).
//! * A **piggyback** mode defers hidden embedding until the owning public
//!   page is naturally rewritten, for the multiple-snapshot adversary of
//!   §9.2.
//!
//! [paper §5.1]: https://www.usenix.org/conference/fast18/presentation/zuck

mod volume;

pub use volume::{HiddenHealth, HiddenVolume, RecoveryReport, StegoConfig, StegoError};
