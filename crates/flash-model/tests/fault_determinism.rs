//! Seed-determinism regression: the same `FaultPlan` seed must produce the
//! same fault schedule, operation by operation, and an identical meter —
//! chaos runs are only debuggable if they replay exactly.

use stash_flash::{
    BitPattern, BlockId, Chip, ChipProfile, FaultDevice, FaultPlan, Geometry, MeterSnapshot,
    NandDevice, PageId,
};

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_program_fail(0.2)
        .with_partial_program_fail(0.2)
        .with_erase_fail(0.2)
        .schedule_grown_bad(BlockId(3), 50)
}

/// Runs a fixed operation mix, logging every outcome.
fn run(plan_seed: u64) -> (Vec<String>, MeterSnapshot) {
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = Geometry { blocks_per_chip: 4, pages_per_block: 8, page_bytes: 512 };
    let mut chip = FaultDevice::with_plan(Chip::new(profile, 42), plan(plan_seed));
    let pattern = BitPattern::ones(chip.geometry().cells_per_page());
    let mask = BitPattern::zeros(chip.geometry().cells_per_page());

    let mut log = Vec::new();
    for round in 0..4u32 {
        for b in 0..4u32 {
            log.push(format!("erase B{b} r{round}: {:?}", chip.erase_block(BlockId(b))));
            for p in 0..8u32 {
                let page = PageId::new(BlockId(b), p);
                log.push(format!("program {page:?}: {:?}", chip.program_page(page, &pattern)));
                log.push(format!("pp {page:?}: {:?}", chip.partial_program(page, &mask)));
            }
        }
    }
    (log, chip.meter())
}

#[test]
fn same_fault_seed_replays_identically() {
    let (log_a, meter_a) = run(5);
    let (log_b, meter_b) = run(5);
    assert_eq!(log_a, log_b, "fault schedule must replay exactly");
    assert_eq!(meter_a, meter_b, "meters must match bit for bit");
    assert!(meter_a.total_faults() > 0, "the mix must actually fault");
}

#[test]
fn different_fault_seed_changes_the_schedule() {
    let (log_a, _) = run(5);
    let (log_b, _) = run(6);
    assert_ne!(log_a, log_b, "distinct seeds should fault differently");
}
