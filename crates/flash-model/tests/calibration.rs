//! Calibration tests: pin the simulator's statistics to what the paper
//! measured on real silicon (§4, §6, Figures 2, 3, 5).
//!
//! These are the contract between the substrate and every experiment built
//! on top of it. If a profile constant changes, these tests say whether the
//! simulator still "is" the paper's chip.

use rand::{rngs::SmallRng, SeedableRng};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, Histogram, PageId, SLC_READ_REF};

/// The paper's default hidden-data threshold (§6.1).
const VTH: u8 = 34;

/// Programs every page of a block with fresh pseudorandom data, returning
/// the per-page data patterns.
fn program_block(chip: &mut Chip, b: BlockId, rng: &mut SmallRng) -> Vec<BitPattern> {
    let cpp = chip.geometry().cells_per_page();
    let pages = chip.geometry().pages_per_block;
    chip.erase_block(b).unwrap();
    (0..pages)
        .map(|p| {
            let data = BitPattern::random_half(rng, cpp);
            chip.program_page(PageId::new(b, p), &data).unwrap();
            data
        })
        .collect()
}

/// Splits a programmed block's probed levels into (erased-cell histogram,
/// programmed-cell histogram).
fn split_histograms(chip: &mut Chip, b: BlockId, data: &[BitPattern]) -> (Histogram, Histogram) {
    let mut erased = Histogram::new();
    let mut programmed = Histogram::new();
    let mut levels = Vec::new();
    for (p, pattern) in data.iter().enumerate() {
        chip.probe_voltages_into(PageId::new(b, p as u32), &mut levels).unwrap();
        for (i, &level) in levels.iter().enumerate() {
            if pattern.get(i) {
                erased.add_levels(&[level]);
            } else {
                programmed.add_levels(&[level]);
            }
        }
    }
    (erased, programmed)
}

fn scaled_chip(seed: u64) -> Chip {
    Chip::new(ChipProfile::vendor_a_scaled(), seed)
}

#[test]
fn erased_state_statistics_match_paper() {
    let mut chip = scaled_chip(11);
    let mut rng = SmallRng::seed_from_u64(99);
    let data = program_block(&mut chip, BlockId(0), &mut rng);
    let (erased, _) = split_histograms(&mut chip, BlockId(0), &data);

    // Paper §6.3: ~700 of ~72k erased cells per page naturally sit above
    // Vth=34 — about 1%. Give the model a generous band.
    let above_vth = erased.fraction_at_or_above(VTH);
    assert!(
        (0.004..0.025).contains(&above_vth),
        "fraction of erased cells above Vth={VTH}: {above_vth:.4}"
    );

    // Paper §4: 99.99% of erased cells measured within [0, 70].
    let above70 = erased.fraction_at_or_above(70);
    assert!(above70 < 0.001, "erased cells above level 70: {above70:.5}");

    // Essentially no erased cell may cross the SLC read reference.
    assert!(erased.fraction_at_or_above(SLC_READ_REF) < 1e-4);

    // Most erased cells are negatively charged and measure as level 0
    // (paper §4 footnote: negative voltages are not measurable).
    let at_zero = erased.fraction_in(0, 0);
    assert!(at_zero > 0.5, "only {at_zero:.3} of erased cells measured at 0");

    // The positive tail is a real, visible population (Fig. 2a plots it).
    let visible = erased.fraction_in(5, 70);
    assert!(visible > 0.02, "visible erased tail too thin: {visible:.4}");
}

#[test]
fn programmed_state_statistics_match_paper() {
    let mut chip = scaled_chip(12);
    let mut rng = SmallRng::seed_from_u64(7);
    let data = program_block(&mut chip, BlockId(0), &mut rng);
    let (_, programmed) = split_histograms(&mut chip, BlockId(0), &data);

    // Paper §4: 99.99% of programmed cells within [120, 210].
    let inside = programmed.fraction_in(120, 210);
    assert!(inside > 0.9985, "programmed cells in [120,210]: {inside:.5}");
    let mean = programmed.mean();
    assert!((150.0..185.0).contains(&mean), "programmed mean {mean:.1}");
    let sd = programmed.std_dev();
    assert!((6.0..15.0).contains(&sd), "programmed sd {sd:.1}");
}

#[test]
fn public_ber_is_low_and_grows_with_wear() {
    let mut fresh = scaled_chip(13);
    let mut worn = scaled_chip(13);
    let mut rng = SmallRng::seed_from_u64(5);

    // Fresh block.
    let data = program_block(&mut fresh, BlockId(0), &mut rng);
    let mut fresh_errs = 0u64;
    let mut bits = 0u64;
    for (p, pattern) in data.iter().enumerate() {
        let back = fresh.read_page(PageId::new(BlockId(0), p as u32)).unwrap();
        fresh_errs += pattern.hamming_distance(&back) as u64;
        bits += pattern.len() as u64;
    }
    let fresh_ber = fresh_errs as f64 / bits as f64;
    // Paper §8: normal-data BER is on the order of 3e-5.
    assert!(fresh_ber < 3e-4, "fresh public BER {fresh_ber:.2e}");

    // Worn block (rated endurance).
    worn.cycle_block(BlockId(0), 3000).unwrap();
    let mut rng2 = SmallRng::seed_from_u64(6);
    let data = program_block(&mut worn, BlockId(0), &mut rng2);
    let mut worn_errs = 0u64;
    for (p, pattern) in data.iter().enumerate() {
        let back = worn.read_page(PageId::new(BlockId(0), p as u32)).unwrap();
        worn_errs += pattern.hamming_distance(&back) as u64;
    }
    assert!(
        worn_errs > fresh_errs,
        "wear should raise BER: fresh {fresh_errs} vs worn {worn_errs} errors"
    );
}

#[test]
fn distributions_shift_right_with_wear() {
    // Paper Fig. 3: higher PEC ⇒ distributions move right.
    // One physical block cycled progressively, as on a real tester (using
    // different blocks would confound drift with manufacturing offsets).
    let mut rng = SmallRng::seed_from_u64(17);
    let mut chip = scaled_chip(14);
    let b = BlockId(0);
    let mut means = Vec::new();
    let mut tails = Vec::new();
    let mut last_pec = 0u32;
    for pec in [0u32, 1000, 2000, 3000] {
        chip.cycle_block(b, pec - last_pec).unwrap();
        last_pec = pec;
        let data = program_block(&mut chip, b, &mut rng);
        let (erased, programmed) = split_histograms(&mut chip, b, &data);
        means.push(programmed.mean());
        tails.push(erased.fraction_at_or_above(VTH));
    }
    assert!(
        means.windows(2).all(|w| w[1] > w[0]),
        "programmed means must increase with PEC: {means:?}"
    );
    // Total shift over 3000 PEC is several levels (Fig. 3b).
    let shift = means[3] - means[0];
    assert!((4.0..16.0).contains(&shift), "programmed shift over 3000 PEC: {shift:.2}");
    // The erased positive tail thickens with wear (Fig. 3a).
    assert!(tails[3] > tails[0] * 1.2, "erased tail should grow with wear: {tails:?}");
}

#[test]
fn samples_of_same_model_differ_visibly() {
    // Paper Fig. 2: four samples of the same model have noticeably
    // different distributions.
    let mut rng = SmallRng::seed_from_u64(3);
    let mut means = Vec::new();
    for seed in [1u64, 2, 3, 4] {
        let mut chip = scaled_chip(seed);
        let data = program_block(&mut chip, BlockId(0), &mut rng);
        let (_, programmed) = split_histograms(&mut chip, BlockId(0), &data);
        means.push(programmed.mean());
    }
    let max = means.iter().cloned().fold(f64::MIN, f64::max);
    let min = means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min > 0.5,
        "chip samples should differ by a visible fraction of a level: {means:?}"
    );
    assert!(max - min < 15.0, "samples should still be the same model: {means:?}");
}

#[test]
fn page_level_noisier_than_block_level() {
    // Paper Fig. 2c/d: page histograms vary more than block histograms.
    let mut chip = scaled_chip(15);
    let mut rng = SmallRng::seed_from_u64(21);
    let data = program_block(&mut chip, BlockId(0), &mut rng);

    let mut page_means = Vec::new();
    let mut levels = Vec::new();
    for (p, pattern) in data.iter().enumerate() {
        chip.probe_voltages_into(PageId::new(BlockId(0), p as u32), &mut levels).unwrap();
        let mut h = Histogram::new();
        for (i, &l) in levels.iter().enumerate() {
            if !pattern.get(i) {
                h.add_levels(&[l]);
            }
        }
        page_means.push(h.mean());
    }
    let mean = page_means.iter().sum::<f64>() / page_means.len() as f64;
    let var = page_means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / page_means.len() as f64;
    let page_sd = var.sqrt();
    // Per-page means must wander by a meaningful fraction of a level.
    assert!(page_sd > 0.5, "page-to-page sd {page_sd:.3}");
    assert!(page_sd < 6.0, "page-to-page sd implausibly large {page_sd:.3}");
}

#[test]
fn vendor_b_has_same_shape_different_numbers() {
    let mut chip = Chip::new(ChipProfile::vendor_b(), 30);
    // Use one page only: vendor-B pages are full 18 KB.
    let b = BlockId(0);
    chip.erase_block(b).unwrap();
    let mut rng = SmallRng::seed_from_u64(40);
    let cpp = chip.geometry().cells_per_page();
    assert_eq!(cpp, 18256 * 8);
    let data = BitPattern::random_half(&mut rng, cpp);
    let page = PageId::new(b, 0);
    chip.program_page(page, &data).unwrap();
    let mut levels = Vec::new();
    chip.probe_voltages_into(page, &mut levels).unwrap();
    let mut programmed = Histogram::new();
    for (i, &l) in levels.iter().enumerate() {
        if !data.get(i) {
            programmed.add_levels(&[l]);
        }
    }
    let mean = programmed.mean();
    assert!((150.0..190.0).contains(&mean), "vendor-B programmed mean {mean:.1}");
    let back = chip.read_page(page).unwrap();
    let errs = back.hamming_distance(&data);
    assert!(errs < 30, "vendor-B raw page errors {errs}");
}
