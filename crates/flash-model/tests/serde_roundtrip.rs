//! Profiles, geometries and meter snapshots are plain data structures:
//! they serialize (for experiment manifests) and deserialize back intact.

use stash_flash::{BitPattern, ChipProfile, Geometry, Meter, OpKind, TimingModel};

#[test]
fn profile_roundtrips_through_json() {
    for profile in [ChipProfile::vendor_a(), ChipProfile::vendor_b()] {
        let json = serde_json::to_string(&profile).expect("serialize");
        let back: ChipProfile = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, profile);
    }
}

#[test]
fn geometry_roundtrips_through_json() {
    let g = Geometry::paper_vendor_a();
    let json = serde_json::to_string(&g).expect("serialize");
    let back: Geometry = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, g);
}

#[test]
fn geometry_equality_semantics() {
    assert_eq!(Geometry::paper_vendor_a(), Geometry::paper_vendor_a());
    assert_ne!(Geometry::paper_vendor_a(), Geometry::paper_vendor_b());
}

#[test]
fn meter_snapshot_is_plain_data() {
    let timing = TimingModel::paper_vendor_a();
    let mut m = Meter::new();
    m.record(OpKind::Read, &timing);
    let snap = m.snapshot();
    let copy = snap;
    assert_eq!(snap, copy);
}

#[test]
fn bitpattern_clone_and_eq() {
    let p = BitPattern::from_bytes(&[0xAB, 0xCD], 16);
    let q = p.clone();
    assert_eq!(p, q);
    assert_eq!(p.hamming_distance(&q), 0);
}
