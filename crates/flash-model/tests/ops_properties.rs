//! Property tests over the tester command set: invariants that must hold
//! for every pattern, page and seed.

use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, Geometry, OpKind, PageId};

fn tiny_chip(seed: u64) -> Chip {
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = Geometry { blocks_per_chip: 4, pages_per_block: 4, page_bytes: 256 };
    Chip::new(profile, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever is programmed reads back (modulo the noise floor) for any
    /// pattern, not just balanced random ones.
    #[test]
    fn prop_program_read_roundtrip(seed in any::<u64>(), pattern_seed in any::<u64>(),
                                   density in 0.0f64..=1.0) {
        let mut chip = tiny_chip(seed);
        let cpp = chip.geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(pattern_seed);
        let data: BitPattern =
            (0..cpp).map(|_| rand::Rng::gen_bool(&mut rng, density)).collect();
        chip.erase_block(BlockId(0)).unwrap();
        let page = PageId::new(BlockId(0), 0);
        chip.program_page(page, &data).unwrap();
        let back = chip.read_page(page).unwrap();
        // Weak pages (3-sigma-low voltage offsets) may carry a few raw
        // errors — that's what the public ECC path absorbs on real drives.
        prop_assert!(back.hamming_distance(&data) <= 8);
    }

    /// Erase always returns every cell to logical 1, from any prior state.
    #[test]
    fn prop_erase_clears(seed in any::<u64>(), pec in 0u32..3000) {
        let mut chip = tiny_chip(seed);
        let cpp = chip.geometry().cells_per_page();
        chip.cycle_block(BlockId(1), pec).unwrap();
        chip.erase_block(BlockId(1)).unwrap();
        let page = PageId::new(BlockId(1), 2);
        chip.program_page(page, &BitPattern::zeros(cpp)).unwrap();
        chip.erase_block(BlockId(1)).unwrap();
        let bits = chip.read_page(page).unwrap();
        prop_assert_eq!(bits.count_zeros(), 0);
    }

    /// The meter is exact: op counts reflect issued commands one-for-one.
    #[test]
    fn prop_meter_counts_exact(seed in any::<u64>(), reads in 0u8..8, pps in 0u8..8) {
        let mut chip = tiny_chip(seed);
        let cpp = chip.geometry().cells_per_page();
        chip.erase_block(BlockId(0)).unwrap();
        let page = PageId::new(BlockId(0), 0);
        chip.program_page(page, &BitPattern::zeros(cpp)).unwrap();
        chip.reset_meter();
        for _ in 0..reads {
            let _ = chip.read_page(page).unwrap();
        }
        let mask = BitPattern::ones(cpp);
        for _ in 0..pps {
            chip.partial_program(page, &mask).unwrap();
        }
        let m = chip.meter();
        prop_assert_eq!(m.count(OpKind::Read), u64::from(reads));
        prop_assert_eq!(m.count(OpKind::PartialProgram), u64::from(pps));
        prop_assert_eq!(m.total_ops(), u64::from(reads) + u64::from(pps));
    }

    /// Shifted reads are consistent: lowering the reference can only turn
    /// 1s into 0s (monotone thresholding), up to read noise on boundary
    /// cells.
    #[test]
    fn prop_shifted_reads_monotone(seed in any::<u64>()) {
        let mut chip = tiny_chip(seed);
        let cpp = chip.geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5);
        let data = BitPattern::random_half(&mut rng, cpp);
        chip.erase_block(BlockId(0)).unwrap();
        let page = PageId::new(BlockId(0), 0);
        chip.program_page(page, &data).unwrap();
        let mut low = BitPattern::zeros(0);
        chip.read_page_shifted_into(page, 30, &mut low).unwrap();
        let mut high = BitPattern::zeros(0);
        chip.read_page_shifted_into(page, 200, &mut high).unwrap();
        // A cell reading 1 at vref=30 (v < 30) must read 1 at vref=200
        // unless read noise crosses it — allow a tiny violation count.
        let violations = (0..cpp)
            .filter(|&i| low.get(i) && !high.get(i))
            .count();
        prop_assert!(violations <= 2, "{violations} monotonicity violations");
    }

    /// Probing never changes what a subsequent read returns (beyond noise):
    /// characterization is non-destructive.
    #[test]
    fn prop_probe_nondestructive(seed in any::<u64>()) {
        let mut chip = tiny_chip(seed);
        let cpp = chip.geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let data = BitPattern::random_half(&mut rng, cpp);
        chip.erase_block(BlockId(0)).unwrap();
        let page = PageId::new(BlockId(0), 0);
        chip.program_page(page, &data).unwrap();
        let mut levels = Vec::new();
        for _ in 0..5 {
            chip.probe_voltages_into(page, &mut levels).unwrap();
        }
        let back = chip.read_page(page).unwrap();
        prop_assert!(back.hamming_distance(&data) <= 8);
    }

    /// Two chips with the same seed are indistinguishable; different seeds
    /// are different silicon.
    #[test]
    fn prop_seed_determinism(seed in any::<u64>()) {
        let levels = |s: u64| {
            let mut chip = tiny_chip(s);
            let cpp = chip.geometry().cells_per_page();
            chip.erase_block(BlockId(0)).unwrap();
            let page = PageId::new(BlockId(0), 0);
            chip.program_page(page, &BitPattern::zeros(cpp)).unwrap();
            let mut levels = Vec::new();
            chip.probe_voltages_into(page, &mut levels).unwrap();
            levels
        };
        prop_assert_eq!(levels(seed), levels(seed));
    }
}
