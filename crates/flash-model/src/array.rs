//! A multi-chip NAND array behind the single-device command surface.
//!
//! [`ArrayDevice`] gangs N independent [`NandDevice`] backends into one
//! device with a widened block address space: the top block bits select the
//! chip, so global block `b` lives on chip `b / local_blocks` at local block
//! `b % local_blocks`. Every layer written against [`NandDevice`] — the
//! hider, the FTL, the hidden volume — runs unchanged on an array; a bare
//! [`Chip`] is simply the degenerate N=1 case.
//!
//! # Determinism contract
//!
//! * Each chip keeps its own RNG streams, meter and clock. A command routed
//!   to chip `c` consumes only chip `c`'s randomness, so per-chip digests
//!   are independent of what the other chips are doing.
//! * With N=1 the array is a pure pass-through: same addresses, same RNG
//!   draws, same meter — byte-identical to driving the inner chip directly
//!   (locked in by `tests/backend_parity.rs`).
//! * [`exec`](NandDevice::exec) fans each batch out per chip in parallel
//!   (via `stash-par`), preserving per-chip command order; results are
//!   scattered back to their original batch positions, so the output is
//!   identical to scalar in-order dispatch for any thread count. Device-wide
//!   commands ([`NandCmd::AgeDays`], [`NandCmd::AdvanceTimeUs`]) act as
//!   barriers between parallel segments and are applied to every chip.
//! * The aggregate meter is the per-chip sum: `device_time_us` is total
//!   chip-busy time across the array (not wall-clock makespan), and
//!   device-wide waits/aging are billed once per chip.
//!
//! Errors crossing the array boundary are rebased to global addresses, so
//! callers never observe chip-local block ids.

use crate::bits::BitPattern;
use crate::chip::Chip;
use crate::device::{NandCmd, NandDevice, WearSummary};
use crate::error::FlashError;
use crate::geometry::{BlockId, Geometry, PageId};
use crate::meter::{FaultKind, MeterSnapshot, OpKind};
use crate::profile::ChipProfile;
use crate::recorder::{SharedFlightSink, SharedRecorder};
use crate::{CmdResult, Level, Result};

/// Per-chip seed stride for [`ArrayDevice::homogeneous`]: chip `i` gets
/// `seed ^ (i * STRIDE)`, so chip 0 keeps the caller's seed (N=1 parity)
/// while later chips draw decorrelated streams.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// An N-chip NAND array that is itself a [`NandDevice`] with a widened
/// address space. See the [module docs](self) for the addressing map and
/// determinism contract.
#[derive(Debug, Clone)]
pub struct ArrayDevice<D> {
    chips: Vec<D>,
    geometry: Geometry,
    local_blocks: u32,
}

impl<D: NandDevice> ArrayDevice<D> {
    /// Gangs `chips` into one array. All chips must share a geometry; their
    /// calibration profiles may differ (a heterogeneous array is legal, the
    /// array-level [`profile`](NandDevice::profile) reports chip 0's).
    ///
    /// # Panics
    ///
    /// Panics on an empty chip list or mismatched geometries — both are
    /// construction bugs, not runtime conditions.
    pub fn new(chips: Vec<D>) -> Self {
        assert!(!chips.is_empty(), "ArrayDevice requires at least one chip");
        let local = *chips[0].geometry();
        for (i, c) in chips.iter().enumerate() {
            assert!(
                *c.geometry() == local,
                "ArrayDevice chips must share a geometry (chip {i} differs)"
            );
        }
        let geometry = Geometry {
            blocks_per_chip: local.blocks_per_chip * chips.len() as u32,
            pages_per_block: local.pages_per_block,
            page_bytes: local.page_bytes,
        };
        Self { chips, geometry, local_blocks: local.blocks_per_chip }
    }

    /// The chips in address order.
    pub fn chips(&self) -> &[D] {
        &self.chips
    }

    /// Borrows chip `i` (panics out of range).
    pub fn chip(&self, i: usize) -> &D {
        &self.chips[i]
    }

    /// Mutably borrows chip `i` (panics out of range) — the escape hatch
    /// chaos tests use to kill or inspect one member of the array.
    pub fn chip_mut(&mut self, i: usize) -> &mut D {
        &mut self.chips[i]
    }

    /// Dissolves the array back into its chips.
    pub fn into_chips(self) -> Vec<D> {
        self.chips
    }

    /// Blocks per member chip (the widened geometry exposes
    /// `chips × local_blocks`).
    pub fn local_blocks(&self) -> u32 {
        self.local_blocks
    }

    /// The chip owning a global block, or `None` outside the array.
    pub fn chip_of_block(&self, b: BlockId) -> Option<usize> {
        self.geometry.contains_block(b).then(|| (b.0 / self.local_blocks) as usize)
    }

    /// Chip `i`'s own meter — per-chip attribution of the aggregate
    /// [`meter`](NandDevice::meter).
    pub fn chip_meter(&self, i: usize) -> MeterSnapshot {
        self.chips[i].meter()
    }

    /// Chip `i`'s own wear census — per-chip attribution of the aggregate
    /// [`wear_summary`](NandDevice::wear_summary).
    pub fn chip_wear_summary(&self, i: usize) -> WearSummary {
        self.chips[i].wear_summary()
    }

    /// `(chip, local block)` for a global block; out-of-range blocks route
    /// to chip 0 *untranslated* so the member chip rejects them with the
    /// original global address in the error.
    fn locate_block(&self, b: BlockId) -> (usize, BlockId) {
        if self.geometry.contains_block(b) {
            ((b.0 / self.local_blocks) as usize, BlockId(b.0 % self.local_blocks))
        } else {
            (0, b)
        }
    }

    /// `(chip, local page)` for a global page (block part translated as in
    /// [`locate_block`](Self::locate_block)).
    fn locate_page(&self, p: PageId) -> (usize, PageId) {
        let (c, lb) = self.locate_block(p.block);
        (c, PageId::new(lb, p.page))
    }

    /// Rewrites a command's address into chip-local space, returning the
    /// owning chip. Device-wide commands never reach this (the exec segment
    /// loop applies them to every chip).
    fn translate_cmd(&self, cmd: &NandCmd) -> (usize, NandCmd) {
        match cmd {
            NandCmd::EraseBlock(b) => {
                let (c, lb) = self.locate_block(*b);
                (c, NandCmd::EraseBlock(lb))
            }
            NandCmd::CycleBlock(b, n) => {
                let (c, lb) = self.locate_block(*b);
                (c, NandCmd::CycleBlock(lb, *n))
            }
            NandCmd::ProgramPage(p, data) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::ProgramPage(lp, data.clone()))
            }
            NandCmd::PartialProgram(p, mask) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::PartialProgram(lp, mask.clone()))
            }
            NandCmd::FinePartialProgram(p, mask, target) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::FinePartialProgram(lp, mask.clone(), *target))
            }
            NandCmd::ReadPage(p) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::ReadPage(lp))
            }
            NandCmd::ReadPageShifted(p, vref) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::ReadPageShifted(lp, *vref))
            }
            NandCmd::ReadPageSweep(p, vrefs) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::ReadPageSweep(lp, vrefs.clone()))
            }
            NandCmd::ReadSpare(p) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::ReadSpare(lp))
            }
            NandCmd::ProbeVoltages(p) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::ProbeVoltages(lp))
            }
            NandCmd::StressCells(p, mask, cycles) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::StressCells(lp, mask.clone(), *cycles))
            }
            NandCmd::ProgramTimeProbe(p, steps) => {
                let (c, lp) = self.locate_page(*p);
                (c, NandCmd::ProgramTimeProbe(lp, *steps))
            }
            NandCmd::MarkBad(b) => {
                let (c, lb) = self.locate_block(*b);
                (c, NandCmd::MarkBad(lb))
            }
            NandCmd::GrowBadBlock(b) => {
                let (c, lb) = self.locate_block(*b);
                (c, NandCmd::GrowBadBlock(lb))
            }
            NandCmd::DiscardBlockState(b) => {
                let (c, lb) = self.locate_block(*b);
                (c, NandCmd::DiscardBlockState(lb))
            }
            NandCmd::AgeDays(_) | NandCmd::AdvanceTimeUs(_) => {
                unreachable!("device-wide commands are handled by the segment loop")
            }
        }
    }

    /// Applies a device-wide command to every chip.
    fn apply_global(&mut self, cmd: &NandCmd) -> CmdResult {
        match cmd {
            NandCmd::AgeDays(days) => {
                for chip in &mut self.chips {
                    chip.age_days(*days);
                }
                CmdResult::Unit(Ok(()))
            }
            NandCmd::AdvanceTimeUs(us) => {
                for chip in &mut self.chips {
                    chip.advance_time_us(*us);
                }
                CmdResult::Unit(Ok(()))
            }
            other => unreachable!("{other:?} is not a device-wide command"),
        }
    }
}

impl ArrayDevice<Chip> {
    /// An N-chip array of identically profiled [`Chip`]s. Chip `i` is
    /// seeded `seed ^ (i × stride)`, so chip 0 matches a bare
    /// `Chip::new(profile, seed)` exactly and `homogeneous(profile, 1,
    /// seed)` is byte-identical to that chip.
    pub fn homogeneous(profile: ChipProfile, n: u32, seed: u64) -> Self {
        assert!(n >= 1, "ArrayDevice requires at least one chip");
        let chips = (0..n)
            .map(|i| Chip::new(profile.clone(), seed ^ u64::from(i).wrapping_mul(SEED_STRIDE)))
            .collect();
        Self::new(chips)
    }
}

/// True for commands that address the whole device rather than one block or
/// page; the exec segment loop applies these to every chip in order.
fn is_device_wide(cmd: &NandCmd) -> bool {
    matches!(cmd, NandCmd::AgeDays(_) | NandCmd::AdvanceTimeUs(_))
}

/// Rewrites chip-local addresses inside an error back into global array
/// space (`base` = the owning chip's first global block).
fn rebase_error(e: FlashError, base: u32) -> FlashError {
    if base == 0 {
        return e;
    }
    let rb = |b: BlockId| BlockId(b.0 + base);
    let rp = |p: PageId| PageId::new(BlockId(p.block.0 + base), p.page);
    match e {
        FlashError::BlockOutOfRange(b) => FlashError::BlockOutOfRange(rb(b)),
        FlashError::PageOutOfRange(p) => FlashError::PageOutOfRange(rp(p)),
        FlashError::PageAlreadyProgrammed(p) => FlashError::PageAlreadyProgrammed(rp(p)),
        FlashError::PageNotProgrammed(p) => FlashError::PageNotProgrammed(rp(p)),
        FlashError::BadBlock(b) => FlashError::BadBlock(rb(b)),
        FlashError::TransientProgramFail(p) => FlashError::TransientProgramFail(rp(p)),
        FlashError::EraseFail(b) => FlashError::EraseFail(rb(b)),
        FlashError::GrownBadBlock(b) => FlashError::GrownBadBlock(rb(b)),
        FlashError::PatternLength { .. } | FlashError::PowerLoss => e,
    }
}

/// [`rebase_error`] applied inside a [`CmdResult`].
fn rebase_result(r: CmdResult, base: u32) -> CmdResult {
    if base == 0 {
        return r;
    }
    match r {
        CmdResult::Unit(res) => CmdResult::Unit(res.map_err(|e| rebase_error(e, base))),
        CmdResult::Bits(res) => CmdResult::Bits(res.map_err(|e| rebase_error(e, base))),
        CmdResult::Sweep(res) => CmdResult::Sweep(res.map_err(|e| rebase_error(e, base))),
        CmdResult::Spare(res) => CmdResult::Spare(res.map_err(|e| rebase_error(e, base))),
        CmdResult::Levels(res) => CmdResult::Levels(res.map_err(|e| rebase_error(e, base))),
        CmdResult::Steps(res) => CmdResult::Steps(res.map_err(|e| rebase_error(e, base))),
    }
}

impl<D: NandDevice + Send> NandDevice for ArrayDevice<D> {
    fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    fn profile(&self) -> &ChipProfile {
        self.chips[0].profile()
    }

    fn seed(&self) -> u64 {
        self.chips[0].seed()
    }

    fn chip_count(&self) -> u32 {
        self.chips.len() as u32
    }

    /// The per-chip sum (see the [module docs](self) for the time
    /// semantics). Use [`ArrayDevice::chip_meter`] for attribution.
    fn meter(&self) -> MeterSnapshot {
        let mut total = self.chips[0].meter();
        for chip in &self.chips[1..] {
            total.absorb(&chip.meter());
        }
        total
    }

    fn reset_meter(&mut self) {
        for chip in &mut self.chips {
            chip.reset_meter();
        }
    }

    /// Array-level charges (retries billed by middleware or the FTL) land
    /// on chip 0, keeping the aggregate sum exact.
    fn record_op(&mut self, kind: OpKind) {
        self.chips[0].record_op(kind);
    }

    fn record_fault(&mut self, kind: FaultKind) {
        self.chips[0].record_fault(kind);
    }

    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        for chip in &mut self.chips {
            chip.install_recorder(recorder.clone());
        }
    }

    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        for chip in &mut self.chips {
            chip.install_flight_sink(sink.clone());
        }
    }

    fn advance_time_us(&mut self, us: f64) {
        for chip in &mut self.chips {
            chip.advance_time_us(us);
        }
    }

    fn set_read_noise_scale(&mut self, scale: f64) {
        for chip in &mut self.chips {
            chip.set_read_noise_scale(scale);
        }
    }

    fn block_pec(&self, b: BlockId) -> Result<u32> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].block_pec(lb).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].mark_bad(lb).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn is_bad(&self, b: BlockId) -> Result<bool> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].is_bad(lb).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].grow_bad_block(lb).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].is_grown_bad(lb).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    /// Concatenates the member chips' censuses in address order — identical
    /// to the default block walk, without N × blocks trait dispatches.
    fn wear_summary(&self) -> WearSummary {
        let mut per_block_pec = Vec::with_capacity(self.geometry.blocks_per_chip as usize);
        let mut grown_bad_blocks = 0u32;
        for chip in &self.chips {
            let w = chip.wear_summary();
            per_block_pec.extend(w.per_block_pec);
            grown_bad_blocks += w.grown_bad_blocks;
        }
        WearSummary { per_block_pec, grown_bad_blocks }
    }

    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        let (c, lp) = self.locate_page(p);
        self.chips[c].is_page_programmed(lp).map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].discard_block_state(lb).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].erase_block(lb).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].cycle_block(lb, n).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c].program_page(lp, data).map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .program_page_with_spare(lp, data, spare)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        let (c, lp) = self.locate_page(p);
        self.chips[c].read_spare(lp).map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .torn_program_page(lp, data, fraction)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .torn_partial_program(lp, mask, fraction)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        let (c, lb) = self.locate_block(b);
        self.chips[c].torn_erase_block(lb, fraction).map_err(|e| rebase_error(e, b.0 - lb.0))
    }

    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c].partial_program(lp, mask).map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .fine_partial_program(lp, mask, target)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn read_page(&mut self, p: PageId) -> Result<BitPattern> {
        let (c, lp) = self.locate_page(p);
        self.chips[c].read_page(lp).map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .read_page_shifted(lp, vref)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .read_page_shifted_into(lp, vref, out)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .read_page_sweep(lp, vrefs)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn probe_voltages(&mut self, p: PageId) -> Result<Vec<Level>> {
        let (c, lp) = self.locate_page(p);
        self.chips[c].probe_voltages(lp).map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .probe_voltages_into(lp, out)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn age_days(&mut self, days: f64) {
        for chip in &mut self.chips {
            chip.age_days(days);
        }
    }

    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .stress_cells(lp, mask, cycles)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        let (c, lp) = self.locate_page(p);
        self.chips[c]
            .program_time_probe(lp, steps)
            .map_err(|e| rebase_error(e, p.block.0 - lp.block.0))
    }

    /// Per-chip parallel fan-out: the batch is split at device-wide
    /// commands; inside each segment, commands partition by owning chip
    /// (preserving per-chip order) and run concurrently via
    /// [`stash_par::par_map`], then results scatter back to their original
    /// positions. Output is byte-identical to scalar in-order dispatch.
    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        if self.chips.len() == 1 {
            // Degenerate N=1: pure pass-through to the inner backend's own
            // (possibly planning) exec.
            return self.chips[0].exec(cmds);
        }
        let n = self.chips.len();
        let local_blocks = self.local_blocks;
        let mut out: Vec<Option<CmdResult>> = (0..cmds.len()).map(|_| None).collect();
        let mut i = 0usize;
        while i < cmds.len() {
            if is_device_wide(&cmds[i]) {
                out[i] = Some(self.apply_global(&cmds[i]));
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < cmds.len() && !is_device_wide(&cmds[j]) {
                j += 1;
            }
            // Partition the segment by owning chip, remembering where each
            // command's result belongs in the batch output.
            let mut buckets: Vec<(Vec<NandCmd>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); n];
            for (k, cmd) in cmds[i..j].iter().enumerate() {
                let (c, local) = self.translate_cmd(cmd);
                buckets[c].0.push(local);
                buckets[c].1.push(i + k);
            }
            let work: Vec<(usize, &mut D, Vec<NandCmd>)> = self
                .chips
                .iter_mut()
                .enumerate()
                .zip(buckets.iter_mut())
                .filter(|(_, (batch, _))| !batch.is_empty())
                .map(|((c, chip), (batch, _))| (c, chip, std::mem::take(batch)))
                .collect();
            let chip_results =
                stash_par::par_map(work, |_, (c, chip, batch)| (c, chip.exec(&batch)));
            for (c, results) in chip_results {
                let base = c as u32 * local_blocks;
                for (&slot, r) in buckets[c].1.iter().zip(results) {
                    out[slot] = Some(rebase_result(r, base));
                }
            }
            i = j;
        }
        out.into_iter().map(|r| r.expect("every command produced a result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SLC_READ_REF;

    fn array(n: u32) -> ArrayDevice<Chip> {
        ArrayDevice::homogeneous(ChipProfile::test_small(), n, 0xA11A7)
    }

    #[test]
    fn widened_geometry_and_addressing_map() {
        let arr = array(4);
        let local = ChipProfile::test_small().geometry.blocks_per_chip;
        assert_eq!(arr.geometry().blocks_per_chip, 4 * local);
        assert_eq!(arr.chip_count(), 4);
        assert_eq!(arr.local_blocks(), local);
        assert_eq!(arr.chip_of_block(BlockId(0)), Some(0));
        assert_eq!(arr.chip_of_block(BlockId(local)), Some(1));
        assert_eq!(arr.chip_of_block(BlockId(4 * local - 1)), Some(3));
        assert_eq!(arr.chip_of_block(BlockId(4 * local)), None);
    }

    #[test]
    fn n1_array_is_byte_identical_to_the_bare_chip() {
        let mut bare = Chip::new(ChipProfile::test_small(), 0xA11A7);
        let mut arr = array(1);
        let p = PageId::new(BlockId(1), 2);
        let data = BitPattern::zeros(bare.geometry().cells_per_page());

        bare.erase_block(p.block).unwrap();
        bare.program_page(p, &data).unwrap();
        arr.erase_block(p.block).unwrap();
        arr.program_page(p, &data).unwrap();

        assert_eq!(
            bare.read_page_shifted(p, SLC_READ_REF).unwrap(),
            arr.read_page_shifted(p, SLC_READ_REF).unwrap()
        );
        assert_eq!(bare.probe_voltages(p).unwrap(), arr.probe_voltages(p).unwrap());
        assert_eq!(bare.meter(), arr.meter());
    }

    #[test]
    fn operations_route_to_the_owning_chip_only() {
        let mut arr = array(2);
        let local = arr.local_blocks();
        let global = BlockId(local + 3); // chip 1, local block 3
        arr.cycle_block(global, 17).unwrap();
        assert_eq!(arr.block_pec(global).unwrap(), 17);
        assert_eq!(arr.chip(1).block_pec(BlockId(3)).unwrap(), 17);
        assert_eq!(arr.chip(0).block_pec(BlockId(3)).unwrap(), 0);
        // Per-chip attribution: only chip 1's meter moved.
        assert_eq!(arr.chip_meter(0), MeterSnapshot::default());
    }

    #[test]
    fn errors_surface_global_addresses() {
        let mut arr = array(2);
        let local = arr.local_blocks();
        let beyond = BlockId(2 * local + 1);
        assert_eq!(arr.erase_block(beyond), Err(FlashError::BlockOutOfRange(beyond)));

        let on_chip1 = BlockId(local + 2);
        arr.grow_bad_block(on_chip1).unwrap();
        assert_eq!(arr.erase_block(on_chip1), Err(FlashError::GrownBadBlock(on_chip1)));
        let bad_page = PageId::new(on_chip1, 0);
        let data = BitPattern::zeros(arr.geometry().cells_per_page());
        assert_eq!(arr.program_page(bad_page, &data), Err(FlashError::GrownBadBlock(on_chip1)));
    }

    #[test]
    fn exec_fans_out_and_matches_scalar_dispatch() {
        let build_cmds = |arr: &ArrayDevice<Chip>| {
            let local = arr.local_blocks();
            let cells = arr.geometry().cells_per_page();
            let mut cmds = Vec::new();
            for c in 0..arr.chips().len() as u32 {
                let b = BlockId(c * local);
                let p = PageId::new(b, 0);
                cmds.push(NandCmd::EraseBlock(b));
                cmds.push(NandCmd::ProgramPage(p, BitPattern::zeros(cells)));
                cmds.push(NandCmd::ReadPage(p));
                cmds.push(NandCmd::ProbeVoltages(p));
            }
            cmds.push(NandCmd::AgeDays(30.0)); // device-wide barrier
            for c in 0..arr.chips().len() as u32 {
                let p = PageId::new(BlockId(c * local), 0);
                cmds.push(NandCmd::ReadPageShifted(p, 90));
            }
            cmds
        };

        let mut batched = array(3);
        let cmds = build_cmds(&batched);
        let fanned = batched.exec(&cmds);

        let mut scalar = array(3);
        let seq: Vec<CmdResult> = cmds
            .iter()
            .map(|c| scalar.exec(std::slice::from_ref(c)))
            .map(|mut v| v.remove(0))
            .collect();

        assert_eq!(fanned, seq);
        assert_eq!(batched.meter(), scalar.meter());
        for i in 0..3 {
            assert_eq!(batched.chip_meter(i), scalar.chip_meter(i));
        }
        assert!(fanned.iter().all(CmdResult::is_ok));
    }

    #[test]
    fn aggregate_meter_and_wear_attribute_per_chip() {
        let mut arr = array(2);
        let local = arr.local_blocks();
        arr.cycle_block(BlockId(0), 5).unwrap();
        arr.cycle_block(BlockId(local), 9).unwrap();
        arr.grow_bad_block(BlockId(local + 1)).unwrap();

        let w = arr.wear_summary();
        assert_eq!(w.per_block_pec.len(), 2 * local as usize);
        assert_eq!(w.per_block_pec[0], 5);
        assert_eq!(w.per_block_pec[local as usize], 9);
        assert_eq!(w.grown_bad_blocks, 1);
        assert_eq!(arr.chip_wear_summary(0).grown_bad_blocks, 0);
        assert_eq!(arr.chip_wear_summary(1).grown_bad_blocks, 1);

        let m0 = arr.chip_meter(0);
        let m1 = arr.chip_meter(1);
        let mut sum = m0;
        sum.absorb(&m1);
        assert_eq!(arr.meter(), sum);
    }

    #[test]
    fn device_wide_commands_hit_every_chip() {
        let mut arr = array(3);
        arr.exec(&[NandCmd::AdvanceTimeUs(40.0)]);
        for i in 0..3 {
            assert!((arr.chip_meter(i).wait_time_us - 40.0).abs() < 1e-9);
        }
        // Aggregate bills the wait once per chip (documented semantics).
        assert!((arr.meter().wait_time_us - 120.0).abs() < 1e-9);
    }
}
