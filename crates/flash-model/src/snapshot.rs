//! Device-state checkpointing.
//!
//! [`DeviceState`] is the serialization contract behind
//! [`SnapshotDevice`](crate::SnapshotDevice): a device (or middleware
//! wrapper) writes every word of mutable simulation state — RNG streams
//! included — into a [`StateWriter`] and can restore itself from a
//! [`StateReader`]. The codec is a dependency-free little-endian binary
//! format; floats are stored as raw IEEE bits so a restored chip replays
//! the exact same voltage stream it would have produced uninterrupted.
//!
//! Configuration (the [`ChipProfile`](crate::ChipProfile), an installed
//! [`FaultPlan`](crate::FaultPlan), a recorder) is deliberately *not*
//! serialized: a checkpoint is restored into a device constructed with the
//! same configuration, the way model weights are loaded into a model built
//! from the same hyperparameters. Restore validates the identity anchors it
//! does store (chip seed, block count, cell counts) and fails loudly on
//! mismatch instead of resuming a subtly different device.

use std::fmt;

/// Error restoring a device snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The byte stream ended before the state was fully read.
    Truncated,
    /// The byte stream is structurally invalid (bad magic, bad tag).
    Corrupt(&'static str),
    /// The snapshot belongs to a differently-configured device.
    Mismatch(String),
    /// Filesystem error reading or writing the checkpoint file.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Mismatch(what) => write!(f, "snapshot mismatch: {what}"),
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A device whose full mutable state can be serialized and restored.
///
/// Middleware wrappers implement this by appending their own state after
/// forwarding to the wrapped device, so a whole decorator stack
/// checkpoints as one byte stream.
pub trait DeviceState {
    /// Appends every word of mutable state to `w`.
    fn save_state(&self, w: &mut StateWriter);

    /// Restores state previously written by [`save_state`](Self::save_state)
    /// on an identically-configured device.
    ///
    /// # Errors
    ///
    /// Fails on a truncated/corrupt stream or a configuration mismatch; the
    /// device may be partially overwritten afterwards and should be
    /// discarded.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError>;
}

/// Append-only little-endian binary writer for device state.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize as a u64.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an f32 as its raw IEEE bits.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an f64 as its raw IEEE bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over bytes produced by a [`StateWriter`].
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool out of range")),
        }
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a length written by [`StateWriter::put_len`].
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt("length overflows usize"))
    }

    /// Reads an f32 from raw IEEE bits.
    pub fn get_f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an f64 from raw IEEE bits.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_scalar_types() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_len(1234);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_len().unwrap(), 1234);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_bytes(3).unwrap(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed() {
        let mut r = StateReader::new(&[1, 2]);
        assert!(matches!(r.get_u64(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn bool_rejects_junk() {
        let mut r = StateReader::new(&[3]);
        assert!(matches!(r.get_bool(), Err(SnapshotError::Corrupt(_))));
    }
}
