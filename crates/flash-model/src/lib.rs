//! # stash-flash — a voltage-level NAND flash simulator
//!
//! This crate is the hardware substrate for the *Stash in a Flash* (FAST '18)
//! reproduction. The paper's evaluation drives real 1x-nm MLC NAND packages
//! through a commercial flash tester using vendor commands that are only
//! available under NDA: per-cell voltage probing, partial programming, and
//! reference-threshold-shifted reads. This crate provides the same command
//! set against a simulated chip whose voltage statistics are calibrated to
//! the paper's measurements (Figures 2, 3, 5 and Section 4):
//!
//! * normalized voltage levels in `0..=255`, SLC read reference at level 127;
//! * erased (logical `1`) cells mostly negatively charged (measured as 0),
//!   with a positive tail created by program interference from neighboring
//!   wordlines — roughly 1% of erased cells naturally sit above the paper's
//!   hidden threshold `Vth = 34`;
//! * programmed (logical `0`) cells concentrated in `[120, 210]`;
//! * distributions shift right and widen as program/erase cycles (PEC)
//!   accumulate; bit-error rates grow with wear and with retention time;
//! * per-chip, per-block and per-page manufacturing variation, programming
//!   noise, erratic (defective) cells, and partial-program imprecision.
//!
//! The top-level type is [`Chip`]. A typical session mirrors a tester script:
//!
//! ```
//! use stash_flash::{Chip, ChipProfile, BitPattern, PageId, BlockId};
//!
//! # fn main() -> Result<(), stash_flash::FlashError> {
//! let mut chip = Chip::new(ChipProfile::test_small(), 0xC0FFEE);
//! let block = BlockId(3);
//! let page = PageId::new(block, 0);
//!
//! chip.erase_block(block)?;
//! let data = BitPattern::random_half(&mut rand::thread_rng(),
//!                                    chip.geometry().cells_per_page());
//! chip.program_page(page, &data)?;
//!
//! // Standard read: compares each cell against the SLC reference voltage.
//! let back = chip.read_page(page)?;
//! assert!(back.hamming_distance(&data) < data.len() / 1000);
//!
//! // Vendor characterization command: probe per-cell voltage levels.
//! let mut levels = Vec::new();
//! chip.probe_voltages_into(page, &mut levels)?;
//! assert_eq!(levels.len(), chip.geometry().cells_per_page());
//! # Ok(())
//! # }
//! ```
//!
//! All randomness is deterministic given the chip seed, so experiments are
//! reproducible; distinct seeds model distinct physical chip samples.

pub mod array;
pub mod ber;
pub mod bits;
pub mod block;
pub mod chip;
pub mod crc;
pub mod device;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod histogram;
pub mod latent;
pub mod meter;
pub mod middleware;
pub mod mlc;
pub mod noise;
pub mod profile;
pub mod recorder;
pub mod rng;
pub mod snapshot;
pub mod tlc;

pub use array::ArrayDevice;
pub use ber::BitErrorStats;
pub use bits::BitPattern;
pub use chip::Chip;
pub use crc::crc32;
pub use device::{CmdResult, NandCmd, NandDevice, WearSummary};
pub use error::FlashError;
pub use fault::{FaultPlan, NoiseSpike, PowerCut, StuckCell};
pub use geometry::{BlockId, Geometry, PageId};
pub use histogram::Histogram;
pub use meter::{FaultKind, Meter, MeterSnapshot, OpKind};
pub use middleware::{FaultDevice, FlightDevice, PowerCutDevice, SnapshotDevice, TraceDevice};
pub use profile::{ChipProfile, TimingModel};
pub use recorder::{
    CountingRecorder, FlightOp, FlightSink, Recorder, SharedFlightSink, SharedRecorder,
};
pub use rng::ChipRng;
pub use snapshot::{DeviceState, SnapshotError, StateReader, StateWriter};

/// A measured, normalized voltage level, as reported by the vendor
/// characterization command (`0..=255`, see paper §4 footnote 1: negative
/// voltages are not measurable and read as 0).
pub type Level = u8;

/// The SLC read reference voltage: cells measured below this level read as
/// logical `1` (non-programmed), cells at or above it as logical `0`
/// (paper §5.3: "any voltage level less than about 127 is considered a
/// public '1'").
pub const SLC_READ_REF: Level = 127;

/// Result alias for fallible flash operations.
pub type Result<T> = std::result::Result<T, FlashError>;
