//! Gaussian and mixture sampling for the voltage model.
//!
//! `rand_distr` is deliberately not a dependency (the approved dependency
//! list is minimal); the Box–Muller transform below is all the simulator
//! needs, and caching the second variate keeps it fast enough to program
//! full 18 KB pages (≈144 K samples) in a few milliseconds.

use rand::Rng;

/// A Box–Muller standard-normal sampler that caches the spare variate.
#[derive(Debug, Clone, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Gaussian { spare: None }
    }

    /// Draws one standard-normal variate using `rng` for uniforms.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let (first, second) = Self::pair(rng);
        self.spare = Some(second);
        first
    }

    /// One Box–Muller pair: two uniforms -> two independent normals.
    /// `sin_cos` evaluates the same libm kernels as separate `sin`/`cos`
    /// calls, so the pair is bit-identical to the historical two-call form
    /// (pinned by `fill_matches_sequential_samples`).
    #[inline]
    fn pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
        let u1: f64 = loop {
            let u = rng.gen::<f64>();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let (sin, cos) = theta.sin_cos();
        (r * cos, r * sin)
    }

    /// Draws a normal variate with the given mean and standard deviation.
    #[inline]
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample(rng)
    }

    /// Fills `out` with standard-normal variates, drawing them in exactly
    /// the order a loop of [`sample`](Self::sample) calls would: a cached
    /// spare goes first, pairs follow, and an unconsumed second variate is
    /// cached for the next draw. This is the bulk kernel behind the chip's
    /// batched read/program paths — one tight loop instead of a per-cell
    /// branch on the spare cache.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        let mut i = 0usize;
        if i < out.len() {
            if let Some(z) = self.spare.take() {
                out[i] = z;
                i += 1;
            }
        }
        while i < out.len() {
            let (first, second) = Self::pair(rng);
            out[i] = first;
            i += 1;
            if i < out.len() {
                out[i] = second;
                i += 1;
            } else {
                self.spare = Some(second);
            }
        }
    }

    /// The cached spare variate, if any (snapshot support: the cache is part
    /// of the sampler's stream position).
    pub(crate) fn spare(&self) -> Option<f64> {
        self.spare
    }

    /// Restores a cached spare variate captured by [`spare`](Self::spare).
    pub(crate) fn set_spare(&mut self, spare: Option<f64>) {
        self.spare = spare;
    }
}

/// Standard normal cumulative distribution function (Abramowitz–Stegun
/// 7.1.26-based erf approximation, max error ≈ 1.5e-7). Used by calibration
/// tests and the analytic throughput model, not in the sampling hot path.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - y * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn gaussian_mean_and_variance() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut g = Gaussian::new();
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let z = g.sample(&mut rng);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gaussian_tail_fractions() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut g = Gaussian::new();
        let n = 400_000;
        let above2 = (0..n).filter(|_| g.sample(&mut rng) > 2.0).count() as f64 / n as f64;
        // P(Z > 2) = 2.275%
        assert!((0.019..0.027).contains(&above2), "tail {above2}");
    }

    #[test]
    fn sample_with_scales() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut g = Gaussian::new();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.sample_with(&mut rng, 10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fill_matches_sequential_samples() {
        // Every chunking of the stream must reproduce the scalar draw
        // order bit-for-bit, including the spare cache carried across
        // chunk boundaries (odd lengths leave a spare behind).
        for chunks in [vec![1usize; 9], vec![2, 3, 4], vec![7, 1, 5], vec![9], vec![0, 3, 0, 6]] {
            let total: usize = chunks.iter().sum();
            let mut rng_a = SmallRng::seed_from_u64(99);
            let mut a = Gaussian::new();
            let scalar: Vec<f64> = (0..total).map(|_| a.sample(&mut rng_a)).collect();

            let mut rng_b = SmallRng::seed_from_u64(99);
            let mut b = Gaussian::new();
            let mut bulk = Vec::new();
            for n in chunks {
                let mut buf = vec![0.0; n];
                b.fill(&mut rng_b, &mut buf);
                bulk.extend(buf);
            }
            assert_eq!(
                scalar.iter().map(|z| z.to_bits()).collect::<Vec<_>>(),
                bulk.iter().map(|z| z.to_bits()).collect::<Vec<_>>()
            );
            // The stream positions agree too: the next draw matches.
            assert_eq!(a.sample(&mut rng_a).to_bits(), b.sample(&mut rng_b).to_bits());
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 3e-4);
        assert!((normal_cdf(4.0) - 0.999_968_3).abs() < 1e-5);
        assert!(normal_cdf(-8.0) < 1e-10);
    }
}
