//! Error type for flash operations.

use crate::geometry::{BlockId, PageId};
use std::fmt;

/// Errors returned by [`Chip`](crate::Chip) operations.
///
/// These mirror the failure modes a real flash tester reports: addressing
/// outside the package geometry, violating the program-once-per-erase
/// constraint, operating on a block marked bad, or handing a data pattern
/// whose length does not match the page size.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// The block index is outside the chip geometry.
    BlockOutOfRange(BlockId),
    /// The page index is outside the block.
    PageOutOfRange(PageId),
    /// A full program was issued to a page that was already programmed since
    /// the last erase (flash forbids in-place updates; see paper §3).
    PageAlreadyProgrammed(PageId),
    /// A partial program or stress operation was issued to a page that has
    /// not been programmed since the last erase; the hiding pass runs on top
    /// of public data.
    PageNotProgrammed(PageId),
    /// The operation targeted a block marked bad.
    BadBlock(BlockId),
    /// A supplied bit pattern does not match the page size.
    PatternLength {
        /// Cells per page required by the geometry.
        expected: usize,
        /// Bits actually supplied.
        got: usize,
    },
    /// A program or partial-program operation failed transiently (injected
    /// fault). The page is unchanged; the operation may be retried.
    TransientProgramFail(PageId),
    /// A block erase failed transiently (injected fault). The block is
    /// unchanged; the operation may be retried.
    EraseFail(BlockId),
    /// The operation targeted a block that wore out at runtime (a *grown*
    /// bad block). Unlike factory [`BadBlock`](Self::BadBlock)s, grown bad
    /// blocks still read, so surviving data can be migrated off them.
    GrownBadBlock(BlockId),
    /// The device lost power: either this operation was interrupted by a
    /// scheduled supply cut (possibly leaving a *torn* result on the
    /// medium), or the device is latched off after an earlier cut and
    /// rejects all commands until
    /// [`PowerCutDevice::reboot`](crate::PowerCutDevice::reboot).
    PowerLoss,
}

impl FlashError {
    /// Stable machine-readable code for this error, used by the flight
    /// recorder's post-mortem artifacts. Unlike [`Display`](fmt::Display)
    /// output these carry no addresses, so entries stay `Copy` and dump
    /// files diff cleanly across runs.
    pub fn code(&self) -> &'static str {
        match self {
            FlashError::BlockOutOfRange(_) => "block-out-of-range",
            FlashError::PageOutOfRange(_) => "page-out-of-range",
            FlashError::PageAlreadyProgrammed(_) => "page-already-programmed",
            FlashError::PageNotProgrammed(_) => "page-not-programmed",
            FlashError::BadBlock(_) => "bad-block",
            FlashError::PatternLength { .. } => "pattern-length",
            FlashError::TransientProgramFail(_) => "transient-program-fail",
            FlashError::EraseFail(_) => "erase-fail",
            FlashError::GrownBadBlock(_) => "grown-bad-block",
            FlashError::PowerLoss => "power-loss",
        }
    }
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::BlockOutOfRange(b) => write!(f, "block {b} outside chip geometry"),
            FlashError::PageOutOfRange(p) => write!(f, "page {p} outside block"),
            FlashError::PageAlreadyProgrammed(p) => {
                write!(f, "page {p} already programmed since last erase")
            }
            FlashError::PageNotProgrammed(p) => {
                write!(f, "page {p} not programmed since last erase")
            }
            FlashError::BadBlock(b) => write!(f, "block {b} is marked bad"),
            FlashError::PatternLength { expected, got } => {
                write!(f, "bit pattern has {got} bits, page holds {expected} cells")
            }
            FlashError::TransientProgramFail(p) => {
                write!(f, "program of page {p} failed transiently (retryable)")
            }
            FlashError::EraseFail(b) => {
                write!(f, "erase of block {b} failed transiently (retryable)")
            }
            FlashError::GrownBadBlock(b) => {
                write!(f, "block {b} has grown bad (read-only)")
            }
            FlashError::PowerLoss => {
                write!(f, "power lost; device is off until reboot")
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            FlashError::BlockOutOfRange(BlockId(9)),
            FlashError::PageOutOfRange(PageId::new(BlockId(1), 2)),
            FlashError::PageAlreadyProgrammed(PageId::new(BlockId(0), 0)),
            FlashError::PageNotProgrammed(PageId::new(BlockId(0), 1)),
            FlashError::BadBlock(BlockId(4)),
            FlashError::PatternLength { expected: 8, got: 4 },
            FlashError::TransientProgramFail(PageId::new(BlockId(2), 5)),
            FlashError::EraseFail(BlockId(6)),
            FlashError::GrownBadBlock(BlockId(7)),
            FlashError::PowerLoss,
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(seen.insert(s.clone()), "duplicate message: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<FlashError>();
    }
}
