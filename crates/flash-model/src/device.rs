//! The NAND command surface as a trait, plus batched command dispatch.
//!
//! [`NandDevice`] captures the tester-level command set of [`Chip`] —
//! erase/program/partial-program, plain and threshold-shifted reads, the
//! voltage probe, preconditioning and aging, bad-block management, and the
//! meter/time accessors — so the layers above (the VT-HI hider, PT-HI, the
//! FTL, the hidden volume, recovery/scrub) can be written once and run
//! against any backend: a bare [`Chip`], a chip wrapped in fault-injection
//! or tracing middleware ([`FaultDevice`](crate::FaultDevice),
//! [`TraceDevice`](crate::TraceDevice)), a checkpointable device
//! ([`SnapshotDevice`](crate::SnapshotDevice)), or a future non-NAND medium.
//!
//! [`NandDevice::exec`] additionally offers a batched entry point: a slice
//! of [`NandCmd`]s is dispatched in order and each command's outcome comes
//! back as a [`CmdResult`], the shape a command queue between a host and a
//! device controller would have.
//!
//! Determinism contract: a device wrapper must forward commands without
//! consuming the wrapped device's RNG streams or reordering its operations;
//! decorating a chip with no-op middleware yields byte-identical voltages,
//! reads and meter snapshots (tested in `tests/backend_parity.rs`).

use crate::bits::BitPattern;
use crate::chip::Chip;
use crate::geometry::{BlockId, Geometry, PageId};
use crate::meter::{FaultKind, MeterSnapshot, OpKind};
use crate::profile::ChipProfile;
use crate::recorder::{SharedFlightSink, SharedRecorder};
use crate::{Level, Result, SLC_READ_REF};

/// One queued device command for [`NandDevice::exec`].
///
/// Each variant mirrors a [`NandDevice`] method; the batched form exists so
/// hosts can hand a device a command queue and so middleware can observe or
/// reorder traffic at a single choke point.
#[derive(Debug, Clone, PartialEq)]
pub enum NandCmd {
    /// [`NandDevice::erase_block`].
    EraseBlock(BlockId),
    /// [`NandDevice::cycle_block`].
    CycleBlock(BlockId, u32),
    /// [`NandDevice::program_page`].
    ProgramPage(PageId, BitPattern),
    /// [`NandDevice::partial_program`].
    PartialProgram(PageId, BitPattern),
    /// [`NandDevice::fine_partial_program`].
    FinePartialProgram(PageId, BitPattern, Level),
    /// [`NandDevice::read_page`].
    ReadPage(PageId),
    /// [`NandDevice::read_page_shifted`].
    ReadPageShifted(PageId, Level),
    /// [`NandDevice::read_page_sweep`]: one fused read of the same page at
    /// each reference voltage, byte-identical to (and billed as) the
    /// equivalent sequence of [`NandDevice::read_page_shifted`] calls.
    ReadPageSweep(PageId, Vec<Level>),
    /// [`NandDevice::read_spare`].
    ReadSpare(PageId),
    /// [`NandDevice::probe_voltages`].
    ProbeVoltages(PageId),
    /// [`NandDevice::stress_cells`].
    StressCells(PageId, BitPattern, u32),
    /// [`NandDevice::program_time_probe`].
    ProgramTimeProbe(PageId, u16),
    /// [`NandDevice::age_days`].
    AgeDays(f64),
    /// [`NandDevice::advance_time_us`].
    AdvanceTimeUs(f64),
    /// [`NandDevice::mark_bad`].
    MarkBad(BlockId),
    /// [`NandDevice::grow_bad_block`].
    GrowBadBlock(BlockId),
    /// [`NandDevice::discard_block_state`].
    DiscardBlockState(BlockId),
}

/// The outcome of one [`NandCmd`], shaped by the command's return type.
#[derive(Debug, Clone, PartialEq)]
pub enum CmdResult {
    /// Outcome of a command returning no data.
    Unit(Result<()>),
    /// Outcome of a page read.
    Bits(Result<BitPattern>),
    /// Outcome of a multi-`vref` sweep read, one pattern per reference.
    Sweep(Result<Vec<BitPattern>>),
    /// Outcome of a spare-area read.
    Spare(Result<Option<Vec<u8>>>),
    /// Outcome of a voltage probe.
    Levels(Result<Vec<Level>>),
    /// Outcome of a program-time probe.
    Steps(Result<Vec<u16>>),
}

impl CmdResult {
    /// Whether the command succeeded.
    pub fn is_ok(&self) -> bool {
        match self {
            CmdResult::Unit(r) => r.is_ok(),
            CmdResult::Bits(r) => r.is_ok(),
            CmdResult::Sweep(r) => r.is_ok(),
            CmdResult::Spare(r) => r.is_ok(),
            CmdResult::Levels(r) => r.is_ok(),
            CmdResult::Steps(r) => r.is_ok(),
        }
    }
}

/// Dispatches one command through the trait surface — the scalar kernel
/// both the default [`NandDevice::exec`] loop and middleware that must
/// observe each command individually are built from.
pub(crate) fn dispatch_one<D: NandDevice + ?Sized>(dev: &mut D, cmd: &NandCmd) -> CmdResult {
    match cmd {
        NandCmd::EraseBlock(b) => CmdResult::Unit(dev.erase_block(*b)),
        NandCmd::CycleBlock(b, n) => CmdResult::Unit(dev.cycle_block(*b, *n)),
        NandCmd::ProgramPage(p, data) => CmdResult::Unit(dev.program_page(*p, data)),
        NandCmd::PartialProgram(p, mask) => CmdResult::Unit(dev.partial_program(*p, mask)),
        NandCmd::FinePartialProgram(p, mask, target) => {
            CmdResult::Unit(dev.fine_partial_program(*p, mask, *target))
        }
        NandCmd::ReadPage(p) => CmdResult::Bits(dev.read_page(*p)),
        NandCmd::ReadPageShifted(p, vref) => CmdResult::Bits(dev.read_page_shifted(*p, *vref)),
        NandCmd::ReadPageSweep(p, vrefs) => CmdResult::Sweep(dev.read_page_sweep(*p, vrefs)),
        NandCmd::ReadSpare(p) => CmdResult::Spare(dev.read_spare(*p)),
        NandCmd::ProbeVoltages(p) => CmdResult::Levels(dev.probe_voltages(*p)),
        NandCmd::StressCells(p, mask, cycles) => {
            CmdResult::Unit(dev.stress_cells(*p, mask, *cycles))
        }
        NandCmd::ProgramTimeProbe(p, steps) => CmdResult::Steps(dev.program_time_probe(*p, *steps)),
        NandCmd::AgeDays(days) => {
            dev.age_days(*days);
            CmdResult::Unit(Ok(()))
        }
        NandCmd::AdvanceTimeUs(us) => {
            dev.advance_time_us(*us);
            CmdResult::Unit(Ok(()))
        }
        NandCmd::MarkBad(b) => CmdResult::Unit(dev.mark_bad(*b)),
        NandCmd::GrowBadBlock(b) => CmdResult::Unit(dev.grow_bad_block(*b)),
        NandCmd::DiscardBlockState(b) => CmdResult::Unit(dev.discard_block_state(*b)),
    }
}

/// The page a command addresses if it belongs to the read class
/// ([`Chip`]'s planning `exec` fuses maximal same-page runs of these).
pub(crate) fn read_run_page(cmd: &NandCmd) -> Option<PageId> {
    match cmd {
        NandCmd::ReadPage(p)
        | NandCmd::ReadPageShifted(p, _)
        | NandCmd::ReadPageSweep(p, _)
        | NandCmd::ProbeVoltages(p) => Some(*p),
        _ => None,
    }
}

/// A point-in-time wear census of every block on a device, collected by
/// [`NandDevice::wear_summary`]. Health telemetry turns this into the
/// per-block wear histogram and hottest-block gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WearSummary {
    /// Program/erase cycles per block, indexed by block id. Blocks whose
    /// PEC cannot be read (factory-bad) report 0.
    pub per_block_pec: Vec<u32>,
    /// Number of blocks that have grown bad at runtime.
    pub grown_bad_blocks: u32,
}

impl WearSummary {
    /// The most-worn block as `(block index, PEC)`, or `None` on an empty
    /// device. Ties resolve to the lowest block id.
    pub fn hottest(&self) -> Option<(usize, u32)> {
        self.per_block_pec
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, &p)| (i, p))
    }

    /// Mean PEC across all blocks (0 on an empty device).
    pub fn mean_pec(&self) -> f64 {
        if self.per_block_pec.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.per_block_pec.iter().map(|&p| u64::from(p)).sum();
        sum as f64 / self.per_block_pec.len() as f64
    }
}

/// The chip command surface: what a tester (or controller) can ask a NAND
/// device to do. [`Chip`] is the reference backend; middleware wrappers
/// implement the trait by decorating another implementation.
///
/// Methods mirror the inherent [`Chip`] API one-for-one — same names, same
/// signatures, same error types — so code written against `&mut Chip`
/// becomes generic by swapping the bound, not by rewriting call sites.
pub trait NandDevice {
    /// The package geometry.
    fn geometry(&self) -> &Geometry;

    /// The calibration profile.
    fn profile(&self) -> &ChipProfile;

    /// The sample seed.
    fn seed(&self) -> u64;

    /// Number of independently addressed chips behind this device. A bare
    /// [`Chip`] is 1 (the default); an [`ArrayDevice`](crate::ArrayDevice)
    /// reports its member count, and middleware must forward this so the
    /// layers above see the array through any wrapper stack.
    fn chip_count(&self) -> u32 {
        1
    }

    /// Cumulative operation counts, simulated device time and energy.
    fn meter(&self) -> MeterSnapshot;

    /// Zeroes the operation meter (e.g. after preconditioning).
    fn reset_meter(&mut self);

    /// Bills one operation to the device meter (and through any tracing
    /// middleware in the stack). Middleware uses this to account failed
    /// attempts that never reach the underlying physics.
    fn record_op(&mut self, kind: OpKind);

    /// Records one fault event on the device meter (and through any tracing
    /// middleware in the stack).
    fn record_fault(&mut self, kind: FaultKind);

    /// Installs (or, with `None`, removes) an event recorder somewhere in
    /// the device stack. The default is a no-op: a bare device has no
    /// tracing hook, and a [`TraceDevice`](crate::TraceDevice) anywhere in a
    /// middleware stack overrides it.
    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        let _ = recorder;
    }

    /// Installs (or, with `None`, removes) a flight-recorder sink somewhere
    /// in the device stack. The default is a no-op: a bare device has no
    /// flight hook, and a [`FlightDevice`](crate::FlightDevice) anywhere in
    /// a middleware stack overrides it.
    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        let _ = sink;
    }

    /// Advances simulated wall-clock time without issuing an operation
    /// (retry backoff); accounted separately in the meter's `wait_time_us`.
    fn advance_time_us(&mut self, us: f64);

    /// Scales the read-noise sigma applied by subsequent reads and probes
    /// (`1.0` = calibrated noise). This is the hook fault middleware uses to
    /// apply noise-spike windows without owning the read path.
    fn set_read_noise_scale(&mut self, scale: f64);

    /// Program/erase cycles endured by a block.
    ///
    /// # Errors
    ///
    /// Fails on an invalid block address.
    fn block_pec(&self, b: BlockId) -> Result<u32>;

    /// Marks a block factory-bad; subsequent operations on it fail.
    ///
    /// # Errors
    ///
    /// Fails on an invalid block address.
    fn mark_bad(&mut self, b: BlockId) -> Result<()>;

    /// Whether a block is marked factory-bad.
    ///
    /// # Errors
    ///
    /// Fails on an invalid block address.
    fn is_bad(&self, b: BlockId) -> Result<bool>;

    /// Marks a block as grown bad: writes fail, reads still work.
    ///
    /// # Errors
    ///
    /// Fails on an invalid block address.
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()>;

    /// Whether a block has grown bad at runtime.
    ///
    /// # Errors
    ///
    /// Fails on an invalid block address.
    fn is_grown_bad(&self, b: BlockId) -> Result<bool>;

    /// Censuses wear across the whole device: per-block PEC plus the
    /// grown-bad count. The default implementation walks every block with
    /// [`block_pec`](Self::block_pec)/[`is_grown_bad`](Self::is_grown_bad),
    /// so it propagates unchanged through middleware wrappers; blocks whose
    /// PEC cannot be read (factory-bad) report 0. This is an unmetered
    /// management query, like the accessors it is built from.
    fn wear_summary(&self) -> WearSummary {
        let blocks = self.geometry().blocks_per_chip;
        let mut per_block_pec = Vec::with_capacity(blocks as usize);
        let mut grown_bad_blocks = 0u32;
        for b in 0..blocks {
            let id = BlockId(b);
            per_block_pec.push(self.block_pec(id).unwrap_or(0));
            if self.is_grown_bad(id).unwrap_or(false) {
                grown_bad_blocks += 1;
            }
        }
        WearSummary { per_block_pec, grown_bad_blocks }
    }

    /// Whether a page has been programmed since its block's last erase.
    ///
    /// # Errors
    ///
    /// Fails on an invalid page address.
    fn is_page_programmed(&self, p: PageId) -> Result<bool>;

    /// Frees the bulky per-cell state of a block, keeping wear and identity.
    ///
    /// # Errors
    ///
    /// Fails on an invalid block address.
    fn discard_block_state(&mut self, b: BlockId) -> Result<()>;

    /// Erases a block.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, or injected erase faults.
    fn erase_block(&mut self, b: BlockId) -> Result<()>;

    /// Applies `n` unmetered program/erase cycles of wear (preconditioning).
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()>;

    /// Programs a page with a data pattern (bit `0` charges the cell).
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, a
    /// page already programmed since its last erase, or injected faults.
    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()>;

    /// Programs a page and atomically deposits controller metadata in its
    /// out-of-band spare area. The default discards the spare (a device
    /// without an OOB region); [`Chip`] stores it so mount-time recovery
    /// can replay it.
    ///
    /// # Errors
    ///
    /// Fails exactly like [`program_page`](Self::program_page).
    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        let _ = spare;
        self.program_page(p, data)
    }

    /// Reads a page's out-of-band spare area (`None` = never written since
    /// the last erase, or the device has no OOB region). Spare bytes travel
    /// through controller-grade ECC and are modeled noise-free.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        let _ = p;
        Ok(None)
    }

    /// A page program interrupted `fraction` of the way through: only the
    /// leading cells of the pattern receive charge, the rest stay erased,
    /// and no spare metadata lands. The default models this as programming
    /// a prefix-masked pattern.
    ///
    /// # Errors
    ///
    /// Fails like [`program_page`](Self::program_page).
    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        let n = data.len();
        let keep = (fraction.clamp(0.0, 1.0) * n as f64).floor() as usize;
        let torn =
            BitPattern::from_bits(n, (0..n).map(|i| if i < keep { data.get(i) } else { true }));
        self.program_page(p, &torn)
    }

    /// A partial-program pulse train stopped early: only the leading
    /// `fraction` of the masked cells receive their nudge. The default
    /// models this as a PP step with a truncated mask.
    ///
    /// # Errors
    ///
    /// Fails like [`partial_program`](Self::partial_program).
    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        let total = mask.count_ones();
        let keep = (fraction.clamp(0.0, 1.0) * total as f64).floor() as usize;
        let mut kept = 0usize;
        let torn = BitPattern::from_bits(
            mask.len(),
            (0..mask.len()).map(|i| {
                let hit = mask.get(i) && kept < keep;
                if hit {
                    kept += 1;
                }
                hit
            }),
        );
        self.partial_program(p, &torn)
    }

    /// A block erase interrupted `fraction` of the way through its
    /// discharge. The default falls back to a full erase; [`Chip`] blends
    /// each cell between its old voltage and a fresh erased draw, leaving
    /// the block in a state a controller must re-erase before reuse.
    ///
    /// # Errors
    ///
    /// Fails like [`erase_block`](Self::erase_block).
    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        let _ = fraction;
        self.erase_block(b)
    }

    /// Issues one partial-program step to the masked cells of a page.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, a
    /// page not yet programmed, or injected faults.
    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()>;

    /// Controller-grade fine partial programming toward a voltage target.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, a
    /// page not yet programmed, or injected faults.
    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()>;

    /// Standard page read against the SLC reference voltage.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    fn read_page(&mut self, p: PageId) -> Result<BitPattern> {
        self.read_page_shifted(p, SLC_READ_REF)
    }

    /// Page read with a shifted reference voltage (the retention-management
    /// vendor command VT-HI decodes with).
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern>;

    /// [`read_page_shifted`](Self::read_page_shifted) into a caller-owned
    /// pattern; `out` is resized and refilled, so a decode loop reuses one
    /// allocation per page. The default allocates through
    /// `read_page_shifted`; [`Chip`] refills `out`'s buffer in place.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks (leaving `out` empty).
    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        match self.read_page_shifted(p, vref) {
            Ok(bits) => {
                *out = bits;
                Ok(())
            }
            Err(e) => {
                *out = BitPattern::zeros(0);
                Err(e)
            }
        }
    }

    /// Fused multi-`vref` read: reads the same page once per reference
    /// voltage, returning one pattern per `vref`. Results, RNG consumption
    /// and metering are identical to the equivalent sequence of
    /// [`read_page_shifted`](Self::read_page_shifted) calls — the default
    /// *is* that sequence; [`Chip`] hoists the per-page work out of the
    /// loop.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        vrefs.iter().map(|&v| self.read_page_shifted(p, v)).collect()
    }

    /// Per-cell voltage probe (the NDA characterization command).
    ///
    /// Allocating convenience wrapper over
    /// [`probe_voltages_into`](Self::probe_voltages_into) — prefer the
    /// buffer-reuse form in loops.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    #[doc(hidden)]
    fn probe_voltages(&mut self, p: PageId) -> Result<Vec<Level>> {
        let mut out = Vec::new();
        self.probe_voltages_into(p, &mut out)?;
        Ok(out)
    }

    /// [`probe_voltages`](Self::probe_voltages) into a caller-owned buffer;
    /// `out` is cleared and refilled.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks (leaving `out` cleared).
    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()>;

    /// Advances retention time for the whole device.
    fn age_days(&mut self, days: f64);

    /// PT-HI substrate: stress-programs the masked cells, permanently
    /// shifting their program speed. Destroys the page contents.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, or pattern-length mismatch.
    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()>;

    /// PT-HI substrate: reports, per cell, the fine-program step at which it
    /// crossed into the programmed state. Destroys the page contents.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>>;

    /// Dispatches a batch of commands in order, collecting each outcome.
    /// A failed command does not stop the batch — the queue semantics a
    /// controller would implement; callers that need all-or-nothing check
    /// [`CmdResult::is_ok`] per entry.
    ///
    /// Backends may plan the batch ([`Chip`] fuses same-page read runs)
    /// but must keep every output, RNG draw and meter charge identical to
    /// sequential one-command-at-a-time dispatch.
    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        cmds.iter().map(|cmd| dispatch_one(self, cmd)).collect()
    }
}

/// A mutable reference to a device is itself a device, so `Hider::new(&mut
/// chip, ...)`-style borrowing call sites keep working under the generic
/// bound.
impl<D: NandDevice + ?Sized> NandDevice for &mut D {
    fn geometry(&self) -> &Geometry {
        (**self).geometry()
    }
    fn profile(&self) -> &ChipProfile {
        (**self).profile()
    }
    fn seed(&self) -> u64 {
        (**self).seed()
    }
    fn chip_count(&self) -> u32 {
        (**self).chip_count()
    }
    fn meter(&self) -> MeterSnapshot {
        (**self).meter()
    }
    fn reset_meter(&mut self) {
        (**self).reset_meter();
    }
    fn record_op(&mut self, kind: OpKind) {
        (**self).record_op(kind);
    }
    fn record_fault(&mut self, kind: FaultKind) {
        (**self).record_fault(kind);
    }
    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        (**self).install_recorder(recorder);
    }
    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        (**self).install_flight_sink(sink);
    }
    fn advance_time_us(&mut self, us: f64) {
        (**self).advance_time_us(us);
    }
    fn set_read_noise_scale(&mut self, scale: f64) {
        (**self).set_read_noise_scale(scale);
    }
    fn block_pec(&self, b: BlockId) -> Result<u32> {
        (**self).block_pec(b)
    }
    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        (**self).mark_bad(b)
    }
    fn is_bad(&self, b: BlockId) -> Result<bool> {
        (**self).is_bad(b)
    }
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        (**self).grow_bad_block(b)
    }
    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        (**self).is_grown_bad(b)
    }
    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        (**self).is_page_programmed(p)
    }
    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        (**self).discard_block_state(b)
    }
    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        (**self).erase_block(b)
    }
    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        (**self).cycle_block(b, n)
    }
    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        (**self).program_page(p, data)
    }
    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        (**self).program_page_with_spare(p, data, spare)
    }
    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        (**self).read_spare(p)
    }
    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        (**self).torn_program_page(p, data, fraction)
    }
    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        (**self).torn_partial_program(p, mask, fraction)
    }
    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        (**self).torn_erase_block(b, fraction)
    }
    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        (**self).partial_program(p, mask)
    }
    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        (**self).fine_partial_program(p, mask, target)
    }
    fn read_page(&mut self, p: PageId) -> Result<BitPattern> {
        (**self).read_page(p)
    }
    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        (**self).read_page_shifted(p, vref)
    }
    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        (**self).read_page_shifted_into(p, vref, out)
    }
    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        (**self).read_page_sweep(p, vrefs)
    }
    fn probe_voltages(&mut self, p: PageId) -> Result<Vec<Level>> {
        (**self).probe_voltages(p)
    }
    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        (**self).probe_voltages_into(p, out)
    }
    fn age_days(&mut self, days: f64) {
        (**self).age_days(days);
    }
    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        (**self).stress_cells(p, mask, cycles)
    }
    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        (**self).program_time_probe(p, steps)
    }
    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        (**self).exec(cmds)
    }
}

impl NandDevice for Chip {
    fn geometry(&self) -> &Geometry {
        Chip::geometry(self)
    }
    fn profile(&self) -> &ChipProfile {
        Chip::profile(self)
    }
    fn seed(&self) -> u64 {
        Chip::seed(self)
    }
    fn meter(&self) -> MeterSnapshot {
        Chip::meter(self)
    }
    fn reset_meter(&mut self) {
        Chip::reset_meter(self);
    }
    fn record_op(&mut self, kind: OpKind) {
        Chip::record_op(self, kind);
    }
    fn record_fault(&mut self, kind: FaultKind) {
        Chip::record_fault(self, kind);
    }
    fn advance_time_us(&mut self, us: f64) {
        Chip::advance_time_us(self, us);
    }
    fn set_read_noise_scale(&mut self, scale: f64) {
        Chip::set_read_noise_scale(self, scale);
    }
    fn block_pec(&self, b: BlockId) -> Result<u32> {
        Chip::block_pec(self, b)
    }
    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        Chip::mark_bad(self, b)
    }
    fn is_bad(&self, b: BlockId) -> Result<bool> {
        Chip::is_bad(self, b)
    }
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        Chip::grow_bad_block(self, b)
    }
    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        Chip::is_grown_bad(self, b)
    }
    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        Chip::is_page_programmed(self, p)
    }
    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        Chip::discard_block_state(self, b)
    }
    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        Chip::erase_block(self, b)
    }
    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        Chip::cycle_block(self, b, n)
    }
    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        Chip::program_page(self, p, data)
    }
    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        Chip::program_page_with_spare(self, p, data, spare)
    }
    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        Chip::read_spare(self, p)
    }
    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        Chip::torn_erase_block(self, b, fraction)
    }
    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        Chip::partial_program(self, p, mask)
    }
    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        Chip::fine_partial_program(self, p, mask, target)
    }
    fn read_page(&mut self, p: PageId) -> Result<BitPattern> {
        Chip::read_page(self, p)
    }
    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        Chip::read_page_shifted(self, p, vref)
    }
    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        Chip::read_page_shifted_into(self, p, vref, out)
    }
    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        Chip::read_page_sweep(self, p, vrefs)
    }
    fn probe_voltages(&mut self, p: PageId) -> Result<Vec<Level>> {
        Chip::probe_voltages(self, p)
    }
    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        Chip::probe_voltages_into(self, p, out)
    }
    fn age_days(&mut self, days: f64) {
        Chip::age_days(self, days);
    }
    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        Chip::stress_cells(self, p, mask, cycles)
    }
    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        Chip::program_time_probe(self, p, steps)
    }

    /// Planning dispatch: maximal runs of read-class commands addressing
    /// the same page execute through the fused read engine
    /// (`Chip::exec_read_run`), which hoists address checks, the
    /// block-state borrow and the cells' effective voltages once per run.
    /// Everything else dispatches scalar. Outputs, RNG consumption and
    /// meter charges stay byte-identical to sequential dispatch (reads
    /// don't mutate voltages, so the hoist is unobservable).
    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        let mut out = Vec::with_capacity(cmds.len());
        let mut i = 0usize;
        while i < cmds.len() {
            match read_run_page(&cmds[i]) {
                Some(p) => {
                    let mut j = i + 1;
                    while j < cmds.len() && read_run_page(&cmds[j]) == Some(p) {
                        j += 1;
                    }
                    self.exec_read_run(p, &cmds[i..j], &mut out);
                    i = j;
                }
                None => {
                    out.push(dispatch_one(self, &cmds[i]));
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FlashError;

    fn generic_roundtrip<D: NandDevice>(dev: &mut D) -> usize {
        let p = PageId::new(BlockId(0), 1);
        dev.erase_block(p.block).unwrap();
        let data = BitPattern::ones(dev.geometry().cells_per_page());
        dev.program_page(p, &data).unwrap();
        dev.read_page(p).unwrap().count_zeros()
    }

    #[test]
    fn chip_and_mut_ref_both_satisfy_the_trait() {
        let mut chip = Chip::new(ChipProfile::test_small(), 9);
        // Call through a &mut borrow first (the blanket impl), then by value.
        let via_ref = generic_roundtrip(&mut &mut chip);
        let mut chip2 = Chip::new(ChipProfile::test_small(), 9);
        let via_value = generic_roundtrip(&mut chip2);
        assert_eq!(via_ref, via_value);
    }

    #[test]
    fn wear_summary_counts_pec_and_grown_bad_through_middleware() {
        let mut chip = Chip::new(ChipProfile::test_small(), 11);
        chip.cycle_block(BlockId(2), 40).unwrap();
        chip.cycle_block(BlockId(5), 7).unwrap();
        chip.grow_bad_block(BlockId(1)).unwrap();
        let blocks = chip.geometry().blocks_per_chip as usize;

        // The default method must see the same census through a wrapper.
        let wrapped = crate::TraceDevice::new(chip);
        let w = wrapped.wear_summary();
        assert_eq!(w.per_block_pec.len(), blocks);
        assert_eq!(w.per_block_pec[2], 40);
        assert_eq!(w.per_block_pec[5], 7);
        assert_eq!(w.grown_bad_blocks, 1);
        assert_eq!(w.hottest(), Some((2, 40)));
        assert!((w.mean_pec() - 47.0 / blocks as f64).abs() < 1e-12);
    }

    #[test]
    fn wear_summary_hottest_ties_go_to_the_lowest_block() {
        let w = WearSummary { per_block_pec: vec![3, 9, 9, 1], grown_bad_blocks: 0 };
        assert_eq!(w.hottest(), Some((1, 9)));
        assert_eq!(WearSummary::default().hottest(), None);
        assert_eq!(WearSummary::default().mean_pec(), 0.0);
    }

    #[test]
    fn exec_dispatches_in_order_and_collects_per_command_results() {
        let mut chip = Chip::new(ChipProfile::test_small(), 5);
        let cpp = chip.geometry().cells_per_page();
        let p = PageId::new(BlockId(0), 0);
        let data = BitPattern::zeros(cpp);
        let results = chip.exec(&[
            NandCmd::EraseBlock(BlockId(0)),
            NandCmd::ProgramPage(p, data.clone()),
            NandCmd::ProgramPage(p, data), // double program: typed error, batch continues
            NandCmd::ReadPage(p),
            NandCmd::ProbeVoltages(p),
            NandCmd::AdvanceTimeUs(100.0),
        ]);
        assert_eq!(results.len(), 6);
        assert!(results[0].is_ok() && results[1].is_ok());
        assert_eq!(results[2], CmdResult::Unit(Err(FlashError::PageAlreadyProgrammed(p))));
        match &results[3] {
            CmdResult::Bits(Ok(bits)) => assert_eq!(bits.count_zeros(), cpp),
            other => panic!("expected bits, got {other:?}"),
        }
        assert!(matches!(&results[4], CmdResult::Levels(Ok(v)) if v.len() == cpp));
        assert!(results[5].is_ok());
        assert!((chip.meter().wait_time_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn exec_matches_direct_calls_byte_for_byte() {
        let p = PageId::new(BlockId(1), 0);
        let mut direct = Chip::new(ChipProfile::test_small(), 31);
        let data = BitPattern::zeros(direct.geometry().cells_per_page());
        direct.erase_block(p.block).unwrap();
        direct.program_page(p, &data).unwrap();
        let direct_levels = direct.probe_voltages(p).unwrap();

        let mut batched = Chip::new(ChipProfile::test_small(), 31);
        let results = batched.exec(&[
            NandCmd::EraseBlock(p.block),
            NandCmd::ProgramPage(p, data),
            NandCmd::ProbeVoltages(p),
        ]);
        assert_eq!(results[2], CmdResult::Levels(Ok(direct_levels)));
        assert_eq!(batched.meter(), direct.meter());
    }
}
