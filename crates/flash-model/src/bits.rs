//! Bit-pattern buffers exchanged with the chip.
//!
//! Flash testers move page-sized bit patterns: the data pattern handed to a
//! `PROGRAM` command, the pattern returned by a `READ`, and the cell masks
//! used by partial programming. [`BitPattern`] is a compact, byte-backed bit
//! vector with MSB-first bit order (bit 0 of the pattern is the most
//! significant bit of byte 0, matching how pages are laid out on the bus).

use serde::{Deserialize, Serialize};
use std::fmt;

use rand::Rng;

/// A fixed-length sequence of bits backed by bytes, MSB-first.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitPattern {
    bytes: Vec<u8>,
    len: usize,
}

impl BitPattern {
    /// All-`0` pattern of `len` bits. In flash terms: every cell programmed.
    pub fn zeros(len: usize) -> Self {
        BitPattern { bytes: vec![0u8; len.div_ceil(8)], len }
    }

    /// All-`1` pattern of `len` bits. In flash terms: every cell left erased.
    pub fn ones(len: usize) -> Self {
        let mut p = BitPattern { bytes: vec![0xFFu8; len.div_ceil(8)], len };
        p.mask_tail();
        p
    }

    /// Uniformly random pattern — the "pseudorandom data" the paper programs
    /// when characterizing chips (§4), emulating encrypted public data.
    pub fn random_half<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut bytes = vec![0u8; len.div_ceil(8)];
        rng.fill(&mut bytes[..]);
        let mut p = BitPattern { bytes, len };
        p.mask_tail();
        p
    }

    /// Builds a pattern from bytes, using the first `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() * 8 >= len, "need {len} bits, got {}", bytes.len() * 8);
        let mut v = bytes[..len.div_ceil(8)].to_vec();
        v.truncate(len.div_ceil(8));
        let mut p = BitPattern { bytes: v, len };
        p.mask_tail();
        p
    }

    /// Builds a pattern of `len` bits from an iterator of booleans
    /// (`true` = bit 1).
    pub fn from_bits<I: IntoIterator<Item = bool>>(len: usize, bits: I) -> Self {
        let mut p = BitPattern::zeros(len);
        let mut n = 0;
        for (i, b) in bits.into_iter().take(len).enumerate() {
            if b {
                p.set(i, true);
            }
            n = i + 1;
        }
        assert_eq!(n, len, "iterator yielded {n} bits, expected {len}");
        p
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the pattern holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing bytes (the final partial byte, if any, is zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.bytes[i / 8] >> (7 - (i % 8))) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u8 << (7 - (i % 8));
        if v {
            self.bytes[i / 8] |= mask;
        } else {
            self.bytes[i / 8] &= !mask;
        }
    }

    /// Number of `1` bits (word-at-a-time popcount).
    pub fn count_ones(&self) -> usize {
        let mut chunks = self.bytes.chunks_exact(8);
        let mut ones = 0usize;
        for c in chunks.by_ref() {
            ones += u64::from_ne_bytes(c.try_into().expect("8-byte chunk")).count_ones() as usize;
        }
        ones + chunks.remainder().iter().map(|b| b.count_ones() as usize).sum::<usize>()
    }

    /// Number of `0` bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Number of differing bit positions between two equal-length patterns.
    ///
    /// BER comparisons over full 18 KB pages are hot in the experiment
    /// harnesses, so the XOR+popcount runs a 64-bit word at a time.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitPattern) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut a = self.bytes.chunks_exact(8);
        let mut b = other.bytes.chunks_exact(8);
        let mut diff = 0usize;
        for (ca, cb) in a.by_ref().zip(b.by_ref()) {
            let wa = u64::from_ne_bytes(ca.try_into().expect("8-byte chunk"));
            let wb = u64::from_ne_bytes(cb.try_into().expect("8-byte chunk"));
            diff += (wa ^ wb).count_ones() as usize;
        }
        diff + a
            .remainder()
            .iter()
            .zip(b.remainder())
            .map(|(x, y)| (x ^ y).count_ones() as usize)
            .sum::<usize>()
    }

    /// Crate-internal mutable access to the backing bytes, for bulk pack
    /// kernels. Callers must keep the tail padding bits zero.
    pub(crate) fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Resets to an all-zero pattern of `len` bits, reusing the existing
    /// allocation when capacity allows — the buffer-reuse hook behind
    /// `read_page_shifted_into` and mask-building loops.
    pub fn reset_zeros(&mut self, len: usize) {
        self.bytes.clear();
        self.bytes.resize(len.div_ceil(8), 0);
        self.len = len;
    }

    /// Iterator over the bits as booleans.
    pub fn iter(&self) -> Iter<'_> {
        Iter { pattern: self, idx: 0 }
    }

    /// Indices of all `1` bits, ascending.
    pub fn one_positions(&self) -> Vec<usize> {
        self.iter().enumerate().filter_map(|(i, b)| b.then_some(i)).collect()
    }

    /// Zeroes the padding bits beyond `len` in the final byte so that
    /// byte-level operations (`count_ones`, `hamming_distance`) stay exact.
    fn mask_tail(&mut self) {
        let rem = self.len % 8;
        if rem != 0 {
            if let Some(last) = self.bytes.last_mut() {
                *last &= 0xFFu8 << (8 - rem);
            }
        }
    }
}

impl fmt::Debug for BitPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitPattern({} bits, {} ones)", self.len, self.count_ones())
    }
}

/// Iterator returned by [`BitPattern::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    pattern: &'a BitPattern,
    idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.idx < self.pattern.len {
            let b = self.pattern.get(self.idx);
            self.idx += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.pattern.len - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitPattern {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<bool> for BitPattern {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitPattern::from_bits(bits.len(), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn zeros_and_ones() {
        let z = BitPattern::zeros(13);
        assert_eq!(z.len(), 13);
        assert_eq!(z.count_ones(), 0);
        let o = BitPattern::ones(13);
        assert_eq!(o.count_ones(), 13);
        assert_eq!(o.count_zeros(), 0);
        // Padding bits must not leak into counts.
        assert_eq!(o.as_bytes()[1] & 0b0000_0111, 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut p = BitPattern::zeros(20);
        p.set(0, true);
        p.set(7, true);
        p.set(8, true);
        p.set(19, true);
        assert!(p.get(0) && p.get(7) && p.get(8) && p.get(19));
        assert!(!p.get(1) && !p.get(18));
        assert_eq!(p.count_ones(), 4);
        p.set(8, false);
        assert!(!p.get(8));
        assert_eq!(p.count_ones(), 3);
    }

    #[test]
    fn msb_first_layout() {
        let mut p = BitPattern::zeros(8);
        p.set(0, true);
        assert_eq!(p.as_bytes()[0], 0b1000_0000);
        p.set(7, true);
        assert_eq!(p.as_bytes()[0], 0b1000_0001);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a = BitPattern::from_bytes(&[0b1010_1010], 8);
        let b = BitPattern::from_bytes(&[0b0101_0101], 8);
        assert_eq!(a.hamming_distance(&b), 8);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn one_positions_ascending() {
        let p = BitPattern::from_bytes(&[0b0100_0100, 0b1000_0000], 9);
        assert_eq!(p.one_positions(), vec![1, 5, 8]);
    }

    #[test]
    fn random_half_is_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = BitPattern::random_half(&mut rng, 80_000);
        let ones = p.count_ones() as f64 / 80_000.0;
        assert!((0.48..0.52).contains(&ones), "ones fraction {ones}");
    }

    #[test]
    fn from_bits_and_iter_roundtrip() {
        let bits = [true, false, true, true, false];
        let p = BitPattern::from_bits(5, bits.iter().copied());
        let back: Vec<bool> = p.iter().collect();
        assert_eq!(back, bits);
    }

    #[test]
    fn collect_from_iterator() {
        let p: BitPattern = [true, true, false].into_iter().collect();
        assert_eq!(p.len(), 3);
        assert_eq!(p.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitPattern::zeros(4).get(4);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", BitPattern::zeros(0)).is_empty());
    }

    proptest! {
        #[test]
        fn prop_roundtrip_bytes(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
            let len = bytes.len() * 8;
            let p = BitPattern::from_bytes(&bytes, len);
            prop_assert_eq!(p.as_bytes(), &bytes[..]);
            for i in 0..len {
                prop_assert_eq!(p.get(i), (bytes[i / 8] >> (7 - i % 8)) & 1 == 1);
            }
        }

        #[test]
        fn prop_hamming_symmetric(a in proptest::collection::vec(any::<u8>(), 8),
                                  b in proptest::collection::vec(any::<u8>(), 8)) {
            let pa = BitPattern::from_bytes(&a, 64);
            let pb = BitPattern::from_bytes(&b, 64);
            prop_assert_eq!(pa.hamming_distance(&pb), pb.hamming_distance(&pa));
        }

        #[test]
        fn prop_ones_zeros_sum(len in 1usize..200, seed in any::<u64>()) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let p = BitPattern::random_half(&mut rng, len);
            prop_assert_eq!(p.count_ones() + p.count_zeros(), len);
        }
    }
}
