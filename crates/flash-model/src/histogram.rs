//! Voltage-level histograms — the measurement the paper's Figures 2, 3, 5,
//! 8 and 9 plot, and the feature vector its SVM adversary trains on.

use crate::Level;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A histogram over the 256 normalized voltage levels.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; 256], total: 0 }
    }

    /// Builds a histogram from probed levels.
    pub fn from_levels(levels: &[Level]) -> Self {
        let mut h = Histogram::new();
        h.add_levels(levels);
        h
    }

    /// Accumulates one probed level — the per-cell hot path; prefer this
    /// over one-element `add_levels` slices.
    #[inline]
    pub fn add_level(&mut self, level: Level) {
        self.counts[level as usize] += 1;
        self.total += 1;
    }

    /// Accumulates more probed levels.
    pub fn add_levels(&mut self, levels: &[Level]) {
        for &l in levels {
            self.counts[l as usize] += 1;
        }
        self.total += levels.len() as u64;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Total cells counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw count at one level.
    pub fn count(&self, level: Level) -> u64 {
        self.counts[level as usize]
    }

    /// Percentage of all counted cells at one level — the paper's y-axis
    /// ("% of cells in block/page").
    pub fn pct(&self, level: Level) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.counts[level as usize] as f64 / self.total as f64
        }
    }

    /// Fraction of cells with level in `lo..=hi`.
    pub fn fraction_in(&self, lo: Level, hi: Level) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts[lo as usize..=hi as usize].iter().sum();
        sum as f64 / self.total as f64
    }

    /// Fraction of cells with level ≥ `threshold`.
    pub fn fraction_at_or_above(&self, threshold: Level) -> f64 {
        self.fraction_in(threshold, 255)
    }

    /// Mean measured level.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().enumerate().map(|(l, &c)| l as f64 * c as f64).sum();
        sum / self.total as f64
    }

    /// Standard deviation of the measured level.
    pub fn std_dev(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(l, &c)| c as f64 * (l as f64 - m).powi(2))
            .sum::<f64>()
            / self.total as f64;
        var.sqrt()
    }

    /// Normalized 256-bin density vector (sums to 1), the SVM feature layout.
    pub fn to_feature_vector(&self) -> Vec<f64> {
        let t = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// The level at or below which at least `p` (in `0.0..=1.0`) of the
    /// counted cells sit — the smallest level `l` with
    /// `fraction_in(0, l) >= p`. An empty histogram reports level 0;
    /// `p = 0.0` reports the lowest occupied level.
    pub fn percentile(&self, p: f64) -> Level {
        if self.total == 0 {
            return 0;
        }
        let goal = (p.clamp(0.0, 1.0) * self.total as f64).max(1.0);
        let mut seen = 0u64;
        for (l, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen as f64 >= goal {
                return l as Level;
            }
        }
        255
    }

    /// The paper restricts its erased-state plots to levels `[10, 70]` and
    /// programmed plots to `[120, 210]`; this renders one such series as
    /// `(level, pct)` pairs.
    pub fn series(&self, lo: Level, hi: Level) -> Vec<(Level, f64)> {
        (lo..=hi).map(|l| (l, self.pct(l))).collect()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(total={}, mean={:.2}, sd={:.2})",
            self.total,
            self.mean(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_pct() {
        let h = Histogram::from_levels(&[10, 10, 20, 30]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(10), 2);
        assert!((h.pct(10) - 50.0).abs() < 1e-12);
        assert!((h.pct(20) - 25.0).abs() < 1e-12);
        assert_eq!(h.pct(11), 0.0);
    }

    #[test]
    fn fraction_ranges() {
        let h = Histogram::from_levels(&[0, 34, 35, 70, 200]);
        assert!((h.fraction_at_or_above(34) - 0.8).abs() < 1e-12);
        assert!((h.fraction_in(34, 70) - 0.6).abs() < 1e-12);
        assert!((h.fraction_in(0, 0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        let h = Histogram::from_levels(&[10, 20]);
        assert!((h.mean() - 15.0).abs() < 1e-12);
        assert!((h.std_dev() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::from_levels(&[1, 2]);
        let b = Histogram::from_levels(&[2, 3]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    fn feature_vector_sums_to_one() {
        let h = Histogram::from_levels(&[5, 6, 7, 8, 9, 10]);
        let f = h.to_feature_vector();
        assert_eq!(f.len(), 256);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std_dev(), 0.0);
        assert_eq!(h.pct(0), 0.0);
        assert_eq!(h.fraction_at_or_above(0), 0.0);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_in(0, 255), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = Histogram::from_levels(&[42]);
        assert_eq!(h.total(), 1);
        assert_eq!(h.percentile(0.0), 42);
        assert_eq!(h.percentile(0.5), 42);
        assert_eq!(h.percentile(1.0), 42);
        assert!((h.mean() - 42.0).abs() < 1e-12);
        assert_eq!(h.std_dev(), 0.0);
    }

    #[test]
    fn percentile_at_bucket_boundaries() {
        // Four cells at 10, four at 20, two at 30: cumulative fractions are
        // exactly 0.4 at level 10, 0.8 at 20, 1.0 at 30.
        let h = Histogram::from_levels(&[10, 10, 10, 10, 20, 20, 20, 20, 30, 30]);
        assert_eq!(h.percentile(0.4), 10, "boundary lands in the lower bucket");
        let eps = 1e-9;
        assert_eq!(h.percentile(0.4 + eps), 20, "just past the boundary moves up");
        assert_eq!(h.percentile(0.8), 20);
        assert_eq!(h.percentile(0.8 + eps), 30);
        assert_eq!(h.percentile(1.0), 30);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(h.percentile(-1.0), 10);
        assert_eq!(h.percentile(2.0), 30);
    }

    #[test]
    fn percentile_at_level_extremes() {
        let h = Histogram::from_levels(&[0, 255]);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 255);
    }

    #[test]
    fn series_covers_range() {
        let h = Histogram::from_levels(&[12, 12, 13]);
        let s = h.series(10, 15);
        assert_eq!(s.len(), 6);
        assert_eq!(s[2].0, 12);
        assert!(s[2].1 > s[3].1);
    }
}
