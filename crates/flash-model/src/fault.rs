//! Deterministic fault injection for the simulated chip.
//!
//! Real NAND parts fail in ways the happy-path simulator never exercises:
//! program and erase operations abort transiently (status-register failures
//! the datasheet tells the controller to retry), blocks wear out and become
//! *grown* bad blocks mid-life, read-reference circuitry drifts through
//! temperature excursions, and individual cells stick at a level. A seeded
//! [`FaultPlan`] describes such a failure schedule; the [`Chip`](crate::Chip)
//! consults it on every operation.
//!
//! Determinism contract: all fault decisions derive from the plan's own
//! seed via an RNG stream *separate* from the chip's process-noise RNG, and
//! faulted operations abort **before** drawing any process noise or mutating
//! cell state. Consequences:
//!
//! * the same plan seed replays the identical fault schedule;
//! * a chip driven with [`FaultPlan::none()`] is bit-identical to one built
//!   without any plan at all;
//! * a transiently failed program/erase leaves the page or block exactly as
//!   it was — retries observe no corruption from the failed attempt.
//!
//! Grown bad blocks (triggered by a PEC threshold, an explicit schedule
//! entry, or [`Chip::grow_bad_block`](crate::Chip::grow_bad_block)) reject
//! program, partial-program and erase operations but **still read**: a real
//! controller migrates surviving data off a grown bad block, so the model
//! must let it.

use crate::geometry::BlockId;
use crate::latent;
use crate::rng::ChipRng;
use crate::Level;
use rand::{Rng, SeedableRng};

/// Domain separator for the fault RNG stream, so a plan seeded with the
/// chip's own seed still draws an independent sequence.
const FAULT_STREAM_SALT: u64 = 0xFA17_0B5E_C0DE_D00D;

/// A window of operations during which read noise is inflated (models a
/// temperature excursion or supply droop; paper §4 treats read noise as
/// stationary, real testers see spikes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSpike {
    /// First global operation index (inclusive) of the window.
    pub start_op: u64,
    /// End of the window (exclusive).
    pub end_op: u64,
    /// Multiplier applied to the profile's `read_noise_sigma`.
    pub sigma_factor: f64,
}

/// A cell whose measured level is stuck regardless of stored charge
/// (shorted/open cell; reads and probes report `level`, writes succeed but
/// have no observable effect on this cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// Block containing the cell.
    pub block: BlockId,
    /// Block-relative cell index (`page * cells_per_page + offset`).
    pub cell: usize,
    /// Level every read of this cell observes.
    pub level: Level,
}

/// A scheduled supply cut, consumed by
/// [`PowerCutDevice`](crate::PowerCutDevice) (other middleware ignores it,
/// so a power-cut-only plan routed through a
/// [`FaultDevice`](crate::FaultDevice) stays a perfect pass-through).
///
/// `fraction == 0.0` cuts *before* the operation at `at_op` executes: the
/// device latches off and the operation has no effect. `0 < fraction < 1`
/// cuts *mid-operation*: the device executes a torn variant of the
/// operation (a prefix of cells programmed, a PP pulse train stopped early,
/// a partially-discharged erase) and then latches off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCut {
    /// Global device-operation index at which the supply drops (every
    /// command-surface operation advances the index by one).
    pub at_op: u64,
    /// How far through the operation the cut lands, in `[0, 1)`.
    pub fraction: f64,
}

/// A deterministic, seeded fault schedule for one chip.
///
/// Build with [`FaultPlan::new`] and the `with_*` methods, then wrap the
/// device in [`FaultDevice`](crate::FaultDevice) middleware:
///
/// ```
/// use stash_flash::{BlockId, Chip, ChipProfile, FaultDevice, FaultPlan};
///
/// let plan = FaultPlan::new(7)
///     .with_program_fail(0.01)
///     .with_erase_fail(0.005)
///     .with_grown_bad_after_pec(3_000)
///     .schedule_grown_bad(BlockId(2), 100);
/// let dev = FaultDevice::with_plan(Chip::new(ChipProfile::test_small(), 1), plan);
/// assert!(dev.plan().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    program_fail_prob: f64,
    pp_fail_prob: f64,
    erase_fail_prob: f64,
    grown_bad_pec_threshold: Option<u32>,
    grown_bad_pec_prob: f64,
    grown_bad_schedule: Vec<(BlockId, u64)>,
    noise_spikes: Vec<NoiseSpike>,
    stuck_cells: Vec<StuckCell>,
    power_cuts: Vec<PowerCut>,
}

impl FaultPlan {
    /// A plan that injects nothing. A chip configured with it behaves
    /// bit-identically to a chip with no plan installed at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan drawing its fault schedule from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Each full page program fails (typed, side-effect-free) with this
    /// probability.
    pub fn with_program_fail(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.program_fail_prob = prob;
        self
    }

    /// Each partial-program step fails with this probability.
    pub fn with_partial_program_fail(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.pp_fail_prob = prob;
        self
    }

    /// Each block erase fails transiently with this probability.
    pub fn with_erase_fail(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.erase_fail_prob = prob;
        self
    }

    /// Erasing a block whose PEC has reached `threshold` turns it into a
    /// grown bad block (always, unless softened with
    /// [`with_grown_bad_pec_prob`](Self::with_grown_bad_pec_prob)).
    pub fn with_grown_bad_after_pec(mut self, threshold: u32) -> Self {
        self.grown_bad_pec_threshold = Some(threshold);
        self.grown_bad_pec_prob = 1.0;
        self
    }

    /// Past the PEC threshold, each erase wears the block out with this
    /// probability instead of deterministically.
    pub fn with_grown_bad_pec_prob(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.grown_bad_pec_prob = prob;
        self
    }

    /// Marks `block` grown-bad at the first operation on it whose global
    /// operation index is `>= at_op` (every metered chip operation advances
    /// the index by one).
    pub fn schedule_grown_bad(mut self, block: BlockId, at_op: u64) -> Self {
        self.grown_bad_schedule.push((block, at_op));
        self
    }

    /// Multiplies read noise by `sigma_factor` for operations in
    /// `[start_op, end_op)`.
    pub fn with_noise_spike(mut self, start_op: u64, end_op: u64, sigma_factor: f64) -> Self {
        assert!(sigma_factor >= 0.0, "noise factor cannot be negative");
        self.noise_spikes.push(NoiseSpike { start_op, end_op, sigma_factor });
        self
    }

    /// Sticks one cell at a fixed measured level.
    pub fn with_stuck_cell(mut self, block: BlockId, cell: usize, level: Level) -> Self {
        self.stuck_cells.push(StuckCell { block, cell, level });
        self
    }

    /// Cuts power immediately before the operation with global index
    /// `at_op` executes (the operation has no effect; the device latches
    /// off). Equivalent to "cut after the `at_op`-th operation completes"
    /// for the preceding index.
    pub fn with_power_cut(mut self, at_op: u64) -> Self {
        self.power_cuts.push(PowerCut { at_op, fraction: 0.0 });
        self
    }

    /// Cuts power partway through the operation with global index `at_op`:
    /// the operation executes a *torn* variant covering the leading
    /// `fraction` of its effect, then the device latches off.
    pub fn with_power_cut_mid(mut self, at_op: u64, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "cut fraction out of range");
        self.power_cuts.push(PowerCut { at_op, fraction });
        self
    }

    /// The scheduled power cuts, sorted by operation index.
    pub fn power_cuts(&self) -> Vec<PowerCut> {
        let mut cuts = self.power_cuts.clone();
        cuts.sort_by_key(|c| c.at_op);
        cuts
    }

    /// Whether the plan injects nothing (the chip then skips all fault
    /// bookkeeping entirely).
    pub fn is_none(&self) -> bool {
        self.program_fail_prob == 0.0
            && self.pp_fail_prob == 0.0
            && self.erase_fail_prob == 0.0
            && self.grown_bad_pec_threshold.is_none()
            && self.grown_bad_schedule.is_empty()
            && self.noise_spikes.is_empty()
            && self.stuck_cells.is_empty()
            && self.power_cuts.is_empty()
    }

    /// Combined read-noise multiplier for one operation index.
    pub(crate) fn noise_factor(&self, op: u64) -> f64 {
        self.noise_spikes
            .iter()
            .filter(|s| (s.start_op..s.end_op).contains(&op))
            .map(|s| s.sigma_factor)
            .product()
    }

    /// Whether a schedule entry marks `block` grown-bad at or before `op`.
    pub(crate) fn grown_bad_scheduled(&self, block: BlockId, op: u64) -> bool {
        self.grown_bad_schedule.iter().any(|&(b, at)| b == block && op >= at)
    }

    /// Stuck cells within `block`.
    pub(crate) fn stuck_in(&self, block: BlockId) -> impl Iterator<Item = &StuckCell> {
        self.stuck_cells.iter().filter(move |s| s.block == block)
    }
}

/// Live fault bookkeeping owned by fault middleware: the plan plus its
/// private RNG stream and the global operation counter.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    rng: ChipRng,
    pub(crate) op_index: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = ChipRng::seed_from_u64(latent::splitmix64(plan.seed ^ FAULT_STREAM_SALT));
        FaultState { plan, rng, op_index: 0 }
    }

    /// The RNG stream position and operation counter (snapshot support; the
    /// plan itself is configuration and is not serialized).
    pub(crate) fn stream_position(&self) -> ([u64; 4], u64) {
        (self.rng.state(), self.op_index)
    }

    /// Restores a stream position captured by
    /// [`stream_position`](Self::stream_position).
    pub(crate) fn restore_stream_position(&mut self, rng: [u64; 4], op_index: u64) {
        self.rng = ChipRng::from_state(rng);
        self.op_index = op_index;
    }

    /// Advances the global operation counter, returning this operation's
    /// index.
    pub(crate) fn tick(&mut self) -> u64 {
        let op = self.op_index;
        self.op_index += 1;
        op
    }

    fn roll(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen::<f64>() < prob
    }

    /// Whether this program operation fails transiently.
    pub(crate) fn roll_program(&mut self) -> bool {
        let p = self.plan.program_fail_prob;
        self.roll(p)
    }

    /// Whether this partial-program step fails transiently.
    pub(crate) fn roll_partial_program(&mut self) -> bool {
        let p = self.plan.pp_fail_prob;
        self.roll(p)
    }

    /// Whether this erase fails transiently.
    pub(crate) fn roll_erase(&mut self) -> bool {
        let p = self.plan.erase_fail_prob;
        self.roll(p)
    }

    /// Whether an erase bringing the block to `pec` cycles wears it out.
    pub(crate) fn roll_pec_wearout(&mut self, pec: u32) -> bool {
        match self.plan.grown_bad_pec_threshold {
            Some(t) if pec >= t => {
                let p = self.plan.grown_bad_pec_prob;
                self.roll(p)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::new(9).is_none());
        assert!(!FaultPlan::new(9).with_program_fail(0.5).is_none());
        assert!(!FaultPlan::new(9).with_stuck_cell(BlockId(0), 3, 200).is_none());
        assert!(!FaultPlan::new(9).with_power_cut(10).is_none());
    }

    #[test]
    fn empty_builders_stay_bit_identical_to_none() {
        // A plan built through the constructor with no schedules installed
        // must compare equal to `FaultPlan::none()` modulo its seed, and
        // report `is_none()` like it.
        let built = FaultPlan::new(0);
        assert_eq!(built, FaultPlan::none());
        let seeded = FaultPlan::new(77);
        assert!(seeded.is_none());
        assert!(seeded.power_cuts().is_empty());
    }

    #[test]
    fn power_cuts_sort_by_op_index() {
        let p = FaultPlan::new(1).with_power_cut(30).with_power_cut_mid(10, 0.5).with_power_cut(20);
        let cuts = p.power_cuts();
        assert_eq!(cuts.iter().map(|c| c.at_op).collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(cuts[0].fraction, 0.5);
        assert_eq!(cuts[1].fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "cut fraction out of range")]
    fn mid_cut_rejects_fraction_one() {
        let _ = FaultPlan::new(1).with_power_cut_mid(0, 1.0);
    }

    #[test]
    fn noise_factor_composes_overlapping_spikes() {
        let p = FaultPlan::new(1).with_noise_spike(10, 20, 2.0).with_noise_spike(15, 25, 3.0);
        assert_eq!(p.noise_factor(5), 1.0);
        assert_eq!(p.noise_factor(12), 2.0);
        assert_eq!(p.noise_factor(17), 6.0);
        assert_eq!(p.noise_factor(20), 3.0);
        assert_eq!(p.noise_factor(25), 1.0);
    }

    #[test]
    fn schedule_fires_at_and_after_threshold() {
        let p = FaultPlan::new(1).schedule_grown_bad(BlockId(3), 7);
        assert!(!p.grown_bad_scheduled(BlockId(3), 6));
        assert!(p.grown_bad_scheduled(BlockId(3), 7));
        assert!(p.grown_bad_scheduled(BlockId(3), 99));
        assert!(!p.grown_bad_scheduled(BlockId(2), 99));
    }

    #[test]
    fn same_seed_same_rolls() {
        let plan = FaultPlan::new(42).with_program_fail(0.3).with_erase_fail(0.2);
        let rolls = |plan: &FaultPlan| {
            let mut fs = FaultState::new(plan.clone());
            (0..64).map(|_| (fs.roll_program(), fs.roll_erase())).collect::<Vec<_>>()
        };
        assert_eq!(rolls(&plan), rolls(&plan));
        let other = FaultPlan::new(43).with_program_fail(0.3).with_erase_fail(0.2);
        assert_ne!(rolls(&plan), rolls(&other));
    }

    #[test]
    fn pec_wearout_respects_threshold() {
        let plan = FaultPlan::new(5).with_grown_bad_after_pec(100);
        let mut fs = FaultState::new(plan);
        assert!(!fs.roll_pec_wearout(99));
        assert!(fs.roll_pec_wearout(100));
        assert!(fs.roll_pec_wearout(101));
    }
}
