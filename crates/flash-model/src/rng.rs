//! The chip's deterministic RNG.
//!
//! [`ChipRng`] is an in-crate xoshiro256++ generator, stream-compatible
//! with `rand::rngs::SmallRng` on 64-bit targets (same state layout, same
//! output function, same SplitMix64 `seed_from_u64` expansion). Owning the
//! implementation buys one thing `SmallRng` cannot offer: the raw state
//! words are readable and writable, so a [`Chip`](crate::Chip) can be
//! checkpointed to disk and restored mid-run by the snapshot middleware
//! without perturbing any random stream.
//!
//! The stream-equivalence tests below pin this against `SmallRng`; if the
//! `rand` crate ever changes its `SmallRng` algorithm, they fail loudly
//! rather than silently re-randomizing every simulated chip.

use rand::{RngCore, SeedableRng};

/// xoshiro256++ with accessible state. Drop-in for `SmallRng` in the
/// simulator; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipRng {
    s: [u64; 4],
}

impl ChipRng {
    /// The raw state words (for snapshotting).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from raw state words (snapshot restore). The
    /// all-zero state is a fixed point of xoshiro and is nudged to the
    /// `seed_from_u64(0)` state instead.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return ChipRng::seed_from_u64(0);
        }
        ChipRng { s }
    }
}

impl RngCore for ChipRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl SeedableRng for ChipRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            *word = u64::from_le_bytes(b);
        }
        ChipRng::from_state(s)
    }

    /// SplitMix64 seed expansion, matching `SmallRng::seed_from_u64` (the
    /// xoshiro reference seeding) rather than the `SeedableRng` provided
    /// default, so the two generators stay stream-identical.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        ChipRng::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng};

    #[test]
    fn stream_matches_smallrng_u64() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let mut ours = ChipRng::seed_from_u64(seed);
            let mut theirs = SmallRng::seed_from_u64(seed);
            for i in 0..256 {
                assert_eq!(ours.next_u64(), theirs.next_u64(), "seed {seed} word {i}");
            }
        }
    }

    #[test]
    fn stream_matches_smallrng_distributions() {
        // The chip consumes its RNG through `Rng` adapters (`gen::<f64>`,
        // `gen_range` over ints and floats); all must agree byte-for-byte.
        let mut ours = ChipRng::seed_from_u64(7);
        let mut theirs = SmallRng::seed_from_u64(7);
        for _ in 0..128 {
            assert_eq!(ours.gen::<f64>().to_bits(), theirs.gen::<f64>().to_bits());
            assert_eq!(ours.gen_range(0..1443usize), theirs.gen_range(0..1443usize));
            assert_eq!(
                ours.gen_range(0.0..255.0f32).to_bits(),
                theirs.gen_range(0.0..255.0f32).to_bits()
            );
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = ChipRng::seed_from_u64(99);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = ChipRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_nudged() {
        let mut z = ChipRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0, "all-zero xoshiro state would be a fixed point");
        assert_eq!(ChipRng::from_state([0; 4]), ChipRng::seed_from_u64(0));
    }

    #[test]
    fn fill_bytes_is_le_words() {
        let mut a = ChipRng::seed_from_u64(3);
        let mut b = ChipRng::seed_from_u64(3);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
    }
}
