//! Package geometry: blocks, pages, cells.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one erase block within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Identifies one page (wordline in SLC mode) within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId {
    /// The block containing this page.
    pub block: BlockId,
    /// Page index within the block, `0..pages_per_block`.
    pub page: u32,
}

impl PageId {
    /// Creates a page id from a block and a page index within the block.
    pub fn new(block: BlockId, page: u32) -> Self {
        PageId { block, page }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:P{}", self.block, self.page)
    }
}

/// The physical layout of a flash package.
///
/// The paper's vendor-A chip (§6.1) has 8 GB across 2048 blocks of 256 pages
/// (128 lower + 128 upper), with 18048-byte pages. This simulator operates
/// pages in SLC mode, one bit per cell, so a page holds
/// `page_bytes * 8` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Erase blocks per chip.
    pub blocks_per_chip: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Data bytes per page.
    pub page_bytes: usize,
}

impl Geometry {
    /// The paper's vendor-A 1x-nm MLC package (§6.1): 2048 blocks,
    /// 256 pages/block, 18048-byte pages.
    pub fn paper_vendor_a() -> Self {
        Geometry { blocks_per_chip: 2048, pages_per_block: 256, page_bytes: 18048 }
    }

    /// The second vendor's package used for the applicability experiment
    /// (§8): 16 GB, 2096 blocks, 18256-byte pages.
    pub fn paper_vendor_b() -> Self {
        Geometry { blocks_per_chip: 2096, pages_per_block: 256, page_bytes: 18256 }
    }

    /// A scaled-down geometry for statistical experiments (SVM detectability)
    /// where per-cell simulation of full 18 KB pages would be needlessly
    /// slow: 2048-byte pages, 32 pages per block. Distribution *shapes* are
    /// preserved; densities (e.g. hidden bits per page) are scaled by cell
    /// count.
    pub fn scaled_svm() -> Self {
        Geometry { blocks_per_chip: 256, pages_per_block: 32, page_bytes: 2048 }
    }

    /// A tiny geometry for unit tests.
    pub fn tiny() -> Self {
        Geometry { blocks_per_chip: 8, pages_per_block: 8, page_bytes: 256 }
    }

    /// Cells (bits, in SLC mode) per page.
    pub fn cells_per_page(&self) -> usize {
        self.page_bytes * 8
    }

    /// Cells per erase block.
    pub fn cells_per_block(&self) -> usize {
        self.cells_per_page() * self.pages_per_block as usize
    }

    /// Total pages in the chip.
    pub fn total_pages(&self) -> u64 {
        u64::from(self.blocks_per_chip) * u64::from(self.pages_per_block)
    }

    /// Iterator over all page ids of one block.
    pub fn pages_of(&self, block: BlockId) -> impl Iterator<Item = PageId> {
        (0..self.pages_per_block).map(move |p| PageId::new(block, p))
    }

    /// Checks that a block id is within this geometry.
    pub fn contains_block(&self, b: BlockId) -> bool {
        b.0 < self.blocks_per_chip
    }

    /// Checks that a page id is within this geometry.
    pub fn contains_page(&self, p: PageId) -> bool {
        self.contains_block(p.block) && p.page < self.pages_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vendor_a_capacity_is_8gb_class() {
        let g = Geometry::paper_vendor_a();
        let bytes = g.blocks_per_chip as u64 * g.pages_per_block as u64 * g.page_bytes as u64;
        // 2048 * 256 * 18048 B ≈ 8.8 GiB raw (data + spare area).
        assert!(bytes > 8 * (1 << 30) && bytes < 10 * (1 << 30), "raw bytes = {bytes}");
        assert_eq!(g.cells_per_page(), 144_384);
    }

    #[test]
    fn page_iteration_covers_block() {
        let g = Geometry::tiny();
        let pages: Vec<_> = g.pages_of(BlockId(2)).collect();
        assert_eq!(pages.len(), 8);
        assert_eq!(pages[0], PageId::new(BlockId(2), 0));
        assert_eq!(pages[7], PageId::new(BlockId(2), 7));
    }

    #[test]
    fn containment_checks() {
        let g = Geometry::tiny();
        assert!(g.contains_block(BlockId(7)));
        assert!(!g.contains_block(BlockId(8)));
        assert!(g.contains_page(PageId::new(BlockId(0), 7)));
        assert!(!g.contains_page(PageId::new(BlockId(0), 8)));
        assert!(!g.contains_page(PageId::new(BlockId(9), 0)));
    }

    #[test]
    fn ids_display() {
        assert_eq!(BlockId(5).to_string(), "B5");
        assert_eq!(PageId::new(BlockId(5), 3).to_string(), "B5:P3");
    }
}
