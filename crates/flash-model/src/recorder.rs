//! Lightweight observer hook for chip-level events.
//!
//! The flash model stays dependency-free: it only defines the [`Recorder`]
//! trait; [`TraceDevice`](crate::TraceDevice) middleware calls it (when
//! installed) at every metered event. The `stash-obs` crate implements the
//! trait with a span-aware tracer; tests can implement it with a plain
//! counter. With no recorder installed the hot path pays a single `Option`
//! branch per operation.

use crate::meter::{FaultKind, OpKind};
use std::fmt;
use std::sync::Arc;

/// Observer of device-level events, called synchronously from the tracing
/// middleware's metering sites. Implementations use interior mutability (`&self`
/// methods) so one recorder can be shared by several chips and by the
/// layers above them.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// One device operation completed, costing `device_us` microseconds and
    /// `energy_uj` microjoules of simulated budget. Faulted attempts are
    /// billed too, exactly as the [`Meter`](crate::Meter) bills them.
    fn record_op(&self, kind: OpKind, device_us: f64, energy_uj: f64);

    /// One injected fault fired (the op itself is also reported via
    /// [`record_op`](Self::record_op) when it was billed).
    fn record_fault(&self, kind: FaultKind) {
        let _ = kind;
    }

    /// Simulated wall-clock wait (retry backoff) advanced outside any
    /// device operation.
    fn record_wait(&self, wait_us: f64) {
        let _ = wait_us;
    }
}

/// Shared handle to a recorder; cloning a [`TraceDevice`](crate::TraceDevice)
/// shares the recorder rather than splitting it.
pub type SharedRecorder = Arc<dyn Recorder>;

/// A recorder that counts events — useful as a smoke-test observer.
#[derive(Debug, Default)]
pub struct CountingRecorder {
    ops: std::sync::atomic::AtomicU64,
    faults: std::sync::atomic::AtomicU64,
    waits: std::sync::atomic::AtomicU64,
}

impl CountingRecorder {
    /// Creates a zeroed counting recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations observed.
    pub fn ops(&self) -> u64 {
        self.ops.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of faults observed.
    pub fn faults(&self) -> u64 {
        self.faults.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of waits observed.
    pub fn waits(&self) -> u64 {
        self.waits.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Recorder for CountingRecorder {
    fn record_op(&self, _kind: OpKind, _device_us: f64, _energy_uj: f64) {
        self.ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn record_fault(&self, _kind: FaultKind) {
        self.faults.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn record_wait(&self, _wait_us: f64) {
        self.waits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// One device operation as observed by the flight-recorder middleware.
///
/// Every field is `Copy` so a bounded ring of these is zero-alloc in steady
/// state: the sink can stamp, store and overwrite entries without touching
/// the heap. Address fields are `Option` because billed-but-failed attempts
/// (reported through [`NandDevice::record_op`](crate::NandDevice::record_op))
/// never carried an address down the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightOp {
    /// The operation class, as billed to the meter.
    pub kind: OpKind,
    /// Global block address (array-wide), when the op addressed a block.
    pub block: Option<u32>,
    /// Block address local to its chip (`block % local_blocks`).
    pub local_block: Option<u32>,
    /// Page index within the block, when the op addressed a page.
    pub page: Option<u32>,
    /// Chip behind the address (`block / local_blocks`; 0 for a bare chip).
    pub chip: u32,
    /// Simulated device time the op cost, microseconds.
    pub device_us: f64,
    /// Simulated energy the op cost, microjoules.
    pub energy_uj: f64,
    /// Whether the op completed successfully.
    pub ok: bool,
    /// Stable error code when the op failed (see `FlashError::code`).
    pub err: Option<&'static str>,
    /// Whether this was a torn (power-interrupted) variant of the op.
    pub torn: bool,
}

/// Observer of flight-recorder events, called synchronously by the
/// [`FlightDevice`](crate::FlightDevice) middleware. Like [`Recorder`],
/// implementations use interior mutability so one sink can watch a whole
/// stack. `stash-obs` implements it with a bounded post-mortem ring.
pub trait FlightSink: fmt::Debug + Send + Sync {
    /// One device operation was issued (successful, failed, or torn).
    fn record_flight_op(&self, op: &FlightOp);

    /// One fault event fired in the stack (power loss, block retirement,
    /// transient fail). Power-loss is the classic dump trigger.
    fn record_flight_fault(&self, kind: FaultKind) {
        let _ = kind;
    }

    /// Simulated wall-clock wait advanced outside any device operation.
    fn record_flight_wait(&self, wait_us: f64) {
        let _ = wait_us;
    }
}

/// Shared handle to a flight sink; cloning a
/// [`FlightDevice`](crate::FlightDevice) shares the sink.
pub type SharedFlightSink = Arc<dyn FlightSink>;

// The recorder's behavioral tests (observation counts, clone sharing,
// faulted-attempt billing) live in `crate::middleware::tests`, next to the
// `TraceDevice` that drives it.
