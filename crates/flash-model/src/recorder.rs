//! Lightweight observer hook for chip-level events.
//!
//! The flash model stays dependency-free: it only defines the [`Recorder`]
//! trait and calls it (when installed) at every metered event. The
//! `stash-obs` crate implements the trait with a span-aware tracer; tests
//! can implement it with a plain counter. With no recorder installed the
//! hot path pays a single `Option` branch per operation.

use crate::meter::{FaultKind, OpKind};
use std::fmt;
use std::sync::Arc;

/// Observer of chip-level events, called synchronously from the chip's
/// metering sites. Implementations use interior mutability (`&self`
/// methods) so one recorder can be shared by several chips and by the
/// layers above them.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// One device operation completed, costing `device_us` microseconds and
    /// `energy_uj` microjoules of simulated budget. Faulted attempts are
    /// billed too, exactly as the [`Meter`](crate::Meter) bills them.
    fn record_op(&self, kind: OpKind, device_us: f64, energy_uj: f64);

    /// One injected fault fired (the op itself is also reported via
    /// [`record_op`](Self::record_op) when it was billed).
    fn record_fault(&self, kind: FaultKind) {
        let _ = kind;
    }

    /// Simulated wall-clock wait (retry backoff) advanced outside any
    /// device operation.
    fn record_wait(&self, wait_us: f64) {
        let _ = wait_us;
    }
}

/// Shared handle to a recorder; cloning a [`Chip`](crate::Chip) shares the
/// recorder rather than splitting it.
pub type SharedRecorder = Arc<dyn Recorder>;

/// A recorder that counts events — useful as a smoke-test observer.
#[derive(Debug, Default)]
pub struct CountingRecorder {
    ops: std::sync::atomic::AtomicU64,
    faults: std::sync::atomic::AtomicU64,
    waits: std::sync::atomic::AtomicU64,
}

impl CountingRecorder {
    /// Creates a zeroed counting recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations observed.
    pub fn ops(&self) -> u64 {
        self.ops.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of faults observed.
    pub fn faults(&self) -> u64 {
        self.faults.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of waits observed.
    pub fn waits(&self) -> u64 {
        self.waits.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Recorder for CountingRecorder {
    fn record_op(&self, _kind: OpKind, _device_us: f64, _energy_uj: f64) {
        self.ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn record_fault(&self, _kind: FaultKind) {
        self.faults.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn record_wait(&self, _wait_us: f64) {
        self.waits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ChipProfile;
    use crate::Chip;

    #[test]
    fn counting_recorder_observes_chip_ops() {
        let rec = Arc::new(CountingRecorder::new());
        let mut c = Chip::new(ChipProfile::test_small(), 3);
        c.set_recorder(Some(rec.clone()));
        c.erase_block(crate::BlockId(0)).unwrap();
        let _ = c.read_page(crate::PageId::new(crate::BlockId(0), 0)).unwrap();
        c.advance_time_us(25.0);
        assert_eq!(rec.ops(), 2);
        assert_eq!(rec.waits(), 1);
        assert_eq!(rec.faults(), 0);
        // Ops observed match the meter exactly.
        assert_eq!(rec.ops(), c.meter().total_ops());
    }

    #[test]
    fn recorder_survives_chip_clone() {
        let rec = Arc::new(CountingRecorder::new());
        let mut c = Chip::new(ChipProfile::test_small(), 3);
        c.set_recorder(Some(rec.clone()));
        let mut c2 = c.clone();
        c2.erase_block(crate::BlockId(0)).unwrap();
        assert_eq!(rec.ops(), 1, "clone shares the recorder");
        c.set_recorder(None);
        c.erase_block(crate::BlockId(1)).unwrap();
        assert_eq!(rec.ops(), 1, "detached chip stops reporting");
    }
}
