//! Lightweight observer hook for chip-level events.
//!
//! The flash model stays dependency-free: it only defines the [`Recorder`]
//! trait; [`TraceDevice`](crate::TraceDevice) middleware calls it (when
//! installed) at every metered event. The `stash-obs` crate implements the
//! trait with a span-aware tracer; tests can implement it with a plain
//! counter. With no recorder installed the hot path pays a single `Option`
//! branch per operation.

use crate::meter::{FaultKind, OpKind};
use std::fmt;
use std::sync::Arc;

/// Observer of device-level events, called synchronously from the tracing
/// middleware's metering sites. Implementations use interior mutability (`&self`
/// methods) so one recorder can be shared by several chips and by the
/// layers above them.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// One device operation completed, costing `device_us` microseconds and
    /// `energy_uj` microjoules of simulated budget. Faulted attempts are
    /// billed too, exactly as the [`Meter`](crate::Meter) bills them.
    fn record_op(&self, kind: OpKind, device_us: f64, energy_uj: f64);

    /// One injected fault fired (the op itself is also reported via
    /// [`record_op`](Self::record_op) when it was billed).
    fn record_fault(&self, kind: FaultKind) {
        let _ = kind;
    }

    /// Simulated wall-clock wait (retry backoff) advanced outside any
    /// device operation.
    fn record_wait(&self, wait_us: f64) {
        let _ = wait_us;
    }
}

/// Shared handle to a recorder; cloning a [`TraceDevice`](crate::TraceDevice)
/// shares the recorder rather than splitting it.
pub type SharedRecorder = Arc<dyn Recorder>;

/// A recorder that counts events — useful as a smoke-test observer.
#[derive(Debug, Default)]
pub struct CountingRecorder {
    ops: std::sync::atomic::AtomicU64,
    faults: std::sync::atomic::AtomicU64,
    waits: std::sync::atomic::AtomicU64,
}

impl CountingRecorder {
    /// Creates a zeroed counting recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations observed.
    pub fn ops(&self) -> u64 {
        self.ops.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of faults observed.
    pub fn faults(&self) -> u64 {
        self.faults.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of waits observed.
    pub fn waits(&self) -> u64 {
        self.waits.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Recorder for CountingRecorder {
    fn record_op(&self, _kind: OpKind, _device_us: f64, _energy_uj: f64) {
        self.ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn record_fault(&self, _kind: FaultKind) {
        self.faults.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn record_wait(&self, _wait_us: f64) {
        self.waits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

// The recorder's behavioral tests (observation counts, clone sharing,
// faulted-attempt billing) live in `crate::middleware::tests`, next to the
// `TraceDevice` that drives it.
