//! Chip calibration profiles.
//!
//! Every numeric constant of the voltage model lives here, so that (a) the
//! calibration tests can assert the paper-reported statistics against one
//! authoritative parameter set, and (b) a second "vendor" is just a second
//! profile (the paper verifies applicability on a chip from a different
//! vendor in §8).

use crate::geometry::Geometry;
use crate::meter::OpKind;
use serde::{Deserialize, Serialize};

/// Latency and energy of each tester-visible operation, from paper §6.1:
/// read 90 µs / 50 µJ, program 1200 µs / 68 µJ, erase 5 ms / 190 µJ, and a
/// partial-program step of 600 µs (§8 throughput model). The paper's §8
/// energy arithmetic implies ≈60 µJ per PP step (10 steps · (PP + read)
/// ≈ 1.1 mJ per hidden page).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Page-read latency, microseconds.
    pub read_us: f64,
    /// Page-program latency, microseconds.
    pub program_us: f64,
    /// Block-erase latency, microseconds.
    pub erase_us: f64,
    /// Partial-program step latency, microseconds.
    pub partial_program_us: f64,
    /// Page-read energy, microjoules.
    pub read_uj: f64,
    /// Page-program energy, microjoules.
    pub program_uj: f64,
    /// Block-erase energy, microjoules.
    pub erase_uj: f64,
    /// Partial-program step energy, microjoules.
    pub partial_program_uj: f64,
}

impl TimingModel {
    /// The paper's vendor-A timings (§6.1, §8).
    pub fn paper_vendor_a() -> Self {
        TimingModel {
            read_us: 90.0,
            program_us: 1200.0,
            erase_us: 5000.0,
            partial_program_us: 600.0,
            read_uj: 50.0,
            program_uj: 68.0,
            erase_uj: 190.0,
            partial_program_uj: 60.0,
        }
    }

    /// Latency (µs) and energy (µJ) of one operation. Probes are billed as
    /// reads (same command timing on the bus).
    pub fn cost(&self, kind: OpKind) -> (f64, f64) {
        match kind {
            OpKind::Read | OpKind::Probe => (self.read_us, self.read_uj),
            OpKind::Program => (self.program_us, self.program_uj),
            OpKind::Erase => (self.erase_us, self.erase_uj),
            OpKind::PartialProgram => (self.partial_program_us, self.partial_program_uj),
        }
    }
}

/// Parameters of one charge-state distribution (true voltage, in normalized
/// level units; negative values are physical but measured as 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateModel {
    /// Mean of the true voltage right after the state is established.
    pub mean: f64,
    /// Per-cell programming-noise standard deviation.
    pub sigma: f64,
    /// Rightward mean drift per 1000 PEC (overprogramming of worn cells,
    /// paper Fig. 3).
    pub drift_per_kpec: f64,
    /// Additional sigma per 1000 PEC (distributions widen with wear).
    pub widen_per_kpec: f64,
}

/// Program-interference model: programming a wordline couples charge onto
/// its neighbors (paper §4, Fig. 2a: "non-programmed cells become partially
/// charged due to interference from programming nearby cells").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Mean voltage bump induced on an adjacent wordline per program
    /// operation, before per-cell coupling is applied.
    pub bump_mean: f64,
    /// Standard deviation of that bump.
    pub bump_sigma: f64,
    /// Attenuation factor for wordlines at distance 2.
    pub distance2_factor: f64,
    /// Fraction of the full-program bump caused by one partial-program step.
    pub pp_factor: f64,
    /// Median of the per-cell lognormal coupling latent.
    pub coupling_median: f64,
    /// Log-sigma of the coupling latent (heavy tail ⇒ a small share of
    /// erased cells charges far enough to be measured positive).
    pub coupling_sigma_ln: f64,
    /// Cap on the coupling latent so no erased cell ever approaches the SLC
    /// read reference.
    pub coupling_cap: f64,
    /// Probability that one partial-program step turns a cell of an adjacent
    /// wordline erratic (drives the public-data BER increase the paper
    /// measures at small page intervals: +20% at interval 0, +10% at 1).
    pub pp_disturb_defect_prob: f64,
    /// Log-sigma of the per-block interference-strength latent. This
    /// variation is *independent* of the block's voltage offset, so an
    /// adversary cannot cancel the erased-tail noise using the programmed
    /// lobe — the irreducible cover noise VT-HI hides in (paper §4).
    pub bump_scale_sigma_block: f64,
    /// Log-sigma of the per-page interference-strength latent (pages vary
    /// more than blocks, paper Fig. 2c).
    pub bump_scale_sigma_page: f64,
    /// Log-jitter of the per-block coupling *median* (block-to-block tail
    /// mass variation, independent of voltage offsets).
    pub coupling_median_jitter: f64,
    /// Additive jitter of the per-block coupling log-sigma: varies the
    /// *slope* of the erased tail per block. A fatter-than-usual natural
    /// tail looks exactly like a block with hidden data — this is the
    /// cover noise that defeats the §7 SVM at matched wear.
    pub coupling_sigma_jitter: f64,
    /// Voltage at which interference coupling stops adding charge; bumps
    /// are damped by `(1 - v/ceiling)` so no erased cell drifts toward the
    /// read reference.
    pub interference_saturation: f64,
}

/// Partial-program (PP) step model: an aborted program operation adds a
/// coarse, noisy increment of charge (paper §6.2: "PP is less precise than a
/// program command issued by the controller").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartialProgramModel {
    /// Mean raw charge injected per step for a cell with unit PP efficiency
    /// (level units, before saturation).
    pub step_mean: f64,
    /// Per-step noise standard deviation.
    pub step_sigma: f64,
    /// Log-sigma of the per-cell PP-efficiency latent (slow cells stretch
    /// the BER-vs-steps convergence of Fig. 6).
    pub eff_sigma_ln: f64,
    /// Saturation voltage of partial programming: injected charge decays
    /// exponentially toward this level (`v' = S − (S − v)·e^(−inc/S)`), so
    /// an aborted program can never push a cell anywhere near the SLC read
    /// reference — hidden cells stay inside the erased distribution's range,
    /// as the paper's Figures 5 and 8 show.
    pub saturation: f64,
}

/// Retention model: charge leaks over time, faster for worn cells (trapped
/// charge, paper §8 "Reliability") and faster for charge deposited by
/// partial programming (no guard band; shallowly trapped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Baseline voltage-loss coefficient at PEC 0 (level units at the
    /// programmed reference voltage after the full `horizon_days`).
    pub base_loss: f64,
    /// Additional loss per (PEC/1000)^`pec_exponent`.
    pub loss_per_kpec: f64,
    /// Wear exponent.
    pub pec_exponent: f64,
    /// Time constant (days) of the logarithmic decay law.
    pub tau_days: f64,
    /// Horizon (days) at which `base_loss`/`loss_per_kpec` are calibrated;
    /// the paper's longest oven-emulated retention period is 4 months.
    pub horizon_days: f64,
    /// Reference voltage at which the loss coefficients are expressed;
    /// actual loss scales with `v / reference_voltage`.
    pub reference_voltage: f64,
    /// Extra leakage multiplier for charge written by partial programming.
    pub pp_penalty: f64,
    /// Per-cell noise of the loss (level units).
    pub noise_sigma: f64,
}

/// MLC-mode lobe placement (paper §3/§6.2: the same cells can operate at
/// higher densities; "MLC distributions are typically narrower", Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlcModel {
    /// Mean level of the L1 (gray `10`) lobe.
    pub l1_mean: f64,
    /// Mean level of the L2 (gray `00`) lobe.
    pub l2_mean: f64,
    /// Mean level of the L3 (gray `01`) lobe.
    pub l3_mean: f64,
    /// Per-lobe programming sigma (narrower than SLC).
    pub sigma: f64,
    /// Read reference voltages between lobes: [R1, R2, R3].
    pub read_refs: [u8; 3],
}

/// Complete calibration of one chip model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipProfile {
    /// Human-readable model name (vendors are anonymized, as in the paper).
    pub name: String,
    /// Package geometry.
    pub geometry: Geometry,
    /// Erased-state (logical `1`) distribution; mean is negative — most
    /// erased cells are not measurable (paper §4 footnote).
    pub erased: StateModel,
    /// Programmed-state (logical `0`) distribution.
    pub programmed: StateModel,
    /// Chip-to-chip manufacturing offset sigma (level units).
    pub chip_sigma: f64,
    /// Block-to-block offset sigma.
    pub block_sigma: f64,
    /// Page-to-page offset sigma (pages are noisier than blocks, Fig. 2c/d).
    pub page_sigma: f64,
    /// Common-mode noise of one program pass over a page.
    pub program_pass_sigma: f64,
    /// Read-noise sigma (level units) applied per read/probe.
    pub read_noise_sigma: f64,
    /// Probability that a program operation leaves a cell erratic (uniform
    /// random voltage) at PEC 0.
    pub defect_prob_base: f64,
    /// Additional erratic probability per 1000 PEC.
    pub defect_prob_per_kpec: f64,
    /// Interference model.
    pub interference: InterferenceModel,
    /// Partial-program model.
    pub partial_program: PartialProgramModel,
    /// Retention model.
    pub retention: RetentionModel,
    /// Intrinsic per-cell program-speed sigma (PT-HI substrate).
    pub prog_speed_sigma: f64,
    /// Fractional program-speed shift contributed by one stress cycle
    /// (PT-HI encoding: hundreds of program cycles shift group timing).
    pub stress_speed_per_cycle: f64,
    /// PEC at which stress contrast has fully decayed (PT-HI reliability
    /// collapses after a few hundred public PEC, paper §2/§8).
    pub stress_decay_pec: f64,
    /// MLC-mode calibration.
    pub mlc: MlcModel,
    /// Rated endurance in program/erase cycles (3000 for both vendors).
    pub endurance_pec: u32,
    /// Operation latencies and energies.
    pub timing: TimingModel,
}

impl ChipProfile {
    /// The paper's primary chip: 1x-nm MLC, vendor A (§6.1).
    pub fn vendor_a() -> Self {
        ChipProfile {
            name: "vendor-A 1x-nm MLC 8GB".to_owned(),
            geometry: Geometry::paper_vendor_a(),
            erased: StateModel {
                mean: -25.0,
                sigma: 12.0,
                drift_per_kpec: 2.2,
                widen_per_kpec: 0.5,
            },
            programmed: StateModel {
                mean: 165.0,
                sigma: 9.0,
                drift_per_kpec: 3.0,
                widen_per_kpec: 0.8,
            },
            chip_sigma: 2.0,
            block_sigma: 1.8,
            page_sigma: 1.6,
            program_pass_sigma: 0.8,
            read_noise_sigma: 0.6,
            defect_prob_base: 2.0e-5,
            defect_prob_per_kpec: 0.7e-5,
            interference: InterferenceModel {
                bump_mean: 4.2,
                bump_sigma: 1.8,
                distance2_factor: 0.45,
                pp_factor: 0.02,
                coupling_median: 0.42,
                coupling_sigma_ln: 1.0,
                coupling_cap: 4.0,
                pp_disturb_defect_prob: 1.3e-6,
                bump_scale_sigma_block: 0.10,
                bump_scale_sigma_page: 0.08,
                coupling_median_jitter: 0.10,
                coupling_sigma_jitter: 0.06,
                interference_saturation: 110.0,
            },
            partial_program: PartialProgramModel {
                step_mean: 65.0,
                step_sigma: 12.0,
                eff_sigma_ln: 0.45,
                saturation: 68.0,
            },
            retention: RetentionModel {
                base_loss: 0.03,
                loss_per_kpec: 0.95,
                pec_exponent: 1.7,
                tau_days: 10.0,
                horizon_days: 120.0,
                reference_voltage: 165.0,
                pp_penalty: 6.0,
                noise_sigma: 0.10,
            },
            prog_speed_sigma: 0.06,
            stress_speed_per_cycle: 4.0e-4,
            stress_decay_pec: 1200.0,
            mlc: MlcModel {
                l1_mean: 85.0,
                l2_mean: 145.0,
                l3_mean: 200.0,
                sigma: 5.5,
                read_refs: [40, 115, 172],
            },
            endurance_pec: 3000,
            timing: TimingModel::paper_vendor_a(),
        }
    }

    /// The second major vendor's chip used for the applicability check (§8):
    /// 16 GB, 2096 blocks, 18256-byte pages, slightly different noise.
    pub fn vendor_b() -> Self {
        let mut p = ChipProfile::vendor_a();
        p.name = "vendor-B 1x-nm MLC 16GB".to_owned();
        p.geometry = Geometry::paper_vendor_b();
        // A different process corner: slightly wider programming noise and
        // stronger interference coupling; same command set.
        p.erased.mean = -23.0;
        p.erased.sigma = 13.0;
        p.programmed.mean = 168.0;
        p.programmed.sigma = 9.8;
        p.interference.bump_mean = 4.5;
        p.interference.coupling_sigma_ln = 1.0;
        p.partial_program.step_mean = 60.0;
        p.partial_program.step_sigma = 13.0;
        p.defect_prob_base = 2.6e-5;
        p
    }

    /// Vendor-A physics on the scaled-down geometry used by the SVM
    /// detectability experiments.
    pub fn vendor_a_scaled() -> Self {
        let mut p = ChipProfile::vendor_a();
        p.name = "vendor-A (scaled geometry)".to_owned();
        p.geometry = Geometry::scaled_svm();
        p
    }

    /// Vendor-A physics on a tiny geometry for unit tests.
    pub fn test_small() -> Self {
        let mut p = ChipProfile::vendor_a();
        p.name = "test-small".to_owned();
        p.geometry = Geometry::tiny();
        p
    }

    /// Erratic-cell probability per program operation at the given wear.
    pub fn defect_prob(&self, pec: u32) -> f64 {
        self.defect_prob_base + self.defect_prob_per_kpec * f64::from(pec) / 1000.0
    }

    /// The retention time factor: fraction of the `horizon_days` loss
    /// realized after `days` (concave, logarithmic decay).
    pub fn retention_time_factor(&self, days: f64) -> f64 {
        let r = &self.retention;
        if days <= 0.0 {
            return 0.0;
        }
        (1.0 + days / r.tau_days).ln() / (1.0 + r.horizon_days / r.tau_days).ln()
    }

    /// Total voltage loss (level units) for a cell at voltage `v`, wear
    /// `pec`, between ages `from_days` and `to_days`, excluding noise.
    pub fn retention_loss(&self, v: f64, pec: u32, from_days: f64, to_days: f64) -> f64 {
        let r = &self.retention;
        if v <= 0.0 {
            return 0.0;
        }
        let wear = (f64::from(pec) / 1000.0).powf(r.pec_exponent);
        let rate = r.base_loss + r.loss_per_kpec * wear;
        let dt = self.retention_time_factor(to_days) - self.retention_time_factor(from_days);
        rate * dt * (v / r.reference_voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_profiles_differ() {
        let a = ChipProfile::vendor_a();
        let b = ChipProfile::vendor_b();
        assert_ne!(a.geometry, b.geometry);
        assert_ne!(a.programmed.mean, b.programmed.mean);
        assert_eq!(a.endurance_pec, 3000);
        assert_eq!(b.endurance_pec, 3000);
    }

    #[test]
    fn timing_matches_paper_section_6_1() {
        let t = TimingModel::paper_vendor_a();
        assert_eq!(t.read_us, 90.0);
        assert_eq!(t.program_us, 1200.0);
        assert_eq!(t.erase_us, 5000.0);
        // §8: PP time of 600 us.
        assert_eq!(t.partial_program_us, 600.0);
    }

    #[test]
    fn defect_prob_grows_with_wear() {
        let p = ChipProfile::vendor_a();
        assert!(p.defect_prob(0) < p.defect_prob(1000));
        assert!(p.defect_prob(1000) < p.defect_prob(3000));
    }

    #[test]
    fn retention_time_factor_is_concave_and_normalized() {
        let p = ChipProfile::vendor_a();
        assert_eq!(p.retention_time_factor(0.0), 0.0);
        let f1 = p.retention_time_factor(1.0);
        let f30 = p.retention_time_factor(30.0);
        let f120 = p.retention_time_factor(120.0);
        assert!(f1 > 0.0 && f1 < f30 && f30 < f120);
        assert!((f120 - 1.0).abs() < 1e-12);
        // Concavity: first day costs more than day 119->120.
        assert!(f1 > f120 - p.retention_time_factor(119.0));
    }

    #[test]
    fn retention_loss_increments_compose() {
        let p = ChipProfile::vendor_a();
        let full = p.retention_loss(165.0, 2000, 0.0, 120.0);
        let part =
            p.retention_loss(165.0, 2000, 0.0, 30.0) + p.retention_loss(165.0, 2000, 30.0, 120.0);
        assert!((full - part).abs() < 1e-12);
        // Calibration: ≈3 level units at the programmed reference after the
        // 4-month horizon at PEC 2000 (drives the paper's 2.3x public-BER
        // growth in Fig. 11).
        assert!((2.4..3.8).contains(&full), "loss {full}");
    }

    #[test]
    fn retention_scales_with_voltage_and_wear() {
        let p = ChipProfile::vendor_a();
        let hi = p.retention_loss(165.0, 2000, 0.0, 120.0);
        let lo = p.retention_loss(40.0, 2000, 0.0, 120.0);
        assert!(lo < hi && lo > 0.0);
        assert!(p.retention_loss(165.0, 0, 0.0, 120.0) < 0.1 * hi);
    }
}
