//! The simulated flash package and its tester-level command set.

use rand::{Rng, SeedableRng};

use crate::bits::BitPattern;
use crate::block::{BlockMeta, VoltState};
use crate::device::{CmdResult, NandCmd};
use crate::error::FlashError;
use crate::geometry::{BlockId, Geometry, PageId};
use crate::latent;
use crate::meter::{FaultKind, Meter, MeterSnapshot, OpKind};
use crate::noise::Gaussian;
use crate::profile::ChipProfile;
use crate::rng::ChipRng;
use crate::snapshot::{DeviceState, SnapshotError, StateReader, StateWriter};
use crate::{Level, Result, SLC_READ_REF};

/// Cells at or above this true voltage are treated as programmed for
/// interference purposes (programmed cells' charge dwarfs coupling bumps,
/// so bumps are only tracked for cells below it).
const INTERFERENCE_CEILING: f32 = 100.0;

/// Nominal number of fine program steps a unit-speed cell needs to reach the
/// programmed state; the PT-HI covert channel measures deviations from it.
const NOMINAL_PROGRAM_STEPS: f64 = 20.0;

/// Cache per-cell coupling latents when a block holds at most this many
/// cells (the cache costs 4 bytes per cell; paper-geometry blocks at 37 M
/// cells compute latents on the fly instead).
const COUPLING_CACHE_MAX_CELLS: usize = 16 << 20;

/// One simulated NAND flash package.
///
/// All randomness derives from the `seed`; two chips constructed with the
/// same profile and seed behave identically, and different seeds model
/// different physical samples of the same chip model (the paper
/// characterizes four samples of the vendor-A model).
///
/// See the [crate docs](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct Chip {
    profile: ChipProfile,
    seed: u64,
    chip_offset: f64,
    blocks: Vec<BlockMeta>,
    rng: ChipRng,
    gauss: Gaussian,
    meter: Meter,
    /// Multiplier on the profile's read-noise sigma, normally `1.0`. Fault
    /// middleware sets it around reads to model noise-spike windows; it is
    /// always applied, so the fault-free path multiplies by exactly `1.0`
    /// and stays bit-identical to a chip that never saw middleware.
    read_noise_scale: f64,
    /// Scratch buffer for bulk Gaussian draws ([`Gaussian::fill`]). Pure
    /// scratch: the RNG stream position is the state, so this is never
    /// serialized or compared.
    noise_scratch: Vec<f64>,
}

/// Applies `mean + sigma·z` with exactly the arithmetic of
/// [`Gaussian::sample_with`], so bulk kernels fed by [`Gaussian::fill`]
/// stay bit-identical to the scalar sampling path they replace.
#[inline]
fn scaled(mean: f64, sigma: f64, z: f64) -> f64 {
    mean + sigma * z
}

/// Refills `scratch` with exactly `n` standard-normal draws via
/// [`Gaussian::fill`] (consuming the RNG stream in scalar order) and
/// returns it as a slice.
fn fill_scratch<'a>(
    scratch: &'a mut Vec<f64>,
    gauss: &mut Gaussian,
    rng: &mut ChipRng,
    n: usize,
) -> &'a [f64] {
    scratch.clear();
    scratch.resize(n, 0.0);
    gauss.fill(rng, scratch);
    scratch
}

/// Bulk read kernel: thresholds each cell's measured voltage (`volts[i]`
/// plus a fresh noise draw, floored at 0) against `vref` and packs the
/// outcomes MSB-first into `bytes`, eight cells per byte — the
/// byte-at-a-time twin of the scalar compare in the pre-batching read
/// path. The tail byte keeps its padding bits zero.
fn pack_threshold_reads<V: Copy + Into<f64>>(
    volts: &[V],
    noise: &[f64],
    sigma: f64,
    vref: f64,
    bytes: &mut [u8],
) {
    debug_assert_eq!(volts.len(), noise.len());
    debug_assert_eq!(bytes.len(), volts.len().div_ceil(8));
    let full = volts.len() / 8;
    for (bi, byte) in bytes[..full].iter_mut().enumerate() {
        let v = &volts[bi * 8..bi * 8 + 8];
        let z = &noise[bi * 8..bi * 8 + 8];
        let mut acc = 0u8;
        for k in 0..8 {
            let measured = v[k].into() + scaled(0.0, sigma, z[k]);
            // Measurement floor: negative voltages read as level 0.
            acc = (acc << 1) | u8::from(measured.max(0.0) < vref);
        }
        *byte = acc;
    }
    let rem = volts.len() % 8;
    if rem > 0 {
        let mut acc = 0u8;
        for k in 0..rem {
            let measured = volts[full * 8 + k].into() + scaled(0.0, sigma, noise[full * 8 + k]);
            acc = (acc << 1) | u8::from(measured.max(0.0) < vref);
        }
        bytes[full] = acc << (8 - rem);
    }
}

impl Chip {
    /// Creates a chip of the given model. `seed` selects the physical
    /// sample: manufacturing offsets, per-cell latents and all process noise
    /// derive from it.
    pub fn new(profile: ChipProfile, seed: u64) -> Self {
        let blocks = (0..profile.geometry.blocks_per_chip).map(|_| BlockMeta::new()).collect();
        let chip_offset =
            latent::std_normal(seed, 0, 0, latent::splitmix64(seed)) * profile.chip_sigma;
        Chip {
            profile,
            seed,
            chip_offset,
            blocks,
            rng: ChipRng::seed_from_u64(latent::splitmix64(seed ^ 0xA5A5_5A5A)),
            gauss: Gaussian::new(),
            meter: Meter::new(),
            read_noise_scale: 1.0,
            noise_scratch: Vec::new(),
        }
    }

    /// The package geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.profile.geometry
    }

    /// The calibration profile.
    pub fn profile(&self) -> &ChipProfile {
        &self.profile
    }

    /// The sample seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Cumulative operation counts, simulated device time and energy.
    pub fn meter(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }

    /// Zeroes the operation meter (e.g. after preconditioning).
    pub fn reset_meter(&mut self) {
        self.meter.reset();
    }

    /// Program/erase cycles endured by a block.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockOutOfRange`] for an invalid block.
    pub fn block_pec(&self, b: BlockId) -> Result<u32> {
        self.check_block(b)?;
        Ok(self.blocks[b.0 as usize].pec)
    }

    /// Marks a block bad; subsequent operations on it fail.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockOutOfRange`] for an invalid block.
    pub fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        self.check_block(b)?;
        self.blocks[b.0 as usize].bad = true;
        Ok(())
    }

    /// Whether a block is marked bad.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockOutOfRange`] for an invalid block.
    pub fn is_bad(&self, b: BlockId) -> Result<bool> {
        self.check_block(b)?;
        Ok(self.blocks[b.0 as usize].bad)
    }

    /// Marks a block as grown bad, as a controller would after an
    /// unrecoverable program/erase failure: subsequent program, partial
    /// program and erase operations fail with
    /// [`FlashError::GrownBadBlock`], but the block still reads so
    /// surviving data can be migrated off it.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockOutOfRange`] for an invalid block.
    pub fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        self.check_block(b)?;
        if !self.blocks[b.0 as usize].grown_bad {
            self.blocks[b.0 as usize].grown_bad = true;
            self.record_fault(FaultKind::GrownBad);
        }
        Ok(())
    }

    /// Whether a block has grown bad (at runtime, via the fault plan or
    /// [`grow_bad_block`](Self::grow_bad_block)).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockOutOfRange`] for an invalid block.
    pub fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        self.check_block(b)?;
        Ok(self.blocks[b.0 as usize].grown_bad)
    }

    /// Advances simulated wall-clock time without issuing an operation
    /// (retry backoff); accounted separately in the meter's `wait_time_us`.
    pub fn advance_time_us(&mut self, us: f64) {
        assert!(us >= 0.0, "time cannot run backwards");
        self.meter.add_wait_us(us);
    }

    /// Scales the read-noise sigma applied by subsequent reads and probes
    /// (`1.0` = the profile's calibrated noise). Fault middleware uses this
    /// to apply noise-spike windows without owning the read path.
    pub fn set_read_noise_scale(&mut self, scale: f64) {
        assert!(scale >= 0.0, "noise scale cannot be negative");
        self.read_noise_scale = scale;
    }

    /// The current read-noise multiplier.
    pub fn read_noise_scale(&self) -> f64 {
        self.read_noise_scale
    }

    /// Whether a page has been programmed since its block's last erase.
    ///
    /// # Errors
    ///
    /// Returns an addressing error for an invalid page.
    pub fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        self.check_page(p)?;
        Ok(self.blocks[p.block.0 as usize]
            .state
            .as_ref()
            .is_some_and(|s| s.page_programmed[p.page as usize]))
    }

    /// Frees the bulky per-cell voltage state of a block while keeping its
    /// physical identity (wear, manufacturing offsets, stress damage). The
    /// block reads as freshly erased afterwards. Useful when sweeping many
    /// paper-geometry blocks (37 M cells each) through an experiment.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockOutOfRange`] for an invalid block.
    pub fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        self.check_block(b)?;
        let meta = &mut self.blocks[b.0 as usize];
        meta.state = None;
        meta.coupling_cache = None;
        Ok(())
    }

    /// Erases a block: every cell returns to the (negatively charged) erased
    /// state, the wear counter increments, and any partial-program charge
    /// bookkeeping is cleared. This is the only operation that lowers cell
    /// voltages (paper §3).
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn erase_block(&mut self, b: BlockId) -> Result<()> {
        self.check_usable_block(b)?;
        self.check_not_grown_bad(b)?;
        self.blocks[b.0 as usize].pec = self.blocks[b.0 as usize].pec.saturating_add(1);
        self.redraw_erased(b);
        self.meter_record(OpKind::Erase);
        Ok(())
    }

    /// Fast-path preconditioning: applies `n` program/erase cycles of wear
    /// to a block without simulating each cycle, leaving it erased at the
    /// new wear level. Not metered — preconditioning happens outside the
    /// measured workload on a real tester too.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        self.check_usable_block(b)?;
        self.blocks[b.0 as usize].pec = self.blocks[b.0 as usize].pec.saturating_add(n);
        self.redraw_erased(b);
        Ok(())
    }

    /// Programs a page with a data pattern: bit `0` charges the cell to the
    /// programmed distribution, bit `1` leaves it erased. Programming
    /// couples interference onto neighboring wordlines (paper §4) and may
    /// leave a few cells erratic (defects). A page may only be programmed
    /// once per erase.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, or
    /// if the page was already programmed since the last erase.
    pub fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        self.check_usable_page(p)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.profile.geometry.cells_per_page();
        if data.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: data.len() });
        }
        self.ensure_state(p.block);

        let pec = self.blocks[p.block.0 as usize].pec;
        if self.blocks[p.block.0 as usize].state.as_ref().unwrap().page_programmed[p.page as usize]
        {
            return Err(FlashError::PageAlreadyProgrammed(p));
        }

        // Effective programmed distribution for this pass.
        let prog = &self.profile.programmed;
        let kpec = f64::from(pec) / 1000.0;
        let pass_noise =
            self.gauss.sample_with(&mut self.rng, 0.0, self.profile.program_pass_sigma);
        let mean = prog.mean
            + self.chip_offset
            + self.block_offset(p.block)
            + self.page_offset(p)
            + prog.drift_per_kpec * kpec
            + pass_noise;
        let sigma = prog.sigma + prog.widen_per_kpec * kpec;

        let base = p.page as usize * cpp;
        let programmed_cells = data.count_zeros();
        {
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            // One bulk draw for all programmed cells (same count, same
            // order as the old per-cell sampling), then a branch-light
            // placement loop.
            let noise = fill_scratch(
                &mut self.noise_scratch,
                &mut self.gauss,
                &mut self.rng,
                programmed_cells,
            );
            let mut draws = noise.iter();
            for (slot, bit) in state.voltages[base..base + cpp].iter_mut().zip(data.iter()) {
                if !bit {
                    *slot = scaled(mean, sigma, *draws.next().unwrap()) as f32;
                }
            }
            state.page_programmed[p.page as usize] = true;
        }

        // Erratic cells: a handful of victims per program op, worse with wear.
        let lambda = programmed_cells as f64 * self.profile.defect_prob(pec);
        let victims = self.poisson(lambda);
        for _ in 0..victims {
            let i = self.rng.gen_range(0..cpp);
            let v = self.rng.gen_range(0.0..255.0f32);
            self.blocks[p.block.0 as usize].state.as_mut().unwrap().voltages[base + i] = v;
        }

        // Interference onto this wordline's erased cells and onto neighbors.
        self.apply_interference(p, 1.0);

        self.meter_record(OpKind::Program);
        Ok(())
    }

    /// Programs a page and atomically deposits controller metadata in the
    /// page's out-of-band spare area. On real NAND the spare bytes ride the
    /// same program pulse as the data, so either both land or neither does;
    /// a torn program (power cut mid-pulse) leaves the spare absent, which
    /// is the durable-or-absent signal mount-time recovery keys on.
    ///
    /// The cell physics are identical to [`program_page`](Self::program_page)
    /// — the spare consumes no process randomness.
    ///
    /// # Errors
    ///
    /// Fails exactly like [`program_page`](Self::program_page).
    pub fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        self.program_page(p, data)?;
        let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
        state.spares[p.page as usize] = Some(spare.to_vec());
        Ok(())
    }

    /// Reads a page's out-of-band spare area. Spare bytes are read through
    /// controller-grade ECC and are modeled noise-free; `None` means the
    /// spare was never written since the block's last erase (an unwritten
    /// page, a page programmed without a spare, or a torn program). Billed
    /// as a page read.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        self.check_usable_page(p)?;
        self.ensure_state(p.block);
        let spare =
            self.blocks[p.block.0 as usize].state.as_ref().unwrap().spares[p.page as usize].clone();
        self.meter_record(OpKind::Read);
        Ok(spare)
    }

    /// A block erase interrupted `fraction` of the way through its
    /// discharge pulse: every cell's voltage is blended between its old
    /// value and a fresh erased draw (`v = new·f + old·(1−f)`), wear and
    /// bookkeeping advance as for a full erase, and all pages read as
    /// unprogrammed. A controller must treat such a block as needing a
    /// clean erase before reuse.
    ///
    /// # Errors
    ///
    /// Fails like [`erase_block`](Self::erase_block).
    pub fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        self.check_usable_block(b)?;
        self.check_not_grown_bad(b)?;
        self.ensure_state(b);
        let old = self.blocks[b.0 as usize].state.as_ref().unwrap().voltages.clone();
        self.blocks[b.0 as usize].pec = self.blocks[b.0 as usize].pec.saturating_add(1);
        self.redraw_erased(b);
        let f = fraction.clamp(0.0, 1.0) as f32;
        let state = self.blocks[b.0 as usize].state.as_mut().unwrap();
        for (v, &o) in state.voltages.iter_mut().zip(&old) {
            *v = *v * f + o * (1.0 - f);
        }
        self.meter_record(OpKind::Erase);
        Ok(())
    }

    /// Issues one partial-program (PP) step to the masked cells of a page:
    /// an aborted program operation that adds a coarse, noisy increment of
    /// charge to each masked cell (mask bit `1` = nudge that cell). This is
    /// the vendor-specific primitive VT-HI uses to place hidden bits.
    ///
    /// Voltage can only increase; the page must already hold public data.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, or
    /// if the page has not been programmed since the last erase.
    pub fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        self.check_usable_page(p)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.profile.geometry.cells_per_page();
        if mask.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: mask.len() });
        }
        self.ensure_state(p.block);
        if !self.blocks[p.block.0 as usize].state.as_ref().unwrap().page_programmed[p.page as usize]
        {
            return Err(FlashError::PageNotProgrammed(p));
        }

        let pp = self.profile.partial_program;
        let base = p.page as usize * cpp;
        let seed = self.seed;
        let block = p.block.0;
        {
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            let noise = fill_scratch(
                &mut self.noise_scratch,
                &mut self.gauss,
                &mut self.rng,
                mask.count_ones(),
            );
            let mut draws = noise.iter();
            for (i, masked) in mask.iter().enumerate() {
                if !masked {
                    continue;
                }
                let eff = latent::pp_efficiency(seed, block, base + i, pp.eff_sigma_ln);
                let inc =
                    scaled(pp.step_mean, pp.step_sigma, *draws.next().unwrap()).max(0.0) * eff;
                // Charge injection saturates: v' = S - (S - v)·e^(-inc/S).
                // Cells asymptotically approach the saturation level and can
                // never reach the programmed range via partial programming.
                let v = f64::from(state.voltages[base + i]);
                let s = pp.saturation;
                if v < s {
                    state.voltages[base + i] = (s - (s - v) * (-inc / s).exp()) as f32;
                }
                state.mark_pp(base + i);
            }
        }

        // A PP step couples a small fraction of a full program's
        // interference onto neighbors, and can leave neighbor cells erratic
        // (this drives the public-BER cost of small page intervals, §6.3).
        let pp_factor = self.profile.interference.pp_factor;
        self.apply_interference(p, pp_factor);
        self.apply_pp_disturb_defects(p);

        self.meter_record(OpKind::PartialProgram);
        Ok(())
    }

    /// Controller-grade fine partial programming (the vendor-support
    /// variant of §6.2: "an in-controller implementation of voltage hiding
    /// could likely program hidden data in fewer programming steps"): each
    /// masked cell below `target` is charged to `target` plus a small
    /// positive overshoot in a single metered partial-program step. Voltage
    /// never decreases.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, or
    /// if the page has not been programmed since the last erase.
    pub fn fine_partial_program(
        &mut self,
        p: PageId,
        mask: &BitPattern,
        target: Level,
    ) -> Result<()> {
        self.check_usable_page(p)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.profile.geometry.cells_per_page();
        if mask.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: mask.len() });
        }
        self.ensure_state(p.block);
        if !self.blocks[p.block.0 as usize].state.as_ref().unwrap().page_programmed[p.page as usize]
        {
            return Err(FlashError::PageNotProgrammed(p));
        }

        let base = p.page as usize * cpp;
        {
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            let noise = fill_scratch(
                &mut self.noise_scratch,
                &mut self.gauss,
                &mut self.rng,
                mask.count_ones(),
            );
            let mut draws = noise.iter();
            for (i, masked) in mask.iter().enumerate() {
                if !masked {
                    continue;
                }
                let goal = f64::from(target) + scaled(4.0, 2.5, *draws.next().unwrap()).max(0.3);
                let v = f64::from(state.voltages[base + i]);
                if v < goal {
                    state.voltages[base + i] = goal as f32;
                    state.mark_pp(base + i);
                }
            }
        }

        // Fine programming uses smaller pulses: a fraction of the coarse PP
        // interference and disturb risk.
        let pp_factor = self.profile.interference.pp_factor * 0.5;
        self.apply_interference(p, pp_factor);
        self.apply_pp_disturb_defects(p);

        self.meter_record(OpKind::PartialProgram);
        Ok(())
    }

    /// Standard page read against the SLC reference voltage: returns bit `1`
    /// for cells measured below [`SLC_READ_REF`], bit `0` otherwise.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn read_page(&mut self, p: PageId) -> Result<BitPattern> {
        self.read_page_shifted(p, SLC_READ_REF)
    }

    /// Page read with a shifted reference voltage — the vendor command
    /// modern chips expose for retention management (paper §1, [32–35]).
    /// VT-HI decodes hidden data with a single such read at `Vth`.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        let mut bits = BitPattern::zeros(0);
        self.read_page_shifted_into(p, vref, &mut bits)?;
        Ok(bits)
    }

    /// [`read_page_shifted`](Self::read_page_shifted) into a caller-owned
    /// pattern: `out` is resized and refilled, so a Vth sweep or a
    /// steady-state decode loop reuses one allocation instead of paying a
    /// fresh `BitPattern` per read. The per-cell compare runs through the
    /// bulk threshold kernel; results are byte-identical to the historical
    /// scalar path.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks (leaving `out` empty).
    pub fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        out.reset_zeros(0);
        self.check_usable_page(p)?;
        self.ensure_state(p.block);
        let cpp = self.profile.geometry.cells_per_page();
        let base = p.page as usize * cpp;
        let sigma = self.profile.read_noise_sigma * self.read_noise_scale;
        out.reset_zeros(cpp);
        {
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            let noise = fill_scratch(&mut self.noise_scratch, &mut self.gauss, &mut self.rng, cpp);
            pack_threshold_reads(
                &state.voltages[base..base + cpp],
                noise,
                sigma,
                f64::from(vref),
                out.bytes_mut(),
            );
            state.read_count += 1;
        }
        self.meter_record(OpKind::Read);
        Ok(())
    }

    /// Fused multi-`vref` read (`NandCmd::ReadPageSweep`): reads the same
    /// page once per reference voltage, hoisting the address checks, the
    /// block-state borrow and the cells' effective (pre-noise) voltages out
    /// of the per-vref loop. Each read still applies a fresh per-cell noise
    /// draw, in exactly the order the equivalent
    /// [`read_page_shifted`](Self::read_page_shifted) sequence would, so
    /// the results are byte-identical to sequential dispatch. Billed as
    /// `vrefs.len()` reads.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        self.check_usable_page(p)?;
        self.ensure_state(p.block);
        let cpp = self.profile.geometry.cells_per_page();
        let base = p.page as usize * cpp;
        let sigma = self.profile.read_noise_sigma * self.read_noise_scale;
        let mut out = Vec::with_capacity(vrefs.len());
        {
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            for &vref in vrefs {
                let noise =
                    fill_scratch(&mut self.noise_scratch, &mut self.gauss, &mut self.rng, cpp);
                let mut bits = BitPattern::zeros(cpp);
                // The `f32` voltages feed the generic kernel directly:
                // widening per compare is exact and cheaper than staging a
                // page-sized `f64` copy that falls out of cache.
                pack_threshold_reads(
                    &state.voltages[base..base + cpp],
                    noise,
                    sigma,
                    f64::from(vref),
                    bits.bytes_mut(),
                );
                out.push(bits);
                state.read_count += 1;
            }
        }
        for _ in vrefs {
            self.meter_record(OpKind::Read);
        }
        Ok(out)
    }

    /// Per-cell voltage probe (the NDA characterization command, §6.2):
    /// returns each cell's measured level, quantized to `0..=255` with
    /// negative voltages reading as 0.
    ///
    /// Allocating convenience wrapper over
    /// [`probe_voltages_into`](Self::probe_voltages_into) — prefer the
    /// buffer-reuse form in loops.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    #[doc(hidden)]
    pub fn probe_voltages(&mut self, p: PageId) -> Result<Vec<Level>> {
        let mut out = Vec::new();
        self.probe_voltages_into(p, &mut out)?;
        Ok(out)
    }

    /// [`probe_voltages`](Self::probe_voltages) into a caller-owned buffer:
    /// `out` is cleared and refilled, so a sweep over many pages reuses one
    /// allocation instead of paying a fresh `Vec<Level>` per page.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks (leaving `out` cleared).
    pub fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        out.clear();
        self.check_usable_page(p)?;
        self.ensure_state(p.block);
        let cpp = self.profile.geometry.cells_per_page();
        let base = p.page as usize * cpp;
        let sigma = self.profile.read_noise_sigma * self.read_noise_scale;

        {
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            let noise = fill_scratch(&mut self.noise_scratch, &mut self.gauss, &mut self.rng, cpp);
            out.reserve(cpp);
            out.extend(state.voltages[base..base + cpp].iter().zip(noise).map(|(&v, &z)| {
                let measured = f64::from(v) + scaled(0.0, sigma, z);
                measured.round().clamp(0.0, 255.0) as Level
            }));
            state.read_count += 1;
        }
        self.meter_record(OpKind::Probe);
        Ok(())
    }

    /// Batched dispatch of a run of read-class commands (`ReadPage`,
    /// `ReadPageShifted`, `ReadPageSweep`, `ProbeVoltages`) that all address
    /// the same page: the address checks, the block-state borrow and the
    /// cells' effective (pre-noise) voltages are hoisted once for the whole
    /// run, while each command's noise draws and meter billing happen in
    /// exactly the order sequential dispatch would produce — reads leave
    /// voltages untouched, so the hoist is observationally invisible.
    pub(crate) fn exec_read_run(&mut self, p: PageId, cmds: &[NandCmd], out: &mut Vec<CmdResult>) {
        if let Err(e) = self.check_usable_page(p) {
            // Sequential dispatch fails every command the same way.
            for cmd in cmds {
                out.push(match cmd {
                    NandCmd::ReadPage(_) | NandCmd::ReadPageShifted(..) => {
                        CmdResult::Bits(Err(e.clone()))
                    }
                    NandCmd::ReadPageSweep(..) => CmdResult::Sweep(Err(e.clone())),
                    NandCmd::ProbeVoltages(_) => CmdResult::Levels(Err(e.clone())),
                    _ => unreachable!("exec_read_run only receives read-class commands"),
                });
            }
            return;
        }
        self.ensure_state(p.block);
        let cpp = self.profile.geometry.cells_per_page();
        let base = p.page as usize * cpp;
        let sigma = self.profile.read_noise_sigma * self.read_noise_scale;
        // Meter time/energy are f64 accumulators, so ops must be billed in
        // command order — collect the kinds here and replay them once the
        // block-state borrow ends.
        let mut billed: Vec<OpKind> = Vec::with_capacity(cmds.len());
        {
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            // The `f32` voltages feed the generic kernels directly: widening
            // per compare is exact and cheaper than staging a page-sized
            // `f64` copy that falls out of cache on full-size pages.
            for cmd in cmds {
                match cmd {
                    NandCmd::ReadPage(_) | NandCmd::ReadPageShifted(..) => {
                        let vref = match cmd {
                            NandCmd::ReadPageShifted(_, vref) => *vref,
                            _ => SLC_READ_REF,
                        };
                        let noise = fill_scratch(
                            &mut self.noise_scratch,
                            &mut self.gauss,
                            &mut self.rng,
                            cpp,
                        );
                        let mut bits = BitPattern::zeros(cpp);
                        pack_threshold_reads(
                            &state.voltages[base..base + cpp],
                            noise,
                            sigma,
                            f64::from(vref),
                            bits.bytes_mut(),
                        );
                        state.read_count += 1;
                        billed.push(OpKind::Read);
                        out.push(CmdResult::Bits(Ok(bits)));
                    }
                    NandCmd::ReadPageSweep(_, vrefs) => {
                        let mut res = Vec::with_capacity(vrefs.len());
                        for &vref in vrefs {
                            let noise = fill_scratch(
                                &mut self.noise_scratch,
                                &mut self.gauss,
                                &mut self.rng,
                                cpp,
                            );
                            let mut bits = BitPattern::zeros(cpp);
                            pack_threshold_reads(
                                &state.voltages[base..base + cpp],
                                noise,
                                sigma,
                                f64::from(vref),
                                bits.bytes_mut(),
                            );
                            state.read_count += 1;
                            billed.push(OpKind::Read);
                            res.push(bits);
                        }
                        out.push(CmdResult::Sweep(Ok(res)));
                    }
                    NandCmd::ProbeVoltages(_) => {
                        let noise = fill_scratch(
                            &mut self.noise_scratch,
                            &mut self.gauss,
                            &mut self.rng,
                            cpp,
                        );
                        let levels = state.voltages[base..base + cpp]
                            .iter()
                            .zip(noise)
                            .map(|(&v, &z)| {
                                let measured = f64::from(v) + scaled(0.0, sigma, z);
                                measured.round().clamp(0.0, 255.0) as Level
                            })
                            .collect();
                        state.read_count += 1;
                        billed.push(OpKind::Probe);
                        out.push(CmdResult::Levels(Ok(levels)));
                    }
                    _ => unreachable!("exec_read_run only receives read-class commands"),
                }
            }
        }
        for kind in billed {
            self.meter_record(kind);
        }
    }

    /// Advances retention time for the whole chip: charge leaks from every
    /// materialized cell, faster on worn blocks and faster for charge that
    /// was deposited by partial programming (paper §8 "Reliability"; the
    /// paper emulates this by baking chips in an oven).
    pub fn age_days(&mut self, days: f64) {
        assert!(days >= 0.0, "retention time cannot be negative");
        if days == 0.0 {
            return;
        }
        let profile = self.profile.clone();
        let floor = (profile.erased.mean - 3.0 * profile.erased.sigma) as f32;
        let cpp = profile.geometry.cells_per_page();
        for meta in &mut self.blocks {
            let pec = meta.pec;
            let Some(state) = meta.state.as_mut() else { continue };
            let from = state.aged_days;
            let to = from + days;
            let dt_frac = profile.retention_time_factor(to) - profile.retention_time_factor(from);
            let noise_sigma = profile.retention.noise_sigma * dt_frac.max(0.0).sqrt();
            // Chunk per page: only cells above the floor draw noise, and a
            // whole chunk's draws come from one bulk fill (paper-geometry
            // blocks hold 37 M cells, so the scratch stays page-sized).
            let total = state.voltages.len();
            let mut start = 0usize;
            while start < total {
                let end = (start + cpp).min(total);
                let charged = state.voltages[start..end].iter().filter(|&&v| v > 0.0).count();
                let noise =
                    fill_scratch(&mut self.noise_scratch, &mut self.gauss, &mut self.rng, charged);
                let mut draws = noise.iter();
                for cell in start..end {
                    let v = state.voltages[cell];
                    if v <= 0.0 {
                        continue;
                    }
                    let mut loss = profile.retention_loss(f64::from(v), pec, from, to);
                    if state.is_pp(cell) {
                        loss *= profile.retention.pp_penalty;
                    }
                    let n = scaled(0.0, noise_sigma, *draws.next().unwrap());
                    state.voltages[cell] = (f64::from(v) - loss + n).max(f64::from(floor)) as f32;
                }
                start = end;
            }
            state.aged_days = to;
        }
    }

    /// PT-HI substrate: applies `cycles` stress-programming cycles to the
    /// masked cells, permanently shifting their program speed (the covert
    /// channel of Wang et al. \[38\]). The page's contents are destroyed
    /// (stress cycles are program operations). Metered as `cycles` program
    /// operations.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, or pattern-length mismatch.
    pub fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        self.check_usable_page(p)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.profile.geometry.cells_per_page();
        if mask.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: mask.len() });
        }
        self.ensure_state(p.block);
        let base = p.page as usize * cpp;
        let per_cycle = self.profile.stress_speed_per_cycle;
        for i in 0..cpp {
            if mask.get(i) {
                let jitter = 1.0 + 0.15 * self.gauss.sample(&mut self.rng);
                let delta = (per_cycle * f64::from(cycles) * jitter) as f32;
                *self.blocks[p.block.0 as usize].stress.entry(base + i).or_insert(0.0) += delta;
            }
        }
        // Stress cycles leave the page's cells charged; contents are gone.
        {
            let prog = self.profile.programmed;
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            for i in 0..cpp {
                if mask.get(i) {
                    state.voltages[base + i] =
                        self.gauss.sample_with(&mut self.rng, prog.mean, prog.sigma) as f32;
                }
            }
            state.page_programmed[p.page as usize] = true;
        }
        for _ in 0..cycles {
            self.meter_record(OpKind::Program);
        }
        Ok(())
    }

    /// PT-HI substrate: incrementally programs a page in `steps` fine steps,
    /// reading between steps, and reports for each cell the step index at
    /// which it crossed into the programmed state. Stressed cells cross
    /// earlier; the contrast decays as public wear accumulates. Destroys the
    /// page contents (this is why PT-HI decoding is destructive). Metered as
    /// `steps` partial-programs plus `steps` reads.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        self.check_usable_page(p)?;
        self.check_not_grown_bad(p.block)?;
        self.ensure_state(p.block);
        let cpp = self.profile.geometry.cells_per_page();
        let base = p.page as usize * cpp;
        let pec = self.blocks[p.block.0 as usize].pec;
        let decay = (1.0 - f64::from(pec) / self.profile.stress_decay_pec).max(0.0);
        let step_noise = 0.8 + 0.0015 * f64::from(pec);

        let mut out = Vec::with_capacity(cpp);
        for i in 0..cpp {
            let mut speed =
                latent::prog_speed(self.seed, p.block.0, base + i, self.profile.prog_speed_sigma);
            if let Some(delta) = self.blocks[p.block.0 as usize].stress.get(&(base + i)) {
                speed += f64::from(*delta) * decay;
            }
            let jitter = self.gauss.sample_with(&mut self.rng, 0.0, step_noise);
            let cross = (NOMINAL_PROGRAM_STEPS / speed.max(0.05) + jitter)
                .round()
                .clamp(1.0, f64::from(steps));
            out.push(cross as u16);
        }

        // The probe programs the page: contents destroyed.
        {
            let prog = self.profile.programmed;
            let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
            for i in 0..cpp {
                state.voltages[base + i] =
                    self.gauss.sample_with(&mut self.rng, prog.mean, prog.sigma) as f32;
            }
            state.page_programmed[p.page as usize] = true;
        }
        for _ in 0..steps {
            self.meter_record(OpKind::PartialProgram);
            self.meter_record(OpKind::Read);
        }
        Ok(out)
    }

    /// Crate-internal: places one cell of a programmed page at an exact
    /// lobe target (the MLC programming pass).
    pub(crate) fn place_cell_level(&mut self, p: PageId, cell: usize, target: f64, sigma: f64) {
        let cpp = self.profile.geometry.cells_per_page();
        let base = p.page as usize * cpp;
        let v = self.gauss.sample_with(&mut self.rng, target, sigma) as f32;
        let state = self.blocks[p.block.0 as usize].state.as_mut().unwrap();
        state.voltages[base + cell] = v;
    }

    /// Bills one operation to the meter, at the profile's timing costs.
    /// Middleware uses this to account failed attempts that never reach the
    /// chip physics.
    pub fn record_op(&mut self, kind: OpKind) {
        self.meter.record(kind, &self.profile.timing);
    }

    /// Records one fault event on the meter.
    pub fn record_fault(&mut self, kind: FaultKind) {
        self.meter.record_fault(kind);
    }

    /// Crate-internal alias kept for the MLC/TLC programming passes.
    pub(crate) fn meter_record(&mut self, kind: OpKind) {
        self.record_op(kind);
    }

    // ---- internal helpers -------------------------------------------------

    fn check_not_grown_bad(&self, b: BlockId) -> Result<()> {
        if self.blocks[b.0 as usize].grown_bad {
            return Err(FlashError::GrownBadBlock(b));
        }
        Ok(())
    }

    fn check_block(&self, b: BlockId) -> Result<()> {
        if !self.profile.geometry.contains_block(b) {
            return Err(FlashError::BlockOutOfRange(b));
        }
        Ok(())
    }

    fn check_usable_block(&self, b: BlockId) -> Result<()> {
        self.check_block(b)?;
        if self.blocks[b.0 as usize].bad {
            return Err(FlashError::BadBlock(b));
        }
        Ok(())
    }

    fn check_page(&self, p: PageId) -> Result<()> {
        self.check_block(p.block)?;
        if !self.profile.geometry.contains_page(p) {
            return Err(FlashError::PageOutOfRange(p));
        }
        Ok(())
    }

    fn check_usable_page(&self, p: PageId) -> Result<()> {
        self.check_page(p)?;
        if self.blocks[p.block.0 as usize].bad {
            return Err(FlashError::BadBlock(p.block));
        }
        Ok(())
    }

    fn block_offset(&self, b: BlockId) -> f64 {
        latent::std_normal(self.seed, b.0, 0, latent::SALT_BLOCK_OFFSET) * self.profile.block_sigma
    }

    fn page_offset(&self, p: PageId) -> f64 {
        latent::std_normal(self.seed, p.block.0, p.page as usize, latent::SALT_PAGE_OFFSET)
            * self.profile.page_sigma
    }

    /// Materializes the voltage state of a block (freshly erased at its
    /// current wear) if absent.
    fn ensure_state(&mut self, b: BlockId) {
        if self.blocks[b.0 as usize].state.is_none() {
            let g = self.profile.geometry;
            self.blocks[b.0 as usize].state =
                Some(Box::new(VoltState::new(g.cells_per_block(), g.pages_per_block as usize)));
            self.redraw_erased(b);
        }
    }

    /// Redraws every cell of a block from the erased distribution at the
    /// block's current wear, clearing page/PP bookkeeping.
    fn redraw_erased(&mut self, b: BlockId) {
        self.ensure_state(b);
        let g = self.profile.geometry;
        let cpp = g.cells_per_page();
        let erased = self.profile.erased;
        let kpec = f64::from(self.blocks[b.0 as usize].pec) / 1000.0;
        let chip_off = self.chip_offset;
        let block_off = self.block_offset(b);
        let sigma = erased.sigma + erased.widen_per_kpec * kpec;

        // Page means are pure latents — precompute them so the fill loop
        // below holds a single borrow of the block state.
        let means: Vec<f64> = (0..g.pages_per_block)
            .map(|page| {
                erased.mean
                    + erased.drift_per_kpec * kpec
                    + chip_off
                    + block_off
                    + self.page_offset(PageId::new(b, page))
            })
            .collect();

        let state = self.blocks[b.0 as usize].state.as_mut().unwrap();
        for (page, &mean) in means.iter().enumerate() {
            let base = page * cpp;
            let noise = fill_scratch(&mut self.noise_scratch, &mut self.gauss, &mut self.rng, cpp);
            for (slot, &z) in state.voltages[base..base + cpp].iter_mut().zip(noise) {
                *slot = scaled(mean, sigma, z) as f32;
            }
        }
        state.page_programmed.iter_mut().for_each(|x| *x = false);
        state.pp_written = None;
        state.aged_days = 0.0;
        state.read_count = 0;
        state.spares.iter_mut().for_each(|s| *s = None);
    }

    /// Jittered per-block coupling-distribution parameters `(median,
    /// sigma_ln)`. The coupling distribution's median and log-sigma carry
    /// independent per-block manufacturing jitter: the erased tail's mass
    /// *and slope* vary naturally between blocks.
    fn coupling_params(&self, b: BlockId) -> (f64, f64) {
        let inter = &self.profile.interference;
        let median = inter.coupling_median
            * (inter.coupling_median_jitter
                * latent::std_normal(self.seed, b.0, 0, latent::SALT_COUPLING_MEDIAN))
            .exp();
        let sigma_ln = inter.coupling_sigma_ln
            + inter.coupling_sigma_jitter
                * latent::std_normal(self.seed, b.0, 0, latent::SALT_COUPLING_SIGMA);
        (median, sigma_ln)
    }

    /// Materializes the per-cell coupling cache of a block when the
    /// geometry is small enough to afford one (4 bytes per cell;
    /// paper-geometry blocks at 37 M cells derive latents on the fly).
    fn ensure_coupling_cache(&mut self, b: BlockId, median: f64, sigma_ln: f64) {
        let cells = self.profile.geometry.cells_per_block();
        if cells > COUPLING_CACHE_MAX_CELLS || self.blocks[b.0 as usize].coupling_cache.is_some() {
            return;
        }
        let cap = self.profile.interference.coupling_cap;
        let cache: Vec<f32> = (0..cells)
            .map(|c| latent::coupling(self.seed, b.0, c, median, sigma_ln, cap) as f32)
            .collect();
        self.blocks[b.0 as usize].coupling_cache = Some(cache);
    }

    /// Couples interference charge from a program (factor 1.0) or PP step
    /// (factor `pp_factor`) on `source` onto low-voltage cells of the source
    /// wordline and its neighbors at distance 1 and 2.
    fn apply_interference(&mut self, source: PageId, factor: f64) {
        let g = self.profile.geometry;
        let inter = self.profile.interference;
        let cpp = g.cells_per_page();
        let pages = g.pages_per_block as i64;
        let src = i64::from(source.page);
        // Per-block coupling parameters (and, when affordable, the per-cell
        // coupling cache) are hoisted out of the per-cell loop: re-deriving
        // the jitter latents costs two SplitMix64 + inverse-CDF chains per
        // bump, and dominated this path before hoisting.
        let (median, sigma_ln) = self.coupling_params(source.block);
        self.ensure_coupling_cache(source.block, median, sigma_ln);
        let seed = self.seed;
        let block = source.block.0;

        for (d, w) in [
            (0i64, 1.0),
            (-1, 1.0),
            (1, 1.0),
            (-2, inter.distance2_factor),
            (2, inter.distance2_factor),
        ] {
            let q = src + d;
            if q < 0 || q >= pages {
                continue;
            }
            // Independent per-block / per-page interference strength: the
            // erased tail's cover noise (not cancellable from the
            // programmed lobe).
            let scale = (inter.bump_scale_sigma_block
                * latent::std_normal(seed, block, 0, latent::SALT_BUMP_SCALE_BLOCK)
                + inter.bump_scale_sigma_page
                    * latent::std_normal(seed, block, q as usize, latent::SALT_BUMP_SCALE_PAGE))
            .exp();
            let weight = w * factor * scale;
            let bump_mean = inter.bump_mean * weight;
            let bump_sigma = inter.bump_sigma * weight;
            let base = q as usize * cpp;
            let meta = &mut self.blocks[source.block.0 as usize];
            let cache = meta.coupling_cache.as_deref();
            let state = meta.state.as_mut().unwrap();
            // Candidacy depends only on each cell's pre-bump voltage, so
            // counting first and bulk-drawing the candidates' noise keeps
            // the draw order identical to the old per-cell sampling.
            let candidates = state.voltages[base..base + cpp]
                .iter()
                .filter(|&&v| v < INTERFERENCE_CEILING)
                .count();
            let noise =
                fill_scratch(&mut self.noise_scratch, &mut self.gauss, &mut self.rng, candidates);
            let mut draws = noise.iter();
            for (i, slot) in state.voltages[base..base + cpp].iter_mut().enumerate() {
                let v = *slot;
                if v >= INTERFERENCE_CEILING {
                    continue;
                }
                let c = match cache {
                    Some(cache) => f64::from(cache[base + i]),
                    None => latent::coupling(
                        seed,
                        block,
                        base + i,
                        median,
                        sigma_ln,
                        inter.coupling_cap,
                    ),
                };
                // Coupling saturates as stored charge approaches the
                // interference ceiling: no erased cell drifts toward the
                // read reference however many neighbors are programmed.
                let damping =
                    (1.0 - f64::from(v.max(0.0)) / inter.interference_saturation).clamp(0.0, 1.0);
                let bump =
                    scaled(bump_mean, bump_sigma, *draws.next().unwrap()).max(0.0) * c * damping;
                *slot += bump as f32;
            }
        }
    }

    /// Rare erratic flips on neighboring wordlines caused by a PP step.
    fn apply_pp_disturb_defects(&mut self, source: PageId) {
        let g = self.profile.geometry;
        let inter = self.profile.interference;
        let cpp = g.cells_per_page();
        let pages = g.pages_per_block as i64;
        let src = i64::from(source.page);

        for (d, w) in
            [(-1i64, 1.0), (1, 1.0), (-2, inter.distance2_factor), (2, inter.distance2_factor)]
        {
            let q = src + d;
            if q < 0 || q >= pages {
                continue;
            }
            let lambda = cpp as f64 * inter.pp_disturb_defect_prob * w;
            let victims = self.poisson(lambda);
            let base = q as usize * cpp;
            for _ in 0..victims {
                let i = self.rng.gen_range(0..cpp);
                let v = self.rng.gen_range(0.0..255.0f32);
                self.blocks[source.block.0 as usize].state.as_mut().unwrap().voltages[base + i] = v;
            }
        }
    }

    /// Knuth's Poisson sampler; all lambdas in this crate are tiny.
    fn poisson(&mut self, lambda: f64) -> usize {
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // unreachable for the lambdas used here
            }
        }
    }
}

impl DeviceState for Chip {
    fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.seed);
        let rng = self.rng.state();
        for word in rng {
            w.put_u64(word);
        }
        match self.gauss.spare() {
            Some(z) => {
                w.put_bool(true);
                w.put_f64(z);
            }
            None => w.put_bool(false),
        }
        w.put_f64(self.read_noise_scale);
        let snap = self.meter.snapshot();
        for kind in OpKind::ALL {
            w.put_u64(snap.count(kind));
        }
        for kind in FaultKind::ALL {
            w.put_u64(snap.fault_count(kind));
        }
        w.put_f64(snap.device_time_us);
        w.put_f64(snap.wait_time_us);
        w.put_f64(snap.energy_uj);

        w.put_len(self.blocks.len());
        for meta in &self.blocks {
            w.put_u32(meta.pec);
            w.put_bool(meta.bad);
            w.put_bool(meta.grown_bad);
            // HashMap iteration order is nondeterministic: sort by cell so
            // the same chip state always serializes to the same bytes.
            let mut stress: Vec<(usize, f32)> = meta.stress.iter().map(|(&c, &d)| (c, d)).collect();
            stress.sort_unstable_by_key(|&(c, _)| c);
            w.put_len(stress.len());
            for (cell, delta) in stress {
                w.put_len(cell);
                w.put_f32(delta);
            }
            // The coupling cache is a pure function of seed and geometry —
            // rebuilt lazily on demand, never serialized.
            match &meta.state {
                None => w.put_bool(false),
                Some(state) => {
                    w.put_bool(true);
                    w.put_len(state.voltages.len());
                    for &v in &state.voltages {
                        w.put_f32(v);
                    }
                    w.put_len(state.page_programmed.len());
                    for &p in &state.page_programmed {
                        w.put_bool(p);
                    }
                    match &state.pp_written {
                        None => w.put_bool(false),
                        Some(words) => {
                            w.put_bool(true);
                            w.put_len(words.len());
                            for &word in words {
                                w.put_u64(word);
                            }
                        }
                    }
                    w.put_f64(state.aged_days);
                    w.put_u64(state.read_count);
                    w.put_len(state.spares.len());
                    for spare in &state.spares {
                        match spare {
                            None => w.put_bool(false),
                            Some(bytes) => {
                                w.put_bool(true);
                                w.put_len(bytes.len());
                                w.put_bytes(bytes);
                            }
                        }
                    }
                }
            }
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> std::result::Result<(), SnapshotError> {
        let seed = r.get_u64()?;
        if seed != self.seed {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot is of chip seed {seed:#x}, restoring into seed {:#x}",
                self.seed
            )));
        }
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = r.get_u64()?;
        }
        self.rng = ChipRng::from_state(rng);
        self.gauss.set_spare(if r.get_bool()? { Some(r.get_f64()?) } else { None });
        self.read_noise_scale = r.get_f64()?;
        let mut counts = [0u64; OpKind::ALL.len()];
        for c in &mut counts {
            *c = r.get_u64()?;
        }
        let mut fault_counts = [0u64; FaultKind::ALL.len()];
        for c in &mut fault_counts {
            *c = r.get_u64()?;
        }
        let device_time_us = r.get_f64()?;
        let wait_time_us = r.get_f64()?;
        let energy_uj = r.get_f64()?;
        self.meter.restore(MeterSnapshot::from_parts(
            counts,
            fault_counts,
            device_time_us,
            wait_time_us,
            energy_uj,
        ));

        let nblocks = r.get_len()?;
        if nblocks != self.blocks.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {nblocks} blocks, device has {}",
                self.blocks.len()
            )));
        }
        let g = self.profile.geometry;
        for meta in &mut self.blocks {
            meta.pec = r.get_u32()?;
            meta.bad = r.get_bool()?;
            meta.grown_bad = r.get_bool()?;
            meta.stress.clear();
            for _ in 0..r.get_len()? {
                let cell = r.get_len()?;
                let delta = r.get_f32()?;
                meta.stress.insert(cell, delta);
            }
            meta.coupling_cache = None;
            meta.state = if r.get_bool()? {
                let cells = r.get_len()?;
                if cells != g.cells_per_block() {
                    return Err(SnapshotError::Mismatch(format!(
                        "snapshot block holds {cells} cells, geometry says {}",
                        g.cells_per_block()
                    )));
                }
                let mut state = VoltState::new(g.cells_per_block(), g.pages_per_block as usize);
                for v in &mut state.voltages {
                    *v = r.get_f32()?;
                }
                let pages = r.get_len()?;
                if pages != state.page_programmed.len() {
                    return Err(SnapshotError::Mismatch(format!(
                        "snapshot block holds {pages} pages, geometry says {}",
                        state.page_programmed.len()
                    )));
                }
                for p in &mut state.page_programmed {
                    *p = r.get_bool()?;
                }
                state.pp_written = if r.get_bool()? {
                    let words = r.get_len()?;
                    if words != g.cells_per_block().div_ceil(64) {
                        return Err(SnapshotError::Corrupt("pp bitset length"));
                    }
                    let mut set = vec![0u64; words];
                    for word in &mut set {
                        *word = r.get_u64()?;
                    }
                    Some(set)
                } else {
                    None
                };
                state.aged_days = r.get_f64()?;
                state.read_count = r.get_u64()?;
                let nspares = r.get_len()?;
                if nspares != state.spares.len() {
                    return Err(SnapshotError::Corrupt("spare-area length"));
                }
                for spare in &mut state.spares {
                    *spare = if r.get_bool()? {
                        let n = r.get_len()?;
                        Some(r.get_bytes(n)?.to_vec())
                    } else {
                        None
                    };
                }
                Some(Box::new(state))
            } else {
                None
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Chip {
        Chip::new(ChipProfile::test_small(), 42)
    }

    fn programmed_page(chip: &mut Chip) -> (PageId, BitPattern) {
        let p = PageId::new(BlockId(0), 2);
        chip.erase_block(p.block).unwrap();
        let data = BitPattern::random_half(
            &mut rand::rngs::SmallRng::seed_from_u64(9),
            chip.geometry().cells_per_page(),
        );
        chip.program_page(p, &data).unwrap();
        (p, data)
    }

    #[test]
    fn program_read_roundtrip_is_nearly_exact() {
        let mut c = chip();
        let (p, data) = programmed_page(&mut c);
        let back = c.read_page(p).unwrap();
        let errs = back.hamming_distance(&data);
        assert!(errs <= 2, "unexpectedly high raw BER: {errs} errors");
    }

    #[test]
    fn double_program_rejected_until_erase() {
        let mut c = chip();
        let (p, data) = programmed_page(&mut c);
        assert_eq!(c.program_page(p, &data), Err(FlashError::PageAlreadyProgrammed(p)));
        c.erase_block(p.block).unwrap();
        c.program_page(p, &data).unwrap();
    }

    #[test]
    fn erase_increments_pec_and_clears_data() {
        let mut c = chip();
        let (p, _) = programmed_page(&mut c);
        let pec0 = c.block_pec(p.block).unwrap();
        c.erase_block(p.block).unwrap();
        assert_eq!(c.block_pec(p.block).unwrap(), pec0 + 1);
        // After erase everything reads as 1 (erased).
        let bits = c.read_page(p).unwrap();
        assert_eq!(bits.count_zeros(), 0);
    }

    #[test]
    fn partial_program_requires_programmed_page() {
        let mut c = chip();
        let p = PageId::new(BlockId(1), 0);
        c.erase_block(p.block).unwrap();
        let mask = BitPattern::ones(c.geometry().cells_per_page());
        assert_eq!(c.partial_program(p, &mask), Err(FlashError::PageNotProgrammed(p)));
    }

    #[test]
    fn partial_program_raises_masked_cells_only() {
        let mut c = chip();
        let (p, data) = programmed_page(&mut c);
        let cpp = c.geometry().cells_per_page();
        let before = {
            // Probe twice and average to tame read noise.
            let a = c.probe_voltages(p).unwrap();
            let b = c.probe_voltages(p).unwrap();
            a.iter().zip(&b).map(|(&x, &y)| (f64::from(x) + f64::from(y)) / 2.0).collect::<Vec<_>>()
        };
        // Nudge the first 32 erased cells.
        let mut mask = BitPattern::zeros(cpp);
        let mut n = 0;
        for i in 0..cpp {
            if data.get(i) {
                mask.set(i, true);
                n += 1;
                if n == 32 {
                    break;
                }
            }
        }
        for _ in 0..6 {
            c.partial_program(p, &mask).unwrap();
        }
        let after = c.probe_voltages(p).unwrap();
        let mut rose = 0;
        for i in 0..cpp {
            if mask.get(i) && f64::from(after[i]) > before[i] + 10.0 {
                rose += 1;
            }
        }
        assert!(rose >= 28, "only {rose}/32 masked cells rose");
    }

    #[test]
    fn fine_partial_program_reaches_target_in_one_step() {
        let mut c = chip();
        let (p, data) = programmed_page(&mut c);
        let cpp = c.geometry().cells_per_page();
        let mut mask = BitPattern::zeros(cpp);
        let mut n = 0;
        for i in 0..cpp {
            if data.get(i) {
                mask.set(i, true);
                n += 1;
                if n == 64 {
                    break;
                }
            }
        }
        c.reset_meter();
        c.fine_partial_program(p, &mask, 34).unwrap();
        assert_eq!(c.meter().count(OpKind::PartialProgram), 1);
        let levels = c.probe_voltages(p).unwrap();
        let reached = (0..cpp).filter(|&i| mask.get(i) && levels[i] >= 34).count();
        assert!(reached >= 62, "only {reached}/64 cells reached the target");
    }

    #[test]
    fn fine_partial_program_never_lowers_voltage() {
        let mut c = chip();
        let (p, data) = programmed_page(&mut c);
        let cpp = c.geometry().cells_per_page();
        // Masking programmed cells (already far above target) must not
        // change them.
        let mut mask = BitPattern::zeros(cpp);
        for i in 0..cpp {
            if !data.get(i) {
                mask.set(i, true);
            }
        }
        let before = c.probe_voltages(p).unwrap();
        c.fine_partial_program(p, &mask, 34).unwrap();
        let after = c.probe_voltages(p).unwrap();
        let mut dropped = 0;
        for i in 0..cpp {
            if mask.get(i) && i32::from(after[i]) < i32::from(before[i]) - 3 {
                dropped += 1;
            }
        }
        assert!(dropped < cpp / 500, "{dropped} programmed cells dropped");
    }

    #[test]
    fn voltage_probe_matches_read_bits() {
        let mut c = chip();
        let (p, _) = programmed_page(&mut c);
        let levels = c.probe_voltages(p).unwrap();
        let bits = c.read_page(p).unwrap();
        let mut agree = 0;
        for (i, &level) in levels.iter().enumerate() {
            let by_level = level < SLC_READ_REF;
            if by_level == bits.get(i) {
                agree += 1;
            }
        }
        // Read noise can flip only cells within a few levels of the
        // reference; essentially all cells must agree.
        assert!(agree as f64 / levels.len() as f64 > 0.999);
    }

    #[test]
    fn bad_block_rejected_everywhere() {
        let mut c = chip();
        let b = BlockId(3);
        c.mark_bad(b).unwrap();
        assert!(c.is_bad(b).unwrap());
        let p = PageId::new(b, 0);
        assert_eq!(c.erase_block(b), Err(FlashError::BadBlock(b)));
        assert_eq!(c.read_page(p), Err(FlashError::BadBlock(b)));
        assert_eq!(
            c.program_page(p, &BitPattern::ones(c.geometry().cells_per_page())),
            Err(FlashError::BadBlock(b))
        );
    }

    #[test]
    fn addressing_errors() {
        let mut c = chip();
        assert!(matches!(c.erase_block(BlockId(99)), Err(FlashError::BlockOutOfRange(_))));
        assert!(matches!(
            c.read_page(PageId::new(BlockId(0), 99)),
            Err(FlashError::PageOutOfRange(_))
        ));
        let short = BitPattern::ones(3);
        let p = PageId::new(BlockId(0), 0);
        c.erase_block(BlockId(0)).unwrap();
        assert!(matches!(c.program_page(p, &short), Err(FlashError::PatternLength { .. })));
    }

    #[test]
    fn meter_accounts_operations() {
        let mut c = chip();
        let (p, _) = programmed_page(&mut c);
        c.reset_meter();
        let _ = c.read_page(p).unwrap();
        let _ = c.probe_voltages(p).unwrap();
        let s = c.meter();
        assert_eq!(s.count(OpKind::Read), 1);
        assert_eq!(s.count(OpKind::Probe), 1);
        assert!(s.device_time_us > 0.0);
    }

    #[test]
    fn cycle_block_sets_wear_without_metering() {
        let mut c = chip();
        c.cycle_block(BlockId(0), 1500).unwrap();
        assert_eq!(c.block_pec(BlockId(0)).unwrap(), 1500);
        assert_eq!(c.meter().total_ops(), 0);
    }

    #[test]
    fn wear_shifts_programmed_distribution_right() {
        let mut fresh = Chip::new(ChipProfile::test_small(), 7);
        let mut worn = Chip::new(ChipProfile::test_small(), 7);
        worn.cycle_block(BlockId(0), 3000).unwrap();
        let p = PageId::new(BlockId(0), 0);
        let data = BitPattern::zeros(fresh.geometry().cells_per_page());
        fresh.erase_block(BlockId(0)).unwrap();
        fresh.program_page(p, &data).unwrap();
        worn.erase_block(BlockId(0)).unwrap();
        worn.program_page(p, &data).unwrap();
        let mean = |v: &[Level]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
        let mf = mean(&fresh.probe_voltages(p).unwrap());
        let mw = mean(&worn.probe_voltages(p).unwrap());
        assert!(
            mw > mf + 4.0,
            "worn mean {mw:.2} should sit several levels right of fresh {mf:.2}"
        );
    }

    #[test]
    fn aging_lowers_programmed_voltages_on_worn_blocks() {
        let mut c = chip();
        c.cycle_block(BlockId(0), 2000).unwrap();
        let p = PageId::new(BlockId(0), 0);
        c.erase_block(BlockId(0)).unwrap();
        c.program_page(p, &BitPattern::zeros(c.geometry().cells_per_page())).unwrap();
        let before = c.probe_voltages(p).unwrap();
        c.age_days(120.0);
        let after = c.probe_voltages(p).unwrap();
        let mean = |v: &[Level]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
        let (mb, ma) = (mean(&before), mean(&after));
        assert!(ma < mb - 0.5, "aging should lower mean: before {mb:.2}, after {ma:.2}");
    }

    #[test]
    fn aging_composes_incrementally() {
        // Aging 30 then 90 days must equal aging 120 days in expectation.
        let run = |split: bool| {
            let mut c = Chip::new(ChipProfile::test_small(), 21);
            c.cycle_block(BlockId(0), 2000).unwrap();
            let p = PageId::new(BlockId(0), 0);
            c.erase_block(BlockId(0)).unwrap();
            c.program_page(p, &BitPattern::zeros(c.geometry().cells_per_page())).unwrap();
            if split {
                c.age_days(30.0);
                c.age_days(90.0);
            } else {
                c.age_days(120.0);
            }
            let v = c.probe_voltages(p).unwrap();
            v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64
        };
        let a = run(true);
        let b = run(false);
        assert!((a - b).abs() < 0.5, "split {a:.3} vs whole {b:.3}");
    }

    #[test]
    fn discard_keeps_wear_and_identity() {
        let mut c = chip();
        c.cycle_block(BlockId(2), 777).unwrap();
        c.discard_block_state(BlockId(2)).unwrap();
        assert_eq!(c.block_pec(BlockId(2)).unwrap(), 777);
        // Block reads as erased after re-materialization.
        let bits = c.read_page(PageId::new(BlockId(2), 0)).unwrap();
        assert_eq!(bits.count_zeros(), 0);
    }

    #[test]
    fn stress_then_probe_shows_contrast() {
        let mut c = chip();
        let p = PageId::new(BlockId(0), 0);
        c.erase_block(BlockId(0)).unwrap();
        let cpp = c.geometry().cells_per_page();
        // Stress the first half of the page heavily.
        let mut mask = BitPattern::zeros(cpp);
        for i in 0..cpp / 2 {
            mask.set(i, true);
        }
        c.stress_cells(p, &mask, 625).unwrap();
        c.erase_block(BlockId(0)).unwrap();
        c.program_page(
            p,
            &BitPattern::random_half(&mut rand::rngs::SmallRng::seed_from_u64(1), cpp),
        )
        .unwrap();
        let steps = c.program_time_probe(p, 30).unwrap();
        let mean = |s: &[u16]| s.iter().map(|&x| f64::from(x)).sum::<f64>() / s.len() as f64;
        let stressed = mean(&steps[..cpp / 2]);
        let normal = mean(&steps[cpp / 2..]);
        assert!(
            normal - stressed > 1.0,
            "stressed cells should cross earlier: {stressed:.2} vs {normal:.2}"
        );
    }

    #[test]
    fn program_time_probe_is_destructive_and_metered() {
        let mut c = chip();
        let (p, _) = programmed_page(&mut c);
        c.reset_meter();
        let _ = c.program_time_probe(p, 30).unwrap();
        let s = c.meter();
        assert_eq!(s.count(OpKind::PartialProgram), 30);
        assert_eq!(s.count(OpKind::Read), 30);
        // Page is now garbage: nearly everything reads programmed.
        let bits = c.read_page(p).unwrap();
        assert!(bits.count_zeros() > bits.len() * 9 / 10);
    }

    #[test]
    fn determinism_same_seed_same_behaviour() {
        let run = || {
            let mut c = Chip::new(ChipProfile::test_small(), 1234);
            let (p, _) = programmed_page(&mut c);
            c.probe_voltages(p).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut c = Chip::new(ChipProfile::test_small(), seed);
            let (p, _) = programmed_page(&mut c);
            c.probe_voltages(p).unwrap()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn chip_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Chip>();
    }

    #[test]
    fn grown_bad_block_reads_but_rejects_writes() {
        let mut c = chip();
        let (p, data) = programmed_page(&mut c);
        let b = p.block;
        c.grow_bad_block(b).unwrap();
        assert!(c.is_grown_bad(b).unwrap());
        // Data written before the block grew bad is still readable...
        let back = c.read_page(p).unwrap();
        assert!(back.hamming_distance(&data) <= 2);
        // ...but program/PP/erase are rejected, typed.
        assert_eq!(c.erase_block(b), Err(FlashError::GrownBadBlock(b)));
        let mask = BitPattern::ones(c.geometry().cells_per_page());
        assert_eq!(c.partial_program(p, &mask), Err(FlashError::GrownBadBlock(b)));
        assert_eq!(c.program_page(PageId::new(b, 7), &mask), Err(FlashError::GrownBadBlock(b)));
    }

    #[test]
    fn read_noise_scale_default_is_exactly_one() {
        // The scale is *always* multiplied into the read path; `x * 1.0 == x`
        // in IEEE arithmetic, so the default must be bit-exactly 1.0 for the
        // no-middleware path to stay byte-identical to the pre-middleware
        // chip.
        let c = chip();
        assert_eq!(c.read_noise_scale().to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn snapshot_roundtrip_resumes_identical_streams() {
        use crate::snapshot::{DeviceState, StateReader, StateWriter};
        let mut c = chip();
        let (p, _) = programmed_page(&mut c);
        c.cycle_block(BlockId(1), 250).unwrap();
        c.age_days(3.0);

        let mut w = StateWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();

        // Restore into a freshly constructed chip of the same profile/seed,
        // then drive both forward: every draw must match bit-for-bit.
        let mut restored = chip();
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.meter(), c.meter());
        assert_eq!(restored.block_pec(BlockId(1)).unwrap(), 250);
        for _ in 0..3 {
            assert_eq!(c.probe_voltages(p).unwrap(), restored.probe_voltages(p).unwrap());
        }
        let mask = BitPattern::ones(c.geometry().cells_per_page());
        c.partial_program(p, &mask).unwrap();
        restored.partial_program(p, &mask).unwrap();
        assert_eq!(c.probe_voltages(p).unwrap(), restored.probe_voltages(p).unwrap());
    }

    #[test]
    fn snapshot_rejects_wrong_seed() {
        use crate::snapshot::{DeviceState, SnapshotError, StateReader, StateWriter};
        let c = Chip::new(ChipProfile::test_small(), 1);
        let mut w = StateWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = Chip::new(ChipProfile::test_small(), 2);
        assert!(matches!(
            other.load_state(&mut StateReader::new(&bytes)),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn advance_time_accumulates_wait() {
        let mut c = chip();
        c.advance_time_us(250.0);
        c.advance_time_us(750.0);
        assert!((c.meter().wait_time_us - 1000.0).abs() < 1e-9);
        assert_eq!(c.meter().total_ops(), 0);
    }
}
