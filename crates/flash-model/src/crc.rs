//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! Shared integrity primitive for controller metadata that must be
//! validated after a power cut: the FTL's spare-area journal records and
//! the hidden volume's per-slot payload tags. Bitwise implementation —
//! these records are tens of bytes, so a lookup table buys nothing.

/// Computes the CRC-32 (IEEE polynomial, reflected, `0xFFFFFFFF`
/// init/xorout — the `cksum`-family variant used by zip/png) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"journal-record");
        let b = crc32(b"journal-recorc");
        assert_ne!(a, b);
        assert_ne!(crc32(b"\x00"), crc32(b"\x01"));
    }
}
