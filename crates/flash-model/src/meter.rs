//! Operation accounting: counts, simulated device time, simulated energy.
//!
//! The paper's §8 throughput and energy comparisons are arithmetic over
//! operation counts and the per-operation latencies/energies of §6.1. The
//! meter performs exactly that arithmetic as a side effect of running the
//! real encode/decode code paths, so Table 1 and the 24x/50x/37x headline
//! ratios fall out of executed work rather than hand-computed formulas.

use crate::profile::TimingModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The tester-visible operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Page read (standard or threshold-shifted — same command timing).
    Read,
    /// Full page program.
    Program,
    /// Block erase.
    Erase,
    /// Partial-program step (aborted program).
    PartialProgram,
    /// Per-cell voltage probe (vendor characterization command; billed as a
    /// page read on the bus).
    Probe,
}

impl OpKind {
    /// All operation kinds, for iteration in reports.
    pub const ALL: [OpKind; 5] =
        [OpKind::Read, OpKind::Program, OpKind::Erase, OpKind::PartialProgram, OpKind::Probe];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "read",
            OpKind::Program => "program",
            OpKind::Erase => "erase",
            OpKind::PartialProgram => "partial-program",
            OpKind::Probe => "probe",
        };
        f.write_str(s)
    }
}

/// Classes of injected faults, counted separately from operations (a faulted
/// operation is billed both as an attempt of its [`OpKind`] and as a fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A program or partial-program step failed transiently.
    TransientProgram,
    /// A block erase failed transiently.
    TransientErase,
    /// A block wore out and became a grown bad block.
    GrownBad,
    /// The supply dropped and the device latched off (possibly mid-op,
    /// leaving a torn result on the medium).
    PowerLoss,
}

impl FaultKind {
    /// All fault kinds, for iteration in reports.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::TransientProgram,
        FaultKind::TransientErase,
        FaultKind::GrownBad,
        FaultKind::PowerLoss,
    ];

    fn idx(self) -> usize {
        match self {
            FaultKind::TransientProgram => 0,
            FaultKind::TransientErase => 1,
            FaultKind::GrownBad => 2,
            FaultKind::PowerLoss => 3,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::TransientProgram => "transient-program",
            FaultKind::TransientErase => "transient-erase",
            FaultKind::GrownBad => "grown-bad",
            FaultKind::PowerLoss => "power-loss",
        };
        f.write_str(s)
    }
}

/// Cumulative operation counters with simulated time and energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeterSnapshot {
    /// Operation counts indexed like [`OpKind::ALL`].
    counts: [u64; 5],
    /// Fault counts indexed like [`FaultKind::ALL`].
    fault_counts: [u64; 4],
    /// Total simulated device time, microseconds.
    pub device_time_us: f64,
    /// Simulated time spent waiting (retry backoff), microseconds. Included
    /// on top of `device_time_us`, not inside it.
    pub wait_time_us: f64,
    /// Total simulated energy, microjoules.
    pub energy_uj: f64,
}

impl MeterSnapshot {
    /// Count of one operation kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[Self::idx(kind)]
    }

    /// Total operations of all kinds.
    pub fn total_ops(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count of one injected-fault kind.
    pub fn fault_count(&self, kind: FaultKind) -> u64 {
        self.fault_counts[kind.idx()]
    }

    /// Total injected faults of all kinds.
    pub fn total_faults(&self) -> u64 {
        self.fault_counts.iter().sum()
    }

    /// Component-wise difference `self - earlier` (for measuring a phase).
    ///
    /// Swapped arguments are a caller bug; rather than silently wrapping
    /// the counters around in release builds, every component saturates
    /// at zero.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        let mut out = MeterSnapshot::default();
        for i in 0..5 {
            debug_assert!(self.counts[i] >= earlier.counts[i], "snapshots swapped");
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        for i in 0..4 {
            debug_assert!(self.fault_counts[i] >= earlier.fault_counts[i], "snapshots swapped");
            out.fault_counts[i] = self.fault_counts[i].saturating_sub(earlier.fault_counts[i]);
        }
        out.device_time_us = (self.device_time_us - earlier.device_time_us).max(0.0);
        out.wait_time_us = (self.wait_time_us - earlier.wait_time_us).max(0.0);
        out.energy_uj = (self.energy_uj - earlier.energy_uj).max(0.0);
        out
    }

    /// Component-wise accumulation of another snapshot — aggregating
    /// per-sample meters from independent chips into one device total.
    pub fn absorb(&mut self, other: &MeterSnapshot) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
        for i in 0..4 {
            self.fault_counts[i] += other.fault_counts[i];
        }
        self.device_time_us += other.device_time_us;
        self.wait_time_us += other.wait_time_us;
        self.energy_uj += other.energy_uj;
    }

    /// Assembles a snapshot from raw parts: counts indexed like
    /// [`OpKind::ALL`] and [`FaultKind::ALL`]. Used by observability layers
    /// that aggregate per-span deltas outside a live [`Meter`].
    pub fn from_parts(
        counts: [u64; 5],
        fault_counts: [u64; 4],
        device_time_us: f64,
        wait_time_us: f64,
        energy_uj: f64,
    ) -> Self {
        MeterSnapshot { counts, fault_counts, device_time_us, wait_time_us, energy_uj }
    }

    /// Stable index of an operation kind in [`OpKind::ALL`].
    pub fn op_index(kind: OpKind) -> usize {
        Self::idx(kind)
    }

    /// Stable index of a fault kind in [`FaultKind::ALL`].
    pub fn fault_index(kind: FaultKind) -> usize {
        kind.idx()
    }

    fn idx(kind: OpKind) -> usize {
        match kind {
            OpKind::Read => 0,
            OpKind::Program => 1,
            OpKind::Erase => 2,
            OpKind::PartialProgram => 3,
            OpKind::Probe => 4,
        }
    }
}

impl fmt::Display for MeterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} programs={} erases={} pp={} probes={} time={:.3}ms energy={:.3}mJ",
            self.count(OpKind::Read),
            self.count(OpKind::Program),
            self.count(OpKind::Erase),
            self.count(OpKind::PartialProgram),
            self.count(OpKind::Probe),
            self.device_time_us / 1e3,
            self.energy_uj / 1e3,
        )?;
        if self.total_faults() > 0 || self.wait_time_us > 0.0 {
            write!(
                f,
                " faults={} (program={} erase={} grown-bad={} power-loss={}) wait={:.3}ms",
                self.total_faults(),
                self.fault_count(FaultKind::TransientProgram),
                self.fault_count(FaultKind::TransientErase),
                self.fault_count(FaultKind::GrownBad),
                self.fault_count(FaultKind::PowerLoss),
                self.wait_time_us / 1e3,
            )?;
        }
        Ok(())
    }
}

/// The live meter owned by a [`Chip`](crate::Chip).
#[derive(Debug, Clone, Default)]
pub struct Meter {
    snap: MeterSnapshot,
}

impl Meter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Records one operation using the chip's timing model.
    pub fn record(&mut self, kind: OpKind, timing: &TimingModel) {
        let (us, uj) = timing.cost(kind);
        self.snap.counts[MeterSnapshot::idx(kind)] += 1;
        self.snap.device_time_us += us;
        self.snap.energy_uj += uj;
    }

    /// Records one injected fault.
    pub fn record_fault(&mut self, kind: FaultKind) {
        self.snap.fault_counts[kind.idx()] += 1;
    }

    /// Adds simulated wait time (retry backoff) outside device operations.
    pub fn add_wait_us(&mut self, us: f64) {
        self.snap.wait_time_us += us;
    }

    /// Current cumulative totals.
    pub fn snapshot(&self) -> MeterSnapshot {
        self.snap
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.snap = MeterSnapshot::default();
    }

    /// Overwrites the meter with a previously captured snapshot (snapshot
    /// restore).
    pub(crate) fn restore(&mut self, snap: MeterSnapshot) {
        self.snap = snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingModel {
        TimingModel::paper_vendor_a()
    }

    #[test]
    fn record_accumulates_time_and_energy() {
        let mut m = Meter::new();
        m.record(OpKind::Read, &timing());
        m.record(OpKind::Program, &timing());
        m.record(OpKind::Erase, &timing());
        let s = m.snapshot();
        assert_eq!(s.count(OpKind::Read), 1);
        assert_eq!(s.total_ops(), 3);
        assert!((s.device_time_us - (90.0 + 1200.0 + 5000.0)).abs() < 1e-9);
        assert!((s.energy_uj - (50.0 + 68.0 + 190.0)).abs() < 1e-9);
    }

    #[test]
    fn probe_billed_as_read() {
        let mut m = Meter::new();
        m.record(OpKind::Probe, &timing());
        let s = m.snapshot();
        assert_eq!(s.count(OpKind::Probe), 1);
        assert_eq!(s.count(OpKind::Read), 0);
        assert!((s.device_time_us - 90.0).abs() < 1e-9);
    }

    #[test]
    fn since_diffs_phases() {
        let mut m = Meter::new();
        m.record(OpKind::Program, &timing());
        let mark = m.snapshot();
        m.record(OpKind::PartialProgram, &timing());
        m.record(OpKind::PartialProgram, &timing());
        let d = m.snapshot().since(&mark);
        assert_eq!(d.count(OpKind::PartialProgram), 2);
        assert_eq!(d.count(OpKind::Program), 0);
        assert!((d.device_time_us - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn paper_vthi_page_energy_is_1_1_mj() {
        // §8: ten PP+read iterations per hidden page ≈ 1.1 mJ.
        let mut m = Meter::new();
        for _ in 0..10 {
            m.record(OpKind::PartialProgram, &timing());
            m.record(OpKind::Read, &timing());
        }
        let mj = m.snapshot().energy_uj / 1000.0;
        assert!((1.05..1.15).contains(&mj), "energy {mj} mJ");
    }

    #[test]
    fn display_formats() {
        let mut m = Meter::new();
        m.record(OpKind::Read, &timing());
        let s = m.snapshot().to_string();
        assert!(s.contains("reads=1"));
        assert!(!s.contains("faults="), "fault-free snapshots stay terse");
        m.record_fault(FaultKind::GrownBad);
        assert!(m.snapshot().to_string().contains("faults=1"));
    }

    fn swapped_snapshots() -> (MeterSnapshot, MeterSnapshot) {
        let mut m = Meter::new();
        m.record(OpKind::Read, &timing());
        m.add_wait_us(10.0);
        let earlier = m.snapshot();
        m.record(OpKind::Read, &timing());
        m.record_fault(FaultKind::GrownBad);
        m.add_wait_us(5.0);
        (earlier, m.snapshot())
    }

    // `[profile.test]` keeps debug assertions on, so in test builds the
    // swapped-argument bug is caught loudly...
    #[cfg(debug_assertions)]
    #[test]
    fn since_swapped_panics_in_debug() {
        let (earlier, later) = swapped_snapshots();
        let r = std::panic::catch_unwind(|| earlier.since(&later));
        assert!(r.is_err(), "swapped since() must trip the debug assert");
    }

    // ...while release builds (debug assertions off) saturate at zero
    // instead of wrapping the counters around to ~u64::MAX.
    #[cfg(not(debug_assertions))]
    #[test]
    fn since_swapped_saturates_in_release() {
        let (earlier, later) = swapped_snapshots();
        let d = earlier.since(&later);
        assert_eq!(d.count(OpKind::Read), 0);
        assert_eq!(d.total_ops(), 0);
        assert_eq!(d.total_faults(), 0);
        assert_eq!(d.device_time_us, 0.0);
        assert_eq!(d.wait_time_us, 0.0);
        assert_eq!(d.energy_uj, 0.0);
    }

    #[test]
    fn from_parts_roundtrips_counts() {
        let s = MeterSnapshot::from_parts([1, 2, 3, 4, 5], [6, 7, 8, 9], 90.0, 10.0, 50.0);
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            assert_eq!(s.count(*kind), i as u64 + 1);
            assert_eq!(MeterSnapshot::op_index(*kind), i);
        }
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(s.fault_count(*kind), i as u64 + 6);
            assert_eq!(MeterSnapshot::fault_index(*kind), i);
        }
        assert_eq!(s.total_ops(), 15);
        assert_eq!(s.total_faults(), 30);
    }

    #[test]
    fn faults_and_wait_accumulate_and_diff() {
        let mut m = Meter::new();
        m.record_fault(FaultKind::TransientProgram);
        m.add_wait_us(100.0);
        let mark = m.snapshot();
        m.record_fault(FaultKind::TransientProgram);
        m.record_fault(FaultKind::TransientErase);
        m.add_wait_us(50.0);
        let s = m.snapshot();
        assert_eq!(s.fault_count(FaultKind::TransientProgram), 2);
        assert_eq!(s.total_faults(), 3);
        assert!((s.wait_time_us - 150.0).abs() < 1e-9);
        let d = s.since(&mark);
        assert_eq!(d.fault_count(FaultKind::TransientProgram), 1);
        assert_eq!(d.fault_count(FaultKind::TransientErase), 1);
        assert_eq!(d.fault_count(FaultKind::GrownBad), 0);
        assert!((d.wait_time_us - 50.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.snapshot().total_faults(), 0);
    }
}
