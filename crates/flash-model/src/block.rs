//! Per-block simulation state.
//!
//! A chip tracks a small permanent record per block (wear, bad-block flag,
//! PT-HI stress damage, manufacturing offsets) and materializes the bulky
//! per-cell voltage state lazily — a paper-geometry block holds 37 M cells,
//! so experiments touch a handful of blocks at a time and may
//! [`discard`](crate::Chip::discard_block_state) voltage state they are done
//! with while keeping the block's physical identity (wear, offsets, damage).

use std::collections::HashMap;

/// Bulky, lazily-materialized per-cell state of one erase block.
#[derive(Debug, Clone)]
pub(crate) struct VoltState {
    /// True (analog) voltage per cell; may be negative (unmeasurable).
    pub voltages: Vec<f32>,
    /// Whether each page has been programmed since the last erase.
    pub page_programmed: Vec<bool>,
    /// Bitset over cells that received partial-program charge since the
    /// last erase (leaks faster; see the retention model).
    pub pp_written: Option<Vec<u64>>,
    /// Days of retention aging accumulated since the last erase.
    pub aged_days: f64,
    /// Reads since last erase (read-disturb accounting).
    pub read_count: u64,
    /// Per-page out-of-band spare area (controller metadata such as FTL
    /// journal records), written atomically with a full page program and
    /// cleared by erase. `None` = never written since the last erase. The
    /// spare is read through controller-grade ECC, so it is modeled
    /// noise-free: a torn program that never reached the spare leaves it
    /// `None`, which is exactly the durable-or-absent signal mount-time
    /// recovery keys on.
    pub spares: Vec<Option<Vec<u8>>>,
}

impl VoltState {
    pub(crate) fn new(cells: usize, pages: usize) -> Self {
        VoltState {
            voltages: vec![0.0; cells],
            page_programmed: vec![false; pages],
            pp_written: None,
            aged_days: 0.0,
            read_count: 0,
            spares: vec![None; pages],
        }
    }

    /// Marks a cell as carrying partial-program charge.
    pub(crate) fn mark_pp(&mut self, cell: usize) {
        let words = self.voltages.len().div_ceil(64);
        let set = self.pp_written.get_or_insert_with(|| vec![0u64; words]);
        set[cell / 64] |= 1u64 << (cell % 64);
    }

    /// Whether a cell carries partial-program charge.
    pub(crate) fn is_pp(&self, cell: usize) -> bool {
        match &self.pp_written {
            Some(set) => set[cell / 64] & (1u64 << (cell % 64)) != 0,
            None => false,
        }
    }
}

/// Permanent per-block record: survives voltage-state discard and erases.
#[derive(Debug, Clone)]
pub(crate) struct BlockMeta {
    /// Program/erase cycles endured.
    pub pec: u32,
    /// Factory bad-block flag (fails every operation, reads included).
    pub bad: bool,
    /// Grown bad-block flag (wore out at runtime): rejects program and
    /// erase but still reads, so data can be migrated off the block.
    pub grown_bad: bool,
    /// PT-HI stress damage: per-cell additive program-speed delta.
    pub stress: HashMap<usize, f32>,
    /// Cached per-cell interference coupling (only for small geometries).
    pub coupling_cache: Option<Vec<f32>>,
    /// Materialized voltage state, if any.
    pub state: Option<Box<VoltState>>,
}

impl BlockMeta {
    pub(crate) fn new() -> Self {
        BlockMeta {
            pec: 0,
            bad: false,
            grown_bad: false,
            stress: HashMap::new(),
            coupling_cache: None,
            state: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pp_bitset_marks_and_reads() {
        let mut s = VoltState::new(130, 2);
        assert!(!s.is_pp(0));
        assert!(!s.is_pp(129));
        s.mark_pp(0);
        s.mark_pp(64);
        s.mark_pp(129);
        assert!(s.is_pp(0) && s.is_pp(64) && s.is_pp(129));
        assert!(!s.is_pp(1) && !s.is_pp(63) && !s.is_pp(128));
    }

    #[test]
    fn fresh_meta_is_clean() {
        let m = BlockMeta::new();
        assert_eq!(m.pec, 0);
        assert!(!m.bad);
        assert!(!m.grown_bad);
        assert!(m.state.is_none());
        assert!(m.stress.is_empty());
    }
}
