//! Bit-error-rate measurement helpers.
//!
//! The paper's reliability metric throughout §6.3 and §8 is the raw BER of
//! a decoded payload against the payload that was stored.

use crate::bits::BitPattern;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;

/// Accumulated bit-error statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitErrorStats {
    /// Bits that differed.
    pub errors: u64,
    /// Bits compared.
    pub bits: u64,
}

impl BitErrorStats {
    /// Compares a read-back pattern against the stored reference.
    ///
    /// # Panics
    ///
    /// Panics if the patterns have different lengths.
    pub fn compare(stored: &BitPattern, read: &BitPattern) -> Self {
        BitErrorStats { errors: stored.hamming_distance(read) as u64, bits: stored.len() as u64 }
    }

    /// Builds stats from raw counts.
    pub fn from_counts(errors: u64, bits: u64) -> Self {
        assert!(errors <= bits, "more errors than bits");
        BitErrorStats { errors, bits }
    }

    /// Merges another measurement into this one.
    pub fn absorb(&mut self, other: BitErrorStats) {
        self.errors += other.errors;
        self.bits += other.bits;
    }

    /// The bit-error rate; 0 when nothing was compared.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }
}

impl Sum for BitErrorStats {
    fn sum<I: Iterator<Item = BitErrorStats>>(iter: I) -> Self {
        let mut acc = BitErrorStats::default();
        for s in iter {
            acc.absorb(s);
        }
        acc
    }
}

impl fmt::Display for BitErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} bits ({:.4}%)", self.errors, self.bits, self.ber() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_counts_errors() {
        let a = BitPattern::from_bytes(&[0b1111_0000], 8);
        let b = BitPattern::from_bytes(&[0b1110_0001], 8);
        let s = BitErrorStats::compare(&a, &b);
        assert_eq!(s.errors, 2);
        assert_eq!(s.bits, 8);
        assert!((s.ber() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absorb_and_sum() {
        let s1 = BitErrorStats::from_counts(1, 100);
        let s2 = BitErrorStats::from_counts(3, 100);
        let total: BitErrorStats = [s1, s2].into_iter().sum();
        assert_eq!(total.errors, 4);
        assert_eq!(total.bits, 200);
        assert!((total.ber() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(BitErrorStats::default().ber(), 0.0);
    }

    #[test]
    #[should_panic(expected = "more errors than bits")]
    fn invalid_counts_panic() {
        let _ = BitErrorStats::from_counts(2, 1);
    }
}
