//! Deterministic per-cell latent variables.
//!
//! Some physical characteristics are fixed properties of an individual cell:
//! how strongly it couples to program interference from neighboring
//! wordlines, and how efficiently a partial-program pulse moves its charge.
//! Storing an `f32` per cell per latent would double or triple block memory
//! (a paper-geometry block already holds 37 M cells), so latents are instead
//! *derived on demand* by hashing `(chip_seed, block, cell, salt)` with
//! SplitMix64 and mapping the result through the desired distribution. The
//! derivation is deterministic, so a cell keeps its identity across erase
//! cycles — exactly like real silicon.

/// Salt distinguishing the interference-coupling latent.
pub const SALT_COUPLING: u64 = 0x9E37_79B9_7F4A_7C15;
/// Salt distinguishing the partial-program efficiency latent.
pub const SALT_PP_EFF: u64 = 0xD1B5_4A32_D192_ED03;
/// Salt distinguishing the program-speed latent used by the PT-HI baseline.
pub const SALT_PROG_SPEED: u64 = 0x8CB9_2BA7_2F3D_8DD7;
/// Salt for per-block manufacturing voltage offsets.
pub const SALT_BLOCK_OFFSET: u64 = 0x2545_F491_4F6C_DD1D;
/// Salt for per-page manufacturing voltage offsets.
pub const SALT_PAGE_OFFSET: u64 = 0x6C62_272E_07BB_0142;
/// Salt for per-block interference-strength scale.
pub const SALT_BUMP_SCALE_BLOCK: u64 = 0x14C1_9BBA_41B5_7B21;
/// Salt for per-page interference-strength scale.
pub const SALT_BUMP_SCALE_PAGE: u64 = 0x7F39_83D5_13C8_A94E;
/// Salt for per-block coupling-median jitter.
pub const SALT_COUPLING_MEDIAN: u64 = 0x4528_21E6_38D0_1377;
/// Salt for per-block coupling-sigma jitter.
pub const SALT_COUPLING_SIGMA: u64 = 0xBE54_66CF_34E9_0C6C;

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a `(seed, block, cell, salt)` tuple to one u64.
#[inline]
fn cell_hash(seed: u64, block: u32, cell: usize, salt: u64) -> u64 {
    let mut h = splitmix64(seed ^ salt);
    h = splitmix64(h ^ u64::from(block));
    splitmix64(h ^ cell as u64)
}

/// Maps a hash to a uniform in `(0, 1)` (never exactly 0 or 1).
#[inline]
fn to_unit(h: u64) -> f64 {
    ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// A standard-normal variate derived from the hash via the inverse-CDF
/// (Acklam's rational approximation; |error| < 1.15e-9 — far below the
/// voltage quantization step).
#[inline]
fn to_normal(h: u64) -> f64 {
    inverse_normal_cdf(to_unit(h))
}

/// Per-cell interference coupling: lognormal, median `median`, log-sigma
/// `sigma_ln`, capped at `cap`. Cells with large coupling form the positive
/// measured-voltage tail of the erased distribution (paper Fig. 2a).
#[inline]
pub fn coupling(seed: u64, block: u32, cell: usize, median: f64, sigma_ln: f64, cap: f64) -> f64 {
    let z = to_normal(cell_hash(seed, block, cell, SALT_COUPLING));
    (median * (sigma_ln * z).exp()).min(cap)
}

/// Per-cell partial-program efficiency: lognormal with median 1. Slow cells
/// stretch the BER-vs-PP-steps convergence (paper Fig. 6 needs ~10 steps).
#[inline]
pub fn pp_efficiency(seed: u64, block: u32, cell: usize, sigma_ln: f64) -> f64 {
    let z = to_normal(cell_hash(seed, block, cell, SALT_PP_EFF));
    (sigma_ln * z).exp()
}

/// Per-cell intrinsic program speed for the PT-HI covert channel:
/// normal(1, sigma).
#[inline]
pub fn prog_speed(seed: u64, block: u32, cell: usize, sigma: f64) -> f64 {
    1.0 + sigma * to_normal(cell_hash(seed, block, cell, SALT_PROG_SPEED))
}

/// A standard-normal latent derived from `(seed, a, b, salt)` — used for
/// fixed manufacturing offsets (per block, per page) that must survive
/// voltage-state discard and re-materialization.
#[inline]
pub fn std_normal(seed: u64, a: u32, b: usize, salt: u64) -> f64 {
    to_normal(cell_hash(seed, a, b, salt))
}

/// Inverse of the standard normal CDF (Acklam's algorithm).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable_and_mixing() {
        // Fixed outputs guard against accidental algorithm changes, which
        // would silently re-randomize every "physical" cell in every test.
        // Reference value from the canonical splitmix64 implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
        let a = splitmix64(0xDEAD_BEEF);
        let b = splitmix64(0xDEAD_BEF0);
        assert!((a ^ b).count_ones() > 10, "poor avalanche");
    }

    #[test]
    fn inverse_cdf_matches_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.841_344_7) - 1.0).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.001) + 3.090_232).abs() < 1e-4);
    }

    #[test]
    fn inverse_cdf_roundtrips_with_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let z = inverse_normal_cdf(p);
            let back = crate::noise::normal_cdf(z);
            assert!((back - p).abs() < 1e-5, "p={p} back={back}");
        }
    }

    #[test]
    fn latents_are_deterministic_and_distinct() {
        let a = coupling(7, 3, 100, 0.5, 1.0, 6.0);
        let b = coupling(7, 3, 100, 0.5, 1.0, 6.0);
        assert_eq!(a, b);
        assert_ne!(coupling(7, 3, 100, 0.5, 1.0, 6.0), coupling(7, 3, 101, 0.5, 1.0, 6.0));
        assert_ne!(coupling(7, 3, 100, 0.5, 1.0, 6.0), coupling(8, 3, 100, 0.5, 1.0, 6.0));
        // Different salts give independent latents for the same cell.
        assert_ne!(pp_efficiency(7, 3, 100, 0.4), coupling(7, 3, 100, 1.0, 0.4, 100.0));
    }

    #[test]
    fn coupling_distribution_shape() {
        let n = 100_000;
        let vals: Vec<f64> = (0..n).map(|c| coupling(1, 0, c, 0.5, 1.0, 6.0)).collect();
        let median_ish = {
            let mut v = vals.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[n / 2]
        };
        assert!((0.45..0.55).contains(&median_ish), "median {median_ish}");
        let capped = vals.iter().filter(|&&v| v == 6.0).count() as f64 / n as f64;
        assert!(capped < 0.02, "too many capped: {capped}");
    }

    #[test]
    fn pp_efficiency_median_one() {
        let n = 50_000;
        let below = (0..n).filter(|&c| pp_efficiency(2, 1, c, 0.4) < 1.0).count() as f64 / n as f64;
        assert!((0.48..0.52).contains(&below), "median split {below}");
    }

    #[test]
    fn prog_speed_centered_at_one() {
        let n = 50_000;
        let mean: f64 = (0..n).map(|c| prog_speed(3, 0, c, 0.06)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.002, "mean {mean}");
    }
}
