//! MLC-mode operations (paper §3, §6.2).
//!
//! Flash vendors dynamically switch cells between SLC and MLC/TLC modes
//! (paper §1, refs [21–30]); the paper's §6.2 expects that "a flash
//! controller can extend our ideas to MLC or TLC". This module adds the
//! MLC substrate: two logical pages (lower + upper) per wordline across
//! four voltage lobes with gray coding, so the hiding layer can experiment
//! with "TLC-in-MLC"-style hiding — the paper's stated future direction.
//!
//! Gray mapping (lower, upper): `11`→L0 (erased), `10`→L1, `00`→L2,
//! `01`→L3. Adjacent lobes differ by one bit, like real MLC.

use crate::bits::BitPattern;
use crate::error::FlashError;
use crate::geometry::PageId;
use crate::meter::OpKind;
use crate::{Chip, Result};

impl Chip {
    /// Programs a wordline in MLC mode: two logical pages land in four
    /// voltage lobes. Metered as two program operations (lower + upper
    /// page pass). Interference couples to neighbors as in SLC mode.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, or
    /// if the wordline was already programmed since its last erase.
    pub fn program_page_mlc(
        &mut self,
        p: PageId,
        lower: &BitPattern,
        upper: &BitPattern,
    ) -> Result<()> {
        let cpp = self.geometry().cells_per_page();
        if lower.len() != cpp || upper.len() != cpp {
            return Err(FlashError::PatternLength {
                expected: cpp,
                got: if lower.len() != cpp { lower.len() } else { upper.len() },
            });
        }
        // The SLC program path performs the bookkeeping (erase-state check,
        // page flags, interference, defects); program the cells that leave
        // L0 as "programmed" with a placeholder, then place exact lobes.
        let programmed_mask: BitPattern = (0..cpp)
            .map(|i| lower.get(i) && upper.get(i)) // 11 stays erased
            .collect();
        self.program_page(p, &programmed_mask)?;

        let mlc = self.profile().mlc;
        let sigma = mlc.sigma;
        for i in 0..cpp {
            let target = match (lower.get(i), upper.get(i)) {
                (true, true) => continue, // L0: erased, untouched
                (true, false) => mlc.l1_mean,
                (false, false) => mlc.l2_mean,
                (false, true) => mlc.l3_mean,
            };
            self.place_cell_level(p, i, target, sigma);
        }
        // The second (upper-page) programming pass.
        self.meter_record(OpKind::Program);
        Ok(())
    }

    /// Reads a wordline in MLC mode: compares each cell against the three
    /// reference voltages and undoes the gray mapping. Metered as two reads
    /// (lower + upper logical page).
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn read_page_mlc(&mut self, p: PageId) -> Result<(BitPattern, BitPattern)> {
        let mlc = self.profile().mlc;
        let [r1, r2, r3] = mlc.read_refs;
        // Three threshold comparisons, like a real MLC sense sequence.
        let below_r1 = self.read_page_shifted(p, r1)?;
        let below_r2 = self.read_page_shifted(p, r2)?;
        let below_r3 = self.read_page_shifted(p, r3)?;
        // Metering: the three shifted reads above already billed 3 reads;
        // real MLC bills 2 page reads — credit is not worth modeling, but
        // document the difference here.
        let cpp = below_r1.len();
        let mut lower = BitPattern::zeros(cpp);
        let mut upper = BitPattern::zeros(cpp);
        for i in 0..cpp {
            let level = match (below_r1.get(i), below_r2.get(i), below_r3.get(i)) {
                (true, _, _) => 0,
                (false, true, _) => 1,
                (false, false, true) => 2,
                (false, false, false) => 3,
            };
            let (l, u) = match level {
                0 => (true, true),
                1 => (true, false),
                2 => (false, false),
                _ => (false, true),
            };
            lower.set(i, l);
            upper.set(i, u);
        }
        Ok((lower, upper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockId, ChipProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn chip() -> Chip {
        Chip::new(ChipProfile::test_small(), 77)
    }

    fn patterns(chip: &Chip, seed: u64) -> (BitPattern, BitPattern) {
        let cpp = chip.geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(seed);
        (BitPattern::random_half(&mut rng, cpp), BitPattern::random_half(&mut rng, cpp))
    }

    #[test]
    fn mlc_roundtrip_two_logical_pages() {
        let mut c = chip();
        let (lower, upper) = patterns(&c, 1);
        c.erase_block(BlockId(0)).unwrap();
        let p = PageId::new(BlockId(0), 0);
        c.program_page_mlc(p, &lower, &upper).unwrap();
        let (l, u) = c.read_page_mlc(p).unwrap();
        let errs = l.hamming_distance(&lower) + u.hamming_distance(&upper);
        assert!(errs <= 4, "MLC raw errors {errs}");
    }

    #[test]
    fn mlc_lobes_are_narrower_than_slc() {
        let mut c = chip();
        let (lower, upper) = patterns(&c, 2);
        c.erase_block(BlockId(0)).unwrap();
        let p = PageId::new(BlockId(0), 0);
        c.program_page_mlc(p, &lower, &upper).unwrap();
        let levels = c.probe_voltages(p).unwrap();
        // Collect the L2 lobe (lower 0, upper 0) and check its spread.
        let mlc = c.profile().mlc;
        let l2: Vec<f64> = (0..levels.len())
            .filter(|&i| !lower.get(i) && !upper.get(i))
            .map(|i| f64::from(levels[i]))
            .collect();
        let mean = l2.iter().sum::<f64>() / l2.len() as f64;
        let sd = (l2.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / l2.len() as f64).sqrt();
        assert!((mean - mlc.l2_mean).abs() < 4.0, "L2 mean {mean}");
        assert!(sd < 9.0, "L2 sd {sd} should be narrower than the SLC lobe");
    }

    #[test]
    fn mlc_program_respects_erase_rule() {
        let mut c = chip();
        let (lower, upper) = patterns(&c, 3);
        c.erase_block(BlockId(0)).unwrap();
        let p = PageId::new(BlockId(0), 0);
        c.program_page_mlc(p, &lower, &upper).unwrap();
        assert!(matches!(
            c.program_page_mlc(p, &lower, &upper),
            Err(FlashError::PageAlreadyProgrammed(_))
        ));
    }

    #[test]
    fn mlc_is_metered_as_two_programs() {
        let mut c = chip();
        let (lower, upper) = patterns(&c, 4);
        c.erase_block(BlockId(0)).unwrap();
        c.reset_meter();
        c.program_page_mlc(PageId::new(BlockId(0), 0), &lower, &upper).unwrap();
        assert_eq!(c.meter().count(OpKind::Program), 2);
    }
}
