//! Composable device middleware: fault injection, tracing, checkpointing,
//! power cuts.
//!
//! Each wrapper implements [`NandDevice`] by decorating another
//! implementation, so concerns that used to live inside `Chip` compose at
//! the type level instead:
//!
//! * [`FaultDevice`] — injects a seeded [`FaultPlan`]: transient
//!   program/erase aborts, PEC wear-out, scheduled grown-bad blocks, read
//!   noise spikes and stuck cells. Commands that fault are billed to the
//!   meter and abort *before* reaching the wrapped device, so retries
//!   observe no corruption from the failed attempt.
//! * [`TraceDevice`] — reports every billed operation, fault and wait to an
//!   installed [`SharedRecorder`], with the same costs the meter bills.
//! * [`FlightDevice`] — reports every operation *with its address, chip
//!   attribution and outcome* to an installed [`SharedFlightSink`], feeding
//!   a bounded post-mortem ring (stash-obs `FlightRecorder`) that dumps the
//!   last N ops when the stack fails.
//! * [`SnapshotDevice`] — checkpoints/restores the full mutable state of a
//!   [`DeviceState`] stack to bytes or to a file, so a longevity run can
//!   stop and resume mid-experiment with bit-identical streams.
//! * [`PowerCutDevice`] — executes a deterministic power-cut schedule:
//!   after (or partway through) the scheduled device operation the supply
//!   drops, the interrupted operation lands *torn* on the medium, the
//!   device latches off surfacing [`FlashError::PowerLoss`], and
//!   [`reboot`](PowerCutDevice::reboot) brings it back with the post-crash
//!   cell state intact, bit-deterministically.
//!
//! # Decorator ordering
//!
//! The canonical stack is `FaultDevice<FlightDevice<TraceDevice<Chip>>>`:
//! fault injection outermost, so the meter/record traffic it emits for
//! *failed* attempts flows through the flight ring and the tracer exactly
//! like successful operations do. A `TraceDevice` (or `FlightDevice`)
//! outside the `FaultDevice` would never see faulted attempts billed.
//! `PowerCutDevice` sits outermost of all — power is physically upstream of
//! everything — so a cut gates the whole stack and a torn operation is
//! billed/traced/flight-recorded like the interrupted command it is.
//! `SnapshotDevice` composes anywhere its inner stack implements
//! [`DeviceState`].
//!
//! # Determinism contract
//!
//! * Fault decisions draw from the plan's own RNG stream
//!   ([`FaultPlan::new`]'s seed, domain-separated), never from the chip's
//!   process-noise RNG, and a roll consumes randomness only when its
//!   probability is non-zero. Wrapping a chip in `FaultDevice` with no plan
//!   (or [`FaultPlan::none`]) is therefore byte-identical to the bare chip.
//! * `TraceDevice` only observes; it never draws randomness or reorders
//!   operations. A no-op (recorder-less) tracer is byte-identical
//!   passthrough.
//! * Read-noise spikes apply through
//!   [`NandDevice::set_read_noise_scale`], which multiplies the profile
//!   sigma; the scale is `1.0` (an exact IEEE no-op) outside spike windows.
//! * `FaultDevice` rolls program/PP faults *before* the wrapped chip
//!   materializes block state, where the pre-middleware chip materialized
//!   first. The chip's RNG stream is unaffected for any workload that
//!   erases a block before programming it (erasing materializes), which
//!   every workload in this repo does; see DESIGN.md §11.

use crate::bits::BitPattern;
use crate::device::{dispatch_one, CmdResult, NandCmd, NandDevice};
use crate::error::FlashError;
use crate::fault::{FaultPlan, FaultState, PowerCut};
use crate::geometry::{BlockId, Geometry, PageId};
use crate::meter::{FaultKind, MeterSnapshot, OpKind};
use crate::profile::ChipProfile;
use crate::recorder::{FlightOp, SharedFlightSink, SharedRecorder};
use crate::snapshot::{DeviceState, SnapshotError, StateReader, StateWriter};
use crate::{Level, Result};

/// File magic for [`SnapshotDevice`] checkpoints.
const SNAPSHOT_MAGIC: &[u8; 8] = b"STSHSNAP";
/// Checkpoint format version. v2 added the per-page spare areas to the
/// chip's block state and the power-cut middleware frame.
const SNAPSHOT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// FaultDevice
// ---------------------------------------------------------------------------

/// Fault-injection middleware: consults a seeded [`FaultPlan`] in front of
/// every command of the wrapped device.
#[derive(Debug, Clone)]
pub struct FaultDevice<D> {
    inner: D,
    /// Live fault bookkeeping; `None` keeps every command on the exact
    /// passthrough path.
    fault: Option<Box<FaultState>>,
}

impl<D: NandDevice> FaultDevice<D> {
    /// Wraps a device with no plan installed (pure passthrough).
    pub fn new(inner: D) -> Self {
        FaultDevice { inner, fault: None }
    }

    /// Wraps a device with a fault schedule installed from the start.
    pub fn with_plan(inner: D, plan: FaultPlan) -> Self {
        let mut dev = FaultDevice::new(inner);
        dev.set_plan(plan);
        dev
    }

    /// Installs (or, with [`FaultPlan::none`], removes) a fault schedule.
    /// The plan's operation counter and RNG stream restart from the seed.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.fault = if plan.is_none() { None } else { Some(Box::new(FaultState::new(plan))) };
    }

    /// The installed fault plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the middleware, returning the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    // Address checks replicating the chip's error precedence, so a faulted
    // command reports the same typed error the bare device would — and so
    // the fault op counter only advances for well-addressed commands,
    // exactly as the pre-middleware chip counted.

    fn check_block(&self, b: BlockId) -> Result<()> {
        if !self.inner.geometry().contains_block(b) {
            return Err(FlashError::BlockOutOfRange(b));
        }
        Ok(())
    }

    fn check_usable_block(&self, b: BlockId) -> Result<()> {
        self.check_block(b)?;
        if self.inner.is_bad(b)? {
            return Err(FlashError::BadBlock(b));
        }
        Ok(())
    }

    fn check_usable_page(&self, p: PageId) -> Result<()> {
        self.check_block(p.block)?;
        if !self.inner.geometry().contains_page(p) {
            return Err(FlashError::PageOutOfRange(p));
        }
        if self.inner.is_bad(p.block)? {
            return Err(FlashError::BadBlock(p.block));
        }
        Ok(())
    }

    fn check_not_grown_bad(&self, b: BlockId) -> Result<()> {
        if self.inner.is_grown_bad(b)? {
            return Err(FlashError::GrownBadBlock(b));
        }
        Ok(())
    }

    /// Advances the fault-plan operation counter (when a plan is installed)
    /// and applies any scheduled grown-bad marking for the touched block.
    /// Returns this operation's global index (0 with no plan).
    fn tick(&mut self, b: BlockId) -> Result<u64> {
        let Some(fs) = self.fault.as_mut() else { return Ok(0) };
        let op = fs.tick();
        if fs.plan.grown_bad_scheduled(b, op) {
            // `grow_bad_block` is idempotent and meters the fault only on
            // the first marking, exactly like the in-chip schedule did.
            self.inner.grow_bad_block(b)?;
        }
        Ok(op)
    }
}

impl<D: NandDevice> NandDevice for FaultDevice<D> {
    fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }
    fn profile(&self) -> &ChipProfile {
        self.inner.profile()
    }
    fn seed(&self) -> u64 {
        self.inner.seed()
    }
    fn chip_count(&self) -> u32 {
        self.inner.chip_count()
    }
    fn meter(&self) -> MeterSnapshot {
        self.inner.meter()
    }
    fn reset_meter(&mut self) {
        self.inner.reset_meter();
    }
    fn record_op(&mut self, kind: OpKind) {
        self.inner.record_op(kind);
    }
    fn record_fault(&mut self, kind: FaultKind) {
        self.inner.record_fault(kind);
    }
    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.inner.install_recorder(recorder);
    }
    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        self.inner.install_flight_sink(sink);
    }
    fn advance_time_us(&mut self, us: f64) {
        self.inner.advance_time_us(us);
    }
    fn set_read_noise_scale(&mut self, scale: f64) {
        self.inner.set_read_noise_scale(scale);
    }
    fn block_pec(&self, b: BlockId) -> Result<u32> {
        self.inner.block_pec(b)
    }
    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        self.inner.mark_bad(b)
    }
    fn is_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_bad(b)
    }
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        self.inner.grow_bad_block(b)
    }
    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_grown_bad(b)
    }
    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        self.inner.is_page_programmed(p)
    }
    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        self.inner.discard_block_state(b)
    }

    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        self.check_usable_block(b)?;
        self.tick(b)?;
        self.check_not_grown_bad(b)?;
        let next_pec =
            if self.fault.is_some() { self.inner.block_pec(b)?.saturating_add(1) } else { 0 };
        if let Some(fs) = self.fault.as_mut() {
            if fs.roll_pec_wearout(next_pec) {
                self.inner.grow_bad_block(b)?;
                self.inner.record_op(OpKind::Erase);
                return Err(FlashError::GrownBadBlock(b));
            }
            if fs.roll_erase() {
                self.inner.record_fault(FaultKind::TransientErase);
                self.inner.record_op(OpKind::Erase);
                return Err(FlashError::EraseFail(b));
            }
        }
        self.inner.erase_block(b)
    }

    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        // Preconditioning is unmetered and was never fault-ticked in the
        // chip either: faults model the measured workload.
        self.inner.cycle_block(b, n)
    }

    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        self.check_usable_page(p)?;
        self.tick(p.block)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.inner.geometry().cells_per_page();
        if data.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: data.len() });
        }
        if self.inner.is_page_programmed(p)? {
            return Err(FlashError::PageAlreadyProgrammed(p));
        }
        // Transient program failure: abort before the wrapped device draws
        // any process noise or charges any cell, so a retry sees the page
        // untouched. The failed attempt is still billed.
        if let Some(fs) = self.fault.as_mut() {
            if fs.roll_program() {
                self.inner.record_fault(FaultKind::TransientProgram);
                self.inner.record_op(OpKind::Program);
                return Err(FlashError::TransientProgramFail(p));
            }
        }
        self.inner.program_page(p, data)
    }

    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        // Same fault treatment as `program_page`: the spare lands atomically
        // with the page data, so a faulted attempt leaves both untouched.
        self.check_usable_page(p)?;
        self.tick(p.block)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.inner.geometry().cells_per_page();
        if data.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: data.len() });
        }
        if self.inner.is_page_programmed(p)? {
            return Err(FlashError::PageAlreadyProgrammed(p));
        }
        if let Some(fs) = self.fault.as_mut() {
            if fs.roll_program() {
                self.inner.record_fault(FaultKind::TransientProgram);
                self.inner.record_op(OpKind::Program);
                return Err(FlashError::TransientProgramFail(p));
            }
        }
        self.inner.program_page_with_spare(p, data, spare)
    }

    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        // Spare reads go through controller ECC and are modeled noise-free:
        // no spike scaling, no stuck-cell overrides — but the op still ticks.
        self.check_usable_page(p)?;
        self.tick(p.block)?;
        self.inner.read_spare(p)
    }

    // Torn variants are issued by the power-cut middleware, which wraps
    // *outside* fault injection: the cut already is the fault, so they
    // forward without rolls (and without ticking a schedule the dying
    // device will never reach) so the wrapped chip's overrides apply.
    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_program_page(p, data, fraction)
    }

    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_partial_program(p, mask, fraction)
    }

    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        self.inner.torn_erase_block(b, fraction)
    }

    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        self.check_usable_page(p)?;
        self.tick(p.block)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.inner.geometry().cells_per_page();
        if mask.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: mask.len() });
        }
        if !self.inner.is_page_programmed(p)? {
            return Err(FlashError::PageNotProgrammed(p));
        }
        if let Some(fs) = self.fault.as_mut() {
            if fs.roll_partial_program() {
                self.inner.record_fault(FaultKind::TransientProgram);
                self.inner.record_op(OpKind::PartialProgram);
                return Err(FlashError::TransientProgramFail(p));
            }
        }
        self.inner.partial_program(p, mask)
    }

    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        self.check_usable_page(p)?;
        self.tick(p.block)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.inner.geometry().cells_per_page();
        if mask.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: mask.len() });
        }
        if !self.inner.is_page_programmed(p)? {
            return Err(FlashError::PageNotProgrammed(p));
        }
        if let Some(fs) = self.fault.as_mut() {
            if fs.roll_partial_program() {
                self.inner.record_fault(FaultKind::TransientProgram);
                self.inner.record_op(OpKind::PartialProgram);
                return Err(FlashError::TransientProgramFail(p));
            }
        }
        self.inner.fine_partial_program(p, mask, target)
    }

    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        self.check_usable_page(p)?;
        let op = self.tick(p.block)?;
        let result = if let Some(fs) = self.fault.as_ref() {
            self.inner.set_read_noise_scale(fs.plan.noise_factor(op));
            let r = self.inner.read_page_shifted(p, vref);
            self.inner.set_read_noise_scale(1.0);
            r
        } else {
            self.inner.read_page_shifted(p, vref)
        };
        let mut bits = result?;
        if let Some(fs) = self.fault.as_ref() {
            let cpp = self.inner.geometry().cells_per_page();
            let base = p.page as usize * cpp;
            for sc in fs.plan.stuck_in(p.block) {
                if (base..base + cpp).contains(&sc.cell) {
                    bits.set(sc.cell - base, f64::from(sc.level) < f64::from(vref));
                }
            }
        }
        Ok(bits)
    }

    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        if self.fault.is_none() {
            return self.inner.read_page_shifted_into(p, vref, out);
        }
        // With a plan installed the allocating path carries the noise-scale
        // and stuck-cell handling; fault windows are never hot.
        match self.read_page_shifted(p, vref) {
            Ok(bits) => {
                *out = bits;
                Ok(())
            }
            Err(e) => {
                *out = BitPattern::zeros(0);
                Err(e)
            }
        }
    }

    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        if self.fault.is_none() {
            return self.inner.read_page_sweep(p, vrefs);
        }
        // Per-vref dispatch keeps the fault op counter, noise spikes and
        // stuck-cell overrides exactly where a sequence of shifted reads
        // would put them.
        vrefs.iter().map(|&v| self.read_page_shifted(p, v)).collect()
    }

    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        if self.fault.is_none() {
            // Passthrough keeps the wrapped backend's batch planning.
            return self.inner.exec(cmds);
        }
        // A live plan must tick, roll and override per command.
        cmds.iter().map(|cmd| dispatch_one(self, cmd)).collect()
    }

    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        out.clear();
        self.check_usable_page(p)?;
        let op = self.tick(p.block)?;
        let result = if let Some(fs) = self.fault.as_ref() {
            self.inner.set_read_noise_scale(fs.plan.noise_factor(op));
            let r = self.inner.probe_voltages_into(p, out);
            self.inner.set_read_noise_scale(1.0);
            r
        } else {
            self.inner.probe_voltages_into(p, out)
        };
        result?;
        if let Some(fs) = self.fault.as_ref() {
            let cpp = self.inner.geometry().cells_per_page();
            let base = p.page as usize * cpp;
            for sc in fs.plan.stuck_in(p.block) {
                if (base..base + cpp).contains(&sc.cell) {
                    out[sc.cell - base] = sc.level;
                }
            }
        }
        Ok(())
    }

    fn age_days(&mut self, days: f64) {
        self.inner.age_days(days);
    }

    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        self.check_usable_page(p)?;
        self.tick(p.block)?;
        self.check_not_grown_bad(p.block)?;
        let cpp = self.inner.geometry().cells_per_page();
        if mask.len() != cpp {
            return Err(FlashError::PatternLength { expected: cpp, got: mask.len() });
        }
        self.inner.stress_cells(p, mask, cycles)
    }

    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        self.check_usable_page(p)?;
        self.tick(p.block)?;
        self.check_not_grown_bad(p.block)?;
        self.inner.program_time_probe(p, steps)
    }
}

impl<D: NandDevice + DeviceState> DeviceState for FaultDevice<D> {
    fn save_state(&self, w: &mut StateWriter) {
        self.inner.save_state(w);
        match &self.fault {
            None => w.put_bool(false),
            Some(fs) => {
                w.put_bool(true);
                let (rng, op_index) = fs.stream_position();
                for word in rng {
                    w.put_u64(word);
                }
                w.put_u64(op_index);
            }
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> std::result::Result<(), SnapshotError> {
        self.inner.load_state(r)?;
        let had_plan = r.get_bool()?;
        match (had_plan, self.fault.as_mut()) {
            (false, None) => Ok(()),
            (true, Some(fs)) => {
                let mut rng = [0u64; 4];
                for word in &mut rng {
                    *word = r.get_u64()?;
                }
                let op_index = r.get_u64()?;
                fs.restore_stream_position(rng, op_index);
                Ok(())
            }
            // The plan is configuration, not state: restoring requires the
            // target device to be constructed with the same plan presence.
            _ => Err(SnapshotError::Mismatch(
                "snapshot and device disagree on fault-plan presence".into(),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// TraceDevice
// ---------------------------------------------------------------------------

/// Tracing middleware: reports every billed operation, fault and wait of
/// the wrapped device to an installed [`SharedRecorder`], with the same
/// costs the meter bills. With no recorder installed it is byte-identical
/// passthrough at one branch per event.
#[derive(Debug, Clone)]
pub struct TraceDevice<D> {
    inner: D,
    recorder: Option<SharedRecorder>,
}

impl<D: NandDevice> TraceDevice<D> {
    /// Wraps a device with no recorder installed.
    pub fn new(inner: D) -> Self {
        TraceDevice { inner, recorder: None }
    }

    /// Wraps a device with a recorder installed from the start.
    pub fn with_recorder(inner: D, recorder: SharedRecorder) -> Self {
        TraceDevice { inner, recorder: Some(recorder) }
    }

    /// Installs (or, with `None`, removes) the recorder. Cloning the
    /// wrapper shares the recorder.
    pub fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.recorder = recorder;
    }

    /// The installed recorder, if any.
    pub fn recorder(&self) -> Option<&SharedRecorder> {
        self.recorder.as_ref()
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the middleware, returning the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Reports one billed operation to the recorder at the profile's costs.
    fn emit_op(&self, kind: OpKind) {
        if let Some(r) = &self.recorder {
            let (us, uj) = self.inner.profile().timing.cost(kind);
            r.record_op(kind, us, uj);
        }
    }
}

impl<D: NandDevice> NandDevice for TraceDevice<D> {
    fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }
    fn profile(&self) -> &ChipProfile {
        self.inner.profile()
    }
    fn seed(&self) -> u64 {
        self.inner.seed()
    }
    fn chip_count(&self) -> u32 {
        self.inner.chip_count()
    }
    fn meter(&self) -> MeterSnapshot {
        self.inner.meter()
    }
    fn reset_meter(&mut self) {
        self.inner.reset_meter();
    }
    fn record_op(&mut self, kind: OpKind) {
        self.inner.record_op(kind);
        self.emit_op(kind);
    }
    fn record_fault(&mut self, kind: FaultKind) {
        self.inner.record_fault(kind);
        if let Some(r) = &self.recorder {
            r.record_fault(kind);
        }
    }
    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.set_recorder(recorder);
    }
    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        self.inner.install_flight_sink(sink);
    }
    fn advance_time_us(&mut self, us: f64) {
        self.inner.advance_time_us(us);
        if let Some(r) = &self.recorder {
            r.record_wait(us);
        }
    }
    fn set_read_noise_scale(&mut self, scale: f64) {
        self.inner.set_read_noise_scale(scale);
    }
    fn block_pec(&self, b: BlockId) -> Result<u32> {
        self.inner.block_pec(b)
    }
    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        self.inner.mark_bad(b)
    }
    fn is_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_bad(b)
    }
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        let newly = !self.inner.is_grown_bad(b)?;
        self.inner.grow_bad_block(b)?;
        if newly {
            if let Some(r) = &self.recorder {
                r.record_fault(FaultKind::GrownBad);
            }
        }
        Ok(())
    }
    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_grown_bad(b)
    }
    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        self.inner.is_page_programmed(p)
    }
    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        self.inner.discard_block_state(b)
    }
    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        self.inner.erase_block(b)?;
        self.emit_op(OpKind::Erase);
        Ok(())
    }
    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        // Unmetered on the device; not traced either.
        self.inner.cycle_block(b, n)
    }
    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        self.inner.program_page(p, data)?;
        self.emit_op(OpKind::Program);
        Ok(())
    }
    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        self.inner.program_page_with_spare(p, data, spare)?;
        self.emit_op(OpKind::Program);
        Ok(())
    }
    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        let spare = self.inner.read_spare(p)?;
        self.emit_op(OpKind::Read);
        Ok(spare)
    }
    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_program_page(p, data, fraction)?;
        self.emit_op(OpKind::Program);
        Ok(())
    }
    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_partial_program(p, mask, fraction)?;
        self.emit_op(OpKind::PartialProgram);
        Ok(())
    }
    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        self.inner.torn_erase_block(b, fraction)?;
        self.emit_op(OpKind::Erase);
        Ok(())
    }
    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        self.inner.partial_program(p, mask)?;
        self.emit_op(OpKind::PartialProgram);
        Ok(())
    }
    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        self.inner.fine_partial_program(p, mask, target)?;
        self.emit_op(OpKind::PartialProgram);
        Ok(())
    }
    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        let bits = self.inner.read_page_shifted(p, vref)?;
        self.emit_op(OpKind::Read);
        Ok(bits)
    }
    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        self.inner.read_page_shifted_into(p, vref, out)?;
        self.emit_op(OpKind::Read);
        Ok(())
    }
    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        let patterns = self.inner.read_page_sweep(p, vrefs)?;
        // The device meters one read per reference voltage; the trace
        // must agree with the meter.
        for _ in vrefs {
            self.emit_op(OpKind::Read);
        }
        Ok(patterns)
    }
    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        self.inner.probe_voltages_into(p, out)?;
        self.emit_op(OpKind::Probe);
        Ok(())
    }
    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        if self.recorder.is_none() {
            // Recorder-less tracing is exact passthrough, batches included.
            return self.inner.exec(cmds);
        }
        // One span per command: dispatch through `self` so every op lands
        // on the recorder with its billed cost. Fused sweeps stay fused —
        // `read_page_sweep` above forwards the whole sweep to the backend.
        cmds.iter().map(|cmd| dispatch_one(self, cmd)).collect()
    }
    fn age_days(&mut self, days: f64) {
        self.inner.age_days(days);
    }
    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        self.inner.stress_cells(p, mask, cycles)?;
        // The device meters a stress pass as `cycles` program operations;
        // the trace must agree with the meter.
        for _ in 0..cycles {
            self.emit_op(OpKind::Program);
        }
        Ok(())
    }
    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        let out = self.inner.program_time_probe(p, steps)?;
        // Metered as `steps` partial-programs plus `steps` reads,
        // interleaved like the incremental-program loop issues them.
        for _ in 0..steps {
            self.emit_op(OpKind::PartialProgram);
            self.emit_op(OpKind::Read);
        }
        Ok(out)
    }
}

impl<D: NandDevice + DeviceState> DeviceState for TraceDevice<D> {
    fn save_state(&self, w: &mut StateWriter) {
        // The recorder is configuration, not simulation state.
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> std::result::Result<(), SnapshotError> {
        self.inner.load_state(r)
    }
}

// ---------------------------------------------------------------------------
// FlightDevice
// ---------------------------------------------------------------------------

/// Flight-recorder middleware: reports every device operation — successful,
/// failed or torn — to an installed [`SharedFlightSink`] together with its
/// address, per-chip attribution and billed cost, so a bounded post-mortem
/// ring (stash-obs `FlightRecorder`) can hold the last N ops leading up to
/// a failure. With no sink installed it is byte-identical passthrough at
/// one branch per event.
///
/// The canonical stack order is `FaultDevice<FlightDevice<TraceDevice<D>>>`:
/// inside the fault layer, so billed-but-failed attempts reach the ring via
/// [`NandDevice::record_op`], and torn power-cut variants land in the ring
/// as the final entry before a post-mortem dump.
///
/// Cost accounting matches the meter exactly: successful and torn ops carry
/// the profile's billed cost (a sweep is one entry per reference voltage, a
/// stress pass is one per cycle), billed-but-failed attempts carry the cost
/// the fault layer billed, and operations rejected before reaching the
/// physics (address errors, program-once violations) carry zero cost.
#[derive(Debug, Clone)]
pub struct FlightDevice<D> {
    inner: D,
    sink: Option<SharedFlightSink>,
}

impl<D: NandDevice> FlightDevice<D> {
    /// Wraps a device with no sink installed.
    pub fn new(inner: D) -> Self {
        FlightDevice { inner, sink: None }
    }

    /// Wraps a device with a sink installed from the start.
    pub fn with_sink(inner: D, sink: SharedFlightSink) -> Self {
        FlightDevice { inner, sink: Some(sink) }
    }

    /// Installs (or, with `None`, removes) the sink. Cloning the wrapper
    /// shares the sink.
    pub fn set_sink(&mut self, sink: Option<SharedFlightSink>) {
        self.sink = sink;
    }

    /// The installed sink, if any.
    pub fn sink(&self) -> Option<&SharedFlightSink> {
        self.sink.as_ref()
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the middleware, returning the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Chip / local-block attribution for a global block address, using the
    /// same address map as [`ArrayDevice`](crate::ArrayDevice): chip
    /// `b / local_blocks`, local block `b % local_blocks`.
    fn attribute(&self, b: BlockId) -> (u32, u32) {
        let chips = self.inner.chip_count().max(1);
        let local_blocks = (self.inner.geometry().blocks_per_chip / chips).max(1);
        (b.0 / local_blocks, b.0 % local_blocks)
    }

    /// Reports one completed (or torn) operation at the profile's billed
    /// cost.
    fn emit_ok(&self, kind: OpKind, block: BlockId, page: Option<u32>, torn: bool) {
        if let Some(s) = &self.sink {
            let (us, uj) = self.inner.profile().timing.cost(kind);
            let (chip, local_block) = self.attribute(block);
            s.record_flight_op(&FlightOp {
                kind,
                block: Some(block.0),
                local_block: Some(local_block),
                page,
                chip,
                device_us: us,
                energy_uj: uj,
                ok: true,
                err: None,
                torn,
            });
        }
    }

    /// Reports one rejected operation (never reached the physics, so it
    /// cost nothing) with its stable error code.
    fn emit_err(&self, kind: OpKind, block: BlockId, page: Option<u32>, err: &FlashError) {
        if let Some(s) = &self.sink {
            let (chip, local_block) = self.attribute(block);
            s.record_flight_op(&FlightOp {
                kind,
                block: Some(block.0),
                local_block: Some(local_block),
                page,
                chip,
                device_us: 0.0,
                energy_uj: 0.0,
                ok: false,
                err: Some(err.code()),
                torn: false,
            });
        }
    }

    /// Reports the outcome of one addressed operation and passes the result
    /// through.
    fn observe<T>(
        &self,
        kind: OpKind,
        block: BlockId,
        page: Option<u32>,
        torn: bool,
        r: Result<T>,
    ) -> Result<T> {
        match &r {
            Ok(_) => self.emit_ok(kind, block, page, torn),
            Err(e) => self.emit_err(kind, block, page, e),
        }
        r
    }
}

impl<D: NandDevice> NandDevice for FlightDevice<D> {
    fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }
    fn profile(&self) -> &ChipProfile {
        self.inner.profile()
    }
    fn seed(&self) -> u64 {
        self.inner.seed()
    }
    fn chip_count(&self) -> u32 {
        self.inner.chip_count()
    }
    fn meter(&self) -> MeterSnapshot {
        self.inner.meter()
    }
    fn reset_meter(&mut self) {
        self.inner.reset_meter();
    }
    fn record_op(&mut self, kind: OpKind) {
        self.inner.record_op(kind);
        // A billed attempt from the fault layer above: it consumed device
        // time but never carried its address down the stack.
        if let Some(s) = &self.sink {
            let (us, uj) = self.inner.profile().timing.cost(kind);
            s.record_flight_op(&FlightOp {
                kind,
                block: None,
                local_block: None,
                page: None,
                chip: 0,
                device_us: us,
                energy_uj: uj,
                ok: false,
                err: Some("faulted-attempt"),
                torn: false,
            });
        }
    }
    fn record_fault(&mut self, kind: FaultKind) {
        self.inner.record_fault(kind);
        if let Some(s) = &self.sink {
            s.record_flight_fault(kind);
        }
    }
    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.inner.install_recorder(recorder);
    }
    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        self.set_sink(sink);
    }
    fn advance_time_us(&mut self, us: f64) {
        self.inner.advance_time_us(us);
        if let Some(s) = &self.sink {
            s.record_flight_wait(us);
        }
    }
    fn set_read_noise_scale(&mut self, scale: f64) {
        self.inner.set_read_noise_scale(scale);
    }
    fn block_pec(&self, b: BlockId) -> Result<u32> {
        self.inner.block_pec(b)
    }
    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        self.inner.mark_bad(b)
    }
    fn is_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_bad(b)
    }
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        let newly = !self.inner.is_grown_bad(b)?;
        self.inner.grow_bad_block(b)?;
        if newly {
            if let Some(s) = &self.sink {
                s.record_flight_fault(FaultKind::GrownBad);
            }
        }
        Ok(())
    }
    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_grown_bad(b)
    }
    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        self.inner.is_page_programmed(p)
    }
    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        self.inner.discard_block_state(b)
    }
    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        let r = self.inner.erase_block(b);
        self.observe(OpKind::Erase, b, None, false, r)
    }
    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        // Unmetered on the device; not flight-recorded either.
        self.inner.cycle_block(b, n)
    }
    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        let r = self.inner.program_page(p, data);
        self.observe(OpKind::Program, p.block, Some(p.page), false, r)
    }
    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        let r = self.inner.program_page_with_spare(p, data, spare);
        self.observe(OpKind::Program, p.block, Some(p.page), false, r)
    }
    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        let r = self.inner.read_spare(p);
        self.observe(OpKind::Read, p.block, Some(p.page), false, r)
    }
    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        let r = self.inner.torn_program_page(p, data, fraction);
        self.observe(OpKind::Program, p.block, Some(p.page), true, r)
    }
    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        let r = self.inner.torn_partial_program(p, mask, fraction);
        self.observe(OpKind::PartialProgram, p.block, Some(p.page), true, r)
    }
    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        let r = self.inner.torn_erase_block(b, fraction);
        self.observe(OpKind::Erase, b, None, true, r)
    }
    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        let r = self.inner.partial_program(p, mask);
        self.observe(OpKind::PartialProgram, p.block, Some(p.page), false, r)
    }
    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        let r = self.inner.fine_partial_program(p, mask, target);
        self.observe(OpKind::PartialProgram, p.block, Some(p.page), false, r)
    }
    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        let r = self.inner.read_page_shifted(p, vref);
        self.observe(OpKind::Read, p.block, Some(p.page), false, r)
    }
    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        let r = self.inner.read_page_shifted_into(p, vref, out);
        self.observe(OpKind::Read, p.block, Some(p.page), false, r)
    }
    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        let r = self.inner.read_page_sweep(p, vrefs);
        match &r {
            // The device meters one read per reference voltage; the flight
            // ring must agree with the meter.
            Ok(_) => {
                for _ in vrefs {
                    self.emit_ok(OpKind::Read, p.block, Some(p.page), false);
                }
            }
            Err(e) => self.emit_err(OpKind::Read, p.block, Some(p.page), e),
        }
        r
    }
    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        let r = self.inner.probe_voltages_into(p, out);
        self.observe(OpKind::Probe, p.block, Some(p.page), false, r)
    }
    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        if self.sink.is_none() {
            // Sink-less flight recording is exact passthrough, batches
            // included.
            return self.inner.exec(cmds);
        }
        // Dispatch through `self` so every op lands in the ring with its
        // address. Fused sweeps stay fused — `read_page_sweep` above
        // forwards the whole sweep to the backend.
        cmds.iter().map(|cmd| dispatch_one(self, cmd)).collect()
    }
    fn age_days(&mut self, days: f64) {
        self.inner.age_days(days);
    }
    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        let r = self.inner.stress_cells(p, mask, cycles);
        match &r {
            // Metered as `cycles` program operations.
            Ok(_) => {
                for _ in 0..cycles {
                    self.emit_ok(OpKind::Program, p.block, Some(p.page), false);
                }
            }
            Err(e) => self.emit_err(OpKind::Program, p.block, Some(p.page), e),
        }
        r
    }
    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        let r = self.inner.program_time_probe(p, steps);
        match &r {
            // Metered as `steps` partial-programs plus `steps` reads,
            // interleaved like the incremental-program loop issues them.
            Ok(_) => {
                for _ in 0..steps {
                    self.emit_ok(OpKind::PartialProgram, p.block, Some(p.page), false);
                    self.emit_ok(OpKind::Read, p.block, Some(p.page), false);
                }
            }
            Err(e) => self.emit_err(OpKind::PartialProgram, p.block, Some(p.page), e),
        }
        r
    }
}

impl<D: NandDevice + DeviceState> DeviceState for FlightDevice<D> {
    fn save_state(&self, w: &mut StateWriter) {
        // The sink is configuration, not simulation state.
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> std::result::Result<(), SnapshotError> {
        self.inner.load_state(r)
    }
}

// ---------------------------------------------------------------------------
// SnapshotDevice
// ---------------------------------------------------------------------------

/// Checkpoint/restore middleware: serializes the full mutable state of the
/// wrapped [`DeviceState`] stack so a long experiment can stop and resume
/// with bit-identical random streams, voltages, wear and meters.
///
/// The wrapper itself holds no state beyond the wrapped device; it exists
/// to give checkpointing an explicit place in a middleware stack:
///
/// `SnapshotDevice<FaultDevice<TraceDevice<Chip>>>` checkpoints the chip
/// *and* the fault plan's stream position in one artifact.
#[derive(Debug, Clone)]
pub struct SnapshotDevice<D> {
    inner: D,
}

impl<D: NandDevice + DeviceState> SnapshotDevice<D> {
    /// Wraps a checkpointable device.
    pub fn new(inner: D) -> Self {
        SnapshotDevice { inner }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the middleware, returning the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Serializes the full device state to bytes (magic + version header
    /// followed by the [`DeviceState`] stream).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_bytes(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        self.inner.save_state(&mut w);
        w.into_bytes()
    }

    /// Restores device state from bytes produced by
    /// [`checkpoint_bytes`](Self::checkpoint_bytes) on an
    /// identically-configured device.
    ///
    /// # Errors
    ///
    /// Fails on a bad header, truncated/corrupt stream, or configuration
    /// mismatch; the device should be discarded after a failed restore.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> std::result::Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        if r.get_bytes(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt("bad snapshot magic"));
        }
        let version = r.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot version {version}, expected {SNAPSHOT_VERSION}"
            )));
        }
        self.inner.load_state(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt("trailing bytes after device state"));
        }
        Ok(())
    }

    /// Writes a checkpoint file.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn checkpoint_to(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::result::Result<(), SnapshotError> {
        std::fs::write(path, self.checkpoint_bytes())?;
        Ok(())
    }

    /// Restores from a checkpoint file written by
    /// [`checkpoint_to`](Self::checkpoint_to).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or any [`restore_bytes`](Self::restore_bytes)
    /// error.
    pub fn restore_from(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> std::result::Result<(), SnapshotError> {
        let bytes = std::fs::read(path)?;
        self.restore_bytes(&bytes)
    }
}

impl<D: NandDevice> NandDevice for SnapshotDevice<D> {
    fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }
    fn profile(&self) -> &ChipProfile {
        self.inner.profile()
    }
    fn seed(&self) -> u64 {
        self.inner.seed()
    }
    fn chip_count(&self) -> u32 {
        self.inner.chip_count()
    }
    fn meter(&self) -> MeterSnapshot {
        self.inner.meter()
    }
    fn reset_meter(&mut self) {
        self.inner.reset_meter();
    }
    fn record_op(&mut self, kind: OpKind) {
        self.inner.record_op(kind);
    }
    fn record_fault(&mut self, kind: FaultKind) {
        self.inner.record_fault(kind);
    }
    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.inner.install_recorder(recorder);
    }
    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        self.inner.install_flight_sink(sink);
    }
    fn advance_time_us(&mut self, us: f64) {
        self.inner.advance_time_us(us);
    }
    fn set_read_noise_scale(&mut self, scale: f64) {
        self.inner.set_read_noise_scale(scale);
    }
    fn block_pec(&self, b: BlockId) -> Result<u32> {
        self.inner.block_pec(b)
    }
    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        self.inner.mark_bad(b)
    }
    fn is_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_bad(b)
    }
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        self.inner.grow_bad_block(b)
    }
    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_grown_bad(b)
    }
    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        self.inner.is_page_programmed(p)
    }
    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        self.inner.discard_block_state(b)
    }
    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        self.inner.erase_block(b)
    }
    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        self.inner.cycle_block(b, n)
    }
    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        self.inner.program_page(p, data)
    }
    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        self.inner.program_page_with_spare(p, data, spare)
    }
    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        self.inner.read_spare(p)
    }
    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_program_page(p, data, fraction)
    }
    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_partial_program(p, mask, fraction)
    }
    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        self.inner.torn_erase_block(b, fraction)
    }
    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        self.inner.partial_program(p, mask)
    }
    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        self.inner.fine_partial_program(p, mask, target)
    }
    fn read_page(&mut self, p: PageId) -> Result<BitPattern> {
        self.inner.read_page(p)
    }
    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        self.inner.read_page_shifted(p, vref)
    }
    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        self.inner.read_page_shifted_into(p, vref, out)
    }
    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        self.inner.read_page_sweep(p, vrefs)
    }
    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        self.inner.probe_voltages_into(p, out)
    }
    fn age_days(&mut self, days: f64) {
        self.inner.age_days(days);
    }
    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        self.inner.stress_cells(p, mask, cycles)
    }
    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        self.inner.program_time_probe(p, steps)
    }
    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        self.inner.exec(cmds)
    }
}

impl<D: NandDevice + DeviceState> DeviceState for SnapshotDevice<D> {
    fn save_state(&self, w: &mut StateWriter) {
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> std::result::Result<(), SnapshotError> {
        self.inner.load_state(r)
    }
}

// ---------------------------------------------------------------------------
// PowerCutDevice
// ---------------------------------------------------------------------------

/// What a mid-operation power cut did to the interrupted command, kept so
/// crash harnesses can report which op kind each cut landed on.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GateOutcome {
    /// No cut fired; execute the operation normally.
    Pass,
    /// A cut fired before the operation took effect (fraction 0, or a
    /// mid-cut on an operation with no torn variant, e.g. a read).
    CutBefore,
    /// A cut fired partway through: execute the torn variant, then latch.
    CutMid(f64),
}

/// Power-cut middleware: counts device command operations against a
/// deterministic cut schedule and, when a cut fires, leaves the interrupted
/// operation *torn* on the medium, latches the device off (every further
/// command fails with [`FlashError::PowerLoss`]) and bills a
/// [`FaultKind::PowerLoss`] fault. [`reboot`](Self::reboot) restores power
/// without touching cell state, so the post-crash medium is exactly what
/// the cut left behind — bit-deterministically, run after run.
///
/// Cut semantics per [`PowerCut`]: a cut scheduled at operation index `i`
/// with `fraction == 0.0` fires *before* operation `i` executes ("cut after
/// the first `i` ops"); `0 < fraction < 1` executes the torn variant of
/// operation `i` (a prefix of the page programmed with no spare landed, a
/// partially-erased block, a PP pulse train stopped early) and then latches.
/// Operations with no durable effect (reads, probes) have no torn variant:
/// a mid-cut on one behaves like a cut before it.
///
/// Host-side simulation controls (geometry, meters, bad-block bookkeeping,
/// retention aging — the unpowered chip still leaks charge) remain
/// available while the device is off; only command operations are gated.
#[derive(Debug, Clone)]
pub struct PowerCutDevice<D> {
    inner: D,
    /// Remaining schedule, sorted by `at_op`.
    cuts: Vec<PowerCut>,
    /// Index of the next unconsumed cut in `cuts`.
    fired: usize,
    /// Command operations attempted so far (the cut clock).
    op_index: u64,
    /// Latched off after a cut until `reboot`.
    off: bool,
    /// Opt-in op-kind log so harnesses can map op indices to kinds.
    op_log: Option<Vec<OpKind>>,
}

impl<D: NandDevice> PowerCutDevice<D> {
    /// Wraps a device with no cuts scheduled (pure passthrough).
    pub fn new(inner: D) -> Self {
        PowerCutDevice { inner, cuts: Vec::new(), fired: 0, op_index: 0, off: false, op_log: None }
    }

    /// Wraps a device with the power-cut schedule of `plan` installed.
    /// Only the plan's cuts are consumed here; its fault probabilities
    /// belong in a [`FaultDevice`] further down the stack.
    pub fn with_plan(inner: D, plan: &FaultPlan) -> Self {
        Self::with_cuts(inner, plan.power_cuts())
    }

    /// Wraps a device with an explicit cut schedule.
    pub fn with_cuts(inner: D, mut cuts: Vec<PowerCut>) -> Self {
        cuts.sort_by_key(|c| c.at_op);
        PowerCutDevice { inner, cuts, fired: 0, op_index: 0, off: false, op_log: None }
    }

    /// Whether the device is latched off after a cut.
    pub fn is_off(&self) -> bool {
        self.off
    }

    /// Command operations attempted so far.
    pub fn op_index(&self) -> u64 {
        self.op_index
    }

    /// Restores power after a cut. Cell state is untouched: the medium
    /// comes back exactly as the cut left it. Already-consumed cuts stay
    /// consumed; later scheduled cuts still fire at their op index.
    pub fn reboot(&mut self) {
        self.off = false;
    }

    /// Enables (or disables) logging the [`OpKind`] of every attempted
    /// command, so a harness can instrument an uncut run and aim mid-pulse
    /// cuts at specific PP operations.
    pub fn set_op_logging(&mut self, on: bool) {
        self.op_log = if on { Some(Vec::new()) } else { None };
    }

    /// The logged op kinds, one per attempted command, if logging is on.
    pub fn op_log(&self) -> &[OpKind] {
        self.op_log.as_deref().unwrap_or(&[])
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the middleware, returning the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Gates one command operation against the schedule: rejects if off,
    /// advances the cut clock, and fires at most one scheduled cut.
    fn gate(&mut self, kind: OpKind) -> Result<GateOutcome> {
        if self.off {
            return Err(FlashError::PowerLoss);
        }
        let i = self.op_index;
        self.op_index += 1;
        if let Some(log) = self.op_log.as_mut() {
            log.push(kind);
        }
        while let Some(cut) = self.cuts.get(self.fired) {
            if cut.at_op < i {
                // Stale entry (e.g. duplicate index); skip it.
                self.fired += 1;
                continue;
            }
            if cut.at_op == i {
                self.fired += 1;
                self.off = true;
                self.inner.record_fault(FaultKind::PowerLoss);
                if cut.fraction > 0.0 {
                    return Ok(GateOutcome::CutMid(cut.fraction));
                }
                return Ok(GateOutcome::CutBefore);
            }
            break;
        }
        Ok(GateOutcome::Pass)
    }

    /// Finishes a mid-operation cut: the torn variant has (attempted to)
    /// land; the command itself still reports power loss. An address error
    /// from the torn variant means nothing was mutated — indistinguishable
    /// from a cut before the op, so it is still reported as power loss.
    fn torn_done(&mut self, torn_result: Result<()>) -> Result<()> {
        debug_assert!(self.off);
        drop(torn_result);
        Err(FlashError::PowerLoss)
    }

    /// Whether the next `n` clock ticks are guaranteed cut-free.
    fn clear_ops(&self, n: u64) -> bool {
        if self.off {
            return false;
        }
        let end = self.op_index.saturating_add(n);
        self.cuts[self.fired..].iter().all(|c| c.at_op < self.op_index || c.at_op >= end)
    }

    /// Number of leading commands of `cmds` guaranteed to execute with no
    /// cut firing. 0 when the device is off or the next live cut lands
    /// inside the first command.
    fn batchable_prefix(&self, cmds: &[NandCmd]) -> usize {
        if self.off {
            return 0;
        }
        let budget = self.cuts[self.fired..]
            .iter()
            .filter(|c| c.at_op >= self.op_index)
            .map(|c| c.at_op - self.op_index)
            .min()
            .unwrap_or(u64::MAX);
        let mut used = 0u64;
        let mut n = 0;
        for cmd in cmds {
            let span = gate_profile(cmd).map_or(0, |(_, count)| count);
            if used.saturating_add(span) > budget {
                break;
            }
            used += span;
            n += 1;
        }
        n
    }

    /// Advances the cut clock past a batched command the schedule cannot
    /// interrupt, logging exactly what per-op gating would have logged.
    fn advance_clock(&mut self, kind: OpKind, count: u64) {
        self.op_index += count;
        if let Some(log) = self.op_log.as_mut() {
            log.extend(std::iter::repeat(kind).take(count as usize));
        }
    }
}

/// The cut-clock footprint of a command: the [`OpKind`] gated and how many
/// clock ticks it consumes (a sweep ticks once per reference voltage,
/// exactly like the equivalent sequence of shifted reads). `None` for
/// commands that are off the cut clock entirely.
fn gate_profile(cmd: &NandCmd) -> Option<(OpKind, u64)> {
    match cmd {
        NandCmd::EraseBlock(_) => Some((OpKind::Erase, 1)),
        NandCmd::ProgramPage(..) | NandCmd::StressCells(..) => Some((OpKind::Program, 1)),
        NandCmd::PartialProgram(..)
        | NandCmd::FinePartialProgram(..)
        | NandCmd::ProgramTimeProbe(..) => Some((OpKind::PartialProgram, 1)),
        NandCmd::ReadPage(_) | NandCmd::ReadPageShifted(..) | NandCmd::ReadSpare(_) => {
            Some((OpKind::Read, 1))
        }
        NandCmd::ReadPageSweep(_, vrefs) => Some((OpKind::Read, vrefs.len() as u64)),
        NandCmd::ProbeVoltages(_) => Some((OpKind::Probe, 1)),
        NandCmd::CycleBlock(..)
        | NandCmd::AgeDays(_)
        | NandCmd::AdvanceTimeUs(_)
        | NandCmd::MarkBad(_)
        | NandCmd::GrowBadBlock(_)
        | NandCmd::DiscardBlockState(_) => None,
    }
}

impl<D: NandDevice> NandDevice for PowerCutDevice<D> {
    fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }
    fn profile(&self) -> &ChipProfile {
        self.inner.profile()
    }
    fn seed(&self) -> u64 {
        self.inner.seed()
    }
    fn chip_count(&self) -> u32 {
        self.inner.chip_count()
    }
    fn meter(&self) -> MeterSnapshot {
        self.inner.meter()
    }
    fn reset_meter(&mut self) {
        self.inner.reset_meter();
    }
    fn record_op(&mut self, kind: OpKind) {
        self.inner.record_op(kind);
    }
    fn record_fault(&mut self, kind: FaultKind) {
        self.inner.record_fault(kind);
    }
    fn install_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.inner.install_recorder(recorder);
    }
    fn install_flight_sink(&mut self, sink: Option<SharedFlightSink>) {
        self.inner.install_flight_sink(sink);
    }
    fn advance_time_us(&mut self, us: f64) {
        self.inner.advance_time_us(us);
    }
    fn set_read_noise_scale(&mut self, scale: f64) {
        self.inner.set_read_noise_scale(scale);
    }
    fn block_pec(&self, b: BlockId) -> Result<u32> {
        self.inner.block_pec(b)
    }
    fn mark_bad(&mut self, b: BlockId) -> Result<()> {
        self.inner.mark_bad(b)
    }
    fn is_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_bad(b)
    }
    fn grow_bad_block(&mut self, b: BlockId) -> Result<()> {
        self.inner.grow_bad_block(b)
    }
    fn is_grown_bad(&self, b: BlockId) -> Result<bool> {
        self.inner.is_grown_bad(b)
    }
    fn is_page_programmed(&self, p: PageId) -> Result<bool> {
        self.inner.is_page_programmed(p)
    }
    fn discard_block_state(&mut self, b: BlockId) -> Result<()> {
        self.inner.discard_block_state(b)
    }

    fn erase_block(&mut self, b: BlockId) -> Result<()> {
        match self.gate(OpKind::Erase)? {
            GateOutcome::Pass => self.inner.erase_block(b),
            GateOutcome::CutBefore => Err(FlashError::PowerLoss),
            GateOutcome::CutMid(f) => {
                let r = self.inner.torn_erase_block(b, f);
                self.torn_done(r)
            }
        }
    }

    fn cycle_block(&mut self, b: BlockId, n: u32) -> Result<()> {
        // Preconditioning is unmetered and off the cut clock, but a dead
        // device still rejects it.
        if self.off {
            return Err(FlashError::PowerLoss);
        }
        self.inner.cycle_block(b, n)
    }

    fn program_page(&mut self, p: PageId, data: &BitPattern) -> Result<()> {
        match self.gate(OpKind::Program)? {
            GateOutcome::Pass => self.inner.program_page(p, data),
            GateOutcome::CutBefore => Err(FlashError::PowerLoss),
            GateOutcome::CutMid(f) => {
                let r = self.inner.torn_program_page(p, data, f);
                self.torn_done(r)
            }
        }
    }

    fn program_page_with_spare(
        &mut self,
        p: PageId,
        data: &BitPattern,
        spare: &[u8],
    ) -> Result<()> {
        match self.gate(OpKind::Program)? {
            GateOutcome::Pass => self.inner.program_page_with_spare(p, data, spare),
            GateOutcome::CutBefore => Err(FlashError::PowerLoss),
            GateOutcome::CutMid(f) => {
                // The data cells tear; the spare — written last, atomically —
                // never lands. That asymmetry is the journal's crash signal.
                let r = self.inner.torn_program_page(p, data, f);
                self.torn_done(r)
            }
        }
    }

    fn read_spare(&mut self, p: PageId) -> Result<Option<Vec<u8>>> {
        match self.gate(OpKind::Read)? {
            GateOutcome::Pass => self.inner.read_spare(p),
            GateOutcome::CutBefore | GateOutcome::CutMid(_) => Err(FlashError::PowerLoss),
        }
    }

    fn partial_program(&mut self, p: PageId, mask: &BitPattern) -> Result<()> {
        match self.gate(OpKind::PartialProgram)? {
            GateOutcome::Pass => self.inner.partial_program(p, mask),
            GateOutcome::CutBefore => Err(FlashError::PowerLoss),
            GateOutcome::CutMid(f) => {
                let r = self.inner.torn_partial_program(p, mask, f);
                self.torn_done(r)
            }
        }
    }

    fn fine_partial_program(&mut self, p: PageId, mask: &BitPattern, target: Level) -> Result<()> {
        match self.gate(OpKind::PartialProgram)? {
            GateOutcome::Pass => self.inner.fine_partial_program(p, mask, target),
            GateOutcome::CutBefore => Err(FlashError::PowerLoss),
            GateOutcome::CutMid(f) => {
                // A fine PP train stopped early: the pulses that did land
                // went through the coarse path; the trim never happened.
                let r = self.inner.torn_partial_program(p, mask, f);
                self.torn_done(r)
            }
        }
    }

    fn read_page_shifted(&mut self, p: PageId, vref: Level) -> Result<BitPattern> {
        match self.gate(OpKind::Read)? {
            GateOutcome::Pass => self.inner.read_page_shifted(p, vref),
            GateOutcome::CutBefore | GateOutcome::CutMid(_) => Err(FlashError::PowerLoss),
        }
    }

    fn read_page_shifted_into(
        &mut self,
        p: PageId,
        vref: Level,
        out: &mut BitPattern,
    ) -> Result<()> {
        let outcome = match self.gate(OpKind::Read) {
            Ok(o) => o,
            Err(e) => {
                *out = BitPattern::zeros(0);
                return Err(e);
            }
        };
        match outcome {
            GateOutcome::Pass => self.inner.read_page_shifted_into(p, vref, out),
            GateOutcome::CutBefore | GateOutcome::CutMid(_) => {
                *out = BitPattern::zeros(0);
                Err(FlashError::PowerLoss)
            }
        }
    }

    fn read_page_sweep(&mut self, p: PageId, vrefs: &[Level]) -> Result<Vec<BitPattern>> {
        if self.clear_ops(vrefs.len() as u64) {
            for _ in vrefs {
                let outcome = self.gate(OpKind::Read)?;
                debug_assert_eq!(outcome, GateOutcome::Pass);
            }
            return self.inner.read_page_sweep(p, vrefs);
        }
        // A cut lands inside the sweep (or the device is off): per-vref
        // reads reproduce the sequential semantics — the reads before the
        // cut still hit the medium, then the cut reports power loss.
        vrefs.iter().map(|&v| self.read_page_shifted(p, v)).collect()
    }

    fn probe_voltages_into(&mut self, p: PageId, out: &mut Vec<Level>) -> Result<()> {
        out.clear();
        match self.gate(OpKind::Probe)? {
            GateOutcome::Pass => self.inner.probe_voltages_into(p, out),
            GateOutcome::CutBefore | GateOutcome::CutMid(_) => Err(FlashError::PowerLoss),
        }
    }

    fn age_days(&mut self, days: f64) {
        // Charge leaks whether or not the supply is up.
        self.inner.age_days(days);
    }

    fn stress_cells(&mut self, p: PageId, mask: &BitPattern, cycles: u32) -> Result<()> {
        match self.gate(OpKind::Program)? {
            GateOutcome::Pass => self.inner.stress_cells(p, mask, cycles),
            GateOutcome::CutBefore | GateOutcome::CutMid(_) => Err(FlashError::PowerLoss),
        }
    }

    fn program_time_probe(&mut self, p: PageId, steps: u16) -> Result<Vec<u16>> {
        match self.gate(OpKind::PartialProgram)? {
            GateOutcome::Pass => self.inner.program_time_probe(p, steps),
            GateOutcome::CutBefore | GateOutcome::CutMid(_) => Err(FlashError::PowerLoss),
        }
    }

    // Torn variants forward untouched: this middleware is the outermost
    // layer, but composing two cut schedules should not double-gate.
    fn torn_program_page(&mut self, p: PageId, data: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_program_page(p, data, fraction)
    }
    fn torn_partial_program(&mut self, p: PageId, mask: &BitPattern, fraction: f64) -> Result<()> {
        self.inner.torn_partial_program(p, mask, fraction)
    }
    fn torn_erase_block(&mut self, b: BlockId, fraction: f64) -> Result<()> {
        self.inner.torn_erase_block(b, fraction)
    }

    fn exec(&mut self, cmds: &[NandCmd]) -> Vec<CmdResult> {
        let mut out = Vec::with_capacity(cmds.len());
        let mut i = 0;
        while i < cmds.len() {
            let n = self.batchable_prefix(&cmds[i..]);
            if n == 0 {
                // Off, or a cut lands inside this command: per-op gating
                // takes over and fires the cut exactly where sequential
                // dispatch would.
                out.push(dispatch_one(self, &cmds[i]));
                i += 1;
                continue;
            }
            // The schedule cannot interrupt these commands: advance the cut
            // clock up front and hand the run to the backend's batch
            // planner in one piece.
            for cmd in &cmds[i..i + n] {
                if let Some((kind, count)) = gate_profile(cmd) {
                    self.advance_clock(kind, count);
                }
            }
            out.extend(self.inner.exec(&cmds[i..i + n]));
            i += n;
        }
        out
    }
}

impl<D: NandDevice + DeviceState> DeviceState for PowerCutDevice<D> {
    fn save_state(&self, w: &mut StateWriter) {
        self.inner.save_state(w);
        w.put_u64(self.op_index);
        w.put_bool(self.off);
        w.put_len(self.fired);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> std::result::Result<(), SnapshotError> {
        self.inner.load_state(r)?;
        self.op_index = r.get_u64()?;
        self.off = r.get_bool()?;
        let fired = r.get_len()?;
        if fired > self.cuts.len() {
            return Err(SnapshotError::Mismatch(
                "snapshot fired more power cuts than this device schedules".into(),
            ));
        }
        self.fired = fired;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Chip;
    use crate::recorder::CountingRecorder;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn chip() -> Chip {
        Chip::new(ChipProfile::test_small(), 42)
    }

    fn programmed_page<D: NandDevice + ?Sized>(dev: &mut D) -> (PageId, BitPattern) {
        let p = PageId::new(BlockId(0), 2);
        dev.erase_block(p.block).unwrap();
        let data = BitPattern::random_half(
            &mut rand::rngs::SmallRng::seed_from_u64(9),
            dev.geometry().cells_per_page(),
        );
        dev.program_page(p, &data).unwrap();
        (p, data)
    }

    #[test]
    fn none_plan_is_bit_identical_to_no_plan() {
        let run = |plan: Option<FaultPlan>| {
            let mut c = FaultDevice::new(Chip::new(ChipProfile::test_small(), 77));
            if let Some(plan) = plan {
                c.set_plan(plan);
            }
            let (p, _) = programmed_page(&mut c);
            let mask = BitPattern::ones(c.geometry().cells_per_page());
            c.partial_program(p, &mask).unwrap();
            (c.probe_voltages(p).unwrap(), c.meter())
        };
        assert_eq!(run(None), run(Some(FaultPlan::none())));
    }

    #[test]
    fn transient_program_fault_leaves_page_untouched() {
        let mut c = FaultDevice::with_plan(chip(), FaultPlan::new(3).with_program_fail(1.0));
        let p = PageId::new(BlockId(0), 0);
        c.erase_block(p.block).unwrap();
        let data = BitPattern::zeros(c.geometry().cells_per_page());
        assert_eq!(c.program_page(p, &data), Err(FlashError::TransientProgramFail(p)));
        assert!(!c.is_page_programmed(p).unwrap(), "failed program must not mark the page");
        // The failed attempt still reads fully erased, and a fault was metered.
        let bits = c.read_page(p).unwrap();
        assert_eq!(bits.count_zeros(), 0);
        assert_eq!(c.meter().fault_count(FaultKind::TransientProgram), 1);
        // Lifting the plan lets the same program succeed.
        c.set_plan(FaultPlan::none());
        c.program_page(p, &data).unwrap();
    }

    #[test]
    fn scheduled_grown_bad_fires_at_op_index() {
        let mut c =
            FaultDevice::with_plan(chip(), FaultPlan::new(1).schedule_grown_bad(BlockId(0), 2));
        let b = BlockId(0);
        c.erase_block(b).unwrap(); // op 0
        let data = BitPattern::ones(c.geometry().cells_per_page());
        c.program_page(PageId::new(b, 0), &data).unwrap(); // op 1
                                                           // Op 2 touches the block: the schedule marks it grown bad first.
        assert_eq!(c.erase_block(b), Err(FlashError::GrownBadBlock(b)));
        assert!(c.is_grown_bad(b).unwrap());
        assert_eq!(c.meter().fault_count(FaultKind::GrownBad), 1);
    }

    #[test]
    fn pec_threshold_grows_bad_on_erase() {
        let mut c = FaultDevice::with_plan(chip(), FaultPlan::new(1).with_grown_bad_after_pec(5));
        let b = BlockId(1);
        for _ in 0..4 {
            c.erase_block(b).unwrap();
        }
        assert_eq!(c.erase_block(b), Err(FlashError::GrownBadBlock(b)));
        assert!(c.is_grown_bad(b).unwrap());
        assert_eq!(c.block_pec(b).unwrap(), 4, "the failed erase must not add wear");
    }

    #[test]
    fn noise_spike_inflates_read_errors_within_window() {
        let errors_with = |factor: f64| {
            let mut c = FaultDevice::with_plan(
                Chip::new(ChipProfile::test_small(), 11),
                FaultPlan::new(2).with_noise_spike(0, 1_000, factor),
            );
            let (p, data) = programmed_page(&mut c);
            let mut errs = 0;
            for _ in 0..10 {
                errs += c.read_page(p).unwrap().hamming_distance(&data);
            }
            errs
        };
        assert!(
            errors_with(20.0) > errors_with(1.0) + 50,
            "a 20x sigma spike must visibly corrupt reads"
        );
    }

    #[test]
    fn stuck_cell_overrides_reads_and_probes() {
        // Stick cell 5 of page 0 high and cell 7 low.
        let mut c = FaultDevice::with_plan(
            chip(),
            FaultPlan::new(4).with_stuck_cell(BlockId(0), 5, 200).with_stuck_cell(BlockId(0), 7, 0),
        );
        let cpp = c.geometry().cells_per_page();
        let p = PageId::new(BlockId(0), 0);
        c.erase_block(p.block).unwrap();
        c.program_page(p, &BitPattern::ones(cpp)).unwrap();
        let levels = c.probe_voltages(p).unwrap();
        assert_eq!(levels[5], 200);
        assert_eq!(levels[7], 0);
        let bits = c.read_page(p).unwrap();
        assert!(!bits.get(5), "stuck-high cell must read programmed");
        assert!(bits.get(7), "stuck-low cell must read erased");
    }

    #[test]
    fn counting_recorder_observes_device_ops() {
        let rec = Arc::new(CountingRecorder::new());
        let mut c = TraceDevice::new(Chip::new(ChipProfile::test_small(), 3));
        c.set_recorder(Some(rec.clone()));
        c.erase_block(BlockId(0)).unwrap();
        let _ = c.read_page(PageId::new(BlockId(0), 0)).unwrap();
        c.advance_time_us(25.0);
        assert_eq!(rec.ops(), 2);
        assert_eq!(rec.waits(), 1);
        assert_eq!(rec.faults(), 0);
        // Ops observed match the meter exactly.
        assert_eq!(rec.ops(), c.meter().total_ops());
    }

    #[test]
    fn recorder_survives_device_clone() {
        let rec = Arc::new(CountingRecorder::new());
        let mut c = TraceDevice::new(Chip::new(ChipProfile::test_small(), 3));
        c.set_recorder(Some(rec.clone()));
        let mut c2 = c.clone();
        c2.erase_block(BlockId(0)).unwrap();
        assert_eq!(rec.ops(), 1, "clone shares the recorder");
        c.set_recorder(None);
        c.erase_block(BlockId(1)).unwrap();
        assert_eq!(rec.ops(), 1, "detached device stops reporting");
    }

    #[test]
    fn trace_sees_faulted_attempts_through_the_canonical_stack() {
        // FaultDevice outermost: billing for the failed attempt flows
        // through the tracer exactly like a successful op would.
        let rec = Arc::new(CountingRecorder::new());
        let mut c = FaultDevice::with_plan(
            TraceDevice::with_recorder(chip(), rec.clone()),
            FaultPlan::new(3).with_program_fail(1.0),
        );
        let p = PageId::new(BlockId(0), 0);
        c.erase_block(p.block).unwrap();
        let data = BitPattern::zeros(c.geometry().cells_per_page());
        assert!(c.program_page(p, &data).is_err());
        assert_eq!(rec.ops(), 2, "erase + billed failed program attempt");
        assert_eq!(rec.faults(), 1);
        assert_eq!(rec.ops(), c.meter().total_ops(), "trace and meter agree");
    }

    #[test]
    fn trace_emits_multi_op_commands_like_the_meter_bills_them() {
        let rec = Arc::new(CountingRecorder::new());
        let mut c = TraceDevice::with_recorder(chip(), rec.clone());
        let p = PageId::new(BlockId(0), 0);
        c.erase_block(p.block).unwrap();
        let cpp = c.geometry().cells_per_page();
        c.stress_cells(p, &BitPattern::ones(cpp), 7).unwrap();
        let _ = c.program_time_probe(p, 30).unwrap();
        // erase(1) + stress(7 programs) + probe(30 pp + 30 reads)
        assert_eq!(rec.ops(), 1 + 7 + 60);
        assert_eq!(rec.ops(), c.meter().total_ops());
    }

    #[test]
    fn install_recorder_reaches_the_tracer_through_outer_middleware() {
        let rec = Arc::new(CountingRecorder::new());
        let mut c = FaultDevice::new(TraceDevice::new(chip()));
        c.install_recorder(Some(rec.clone() as SharedRecorder));
        c.erase_block(BlockId(0)).unwrap();
        assert_eq!(rec.ops(), 1);
    }

    #[test]
    fn wrapped_stack_matches_bare_chip_byte_for_byte() {
        // The satellite parity claim at unit scale: no-op middleware must
        // not perturb a single random draw.
        let drive = |dev: &mut dyn NandDevice| {
            let (p, _) = programmed_page(dev);
            let mask = BitPattern::ones(dev.geometry().cells_per_page());
            dev.partial_program(p, &mask).unwrap();
            dev.age_days(10.0);
            (dev.probe_voltages(p).unwrap(), dev.read_page(p).unwrap(), dev.meter())
        };
        let mut bare = chip();
        let mut stacked = FaultDevice::new(TraceDevice::new(chip()));
        assert_eq!(drive(&mut bare), drive(&mut stacked));
    }

    #[test]
    fn snapshot_device_roundtrips_chip_and_fault_stream() {
        let stack = || {
            SnapshotDevice::new(FaultDevice::with_plan(
                TraceDevice::new(chip()),
                FaultPlan::new(9).with_program_fail(0.2).with_erase_fail(0.1),
            ))
        };
        let mut dev = stack();
        let p = PageId::new(BlockId(0), 2);
        let data = BitPattern::zeros(dev.geometry().cells_per_page());
        // Drive through some faults so both RNG streams move.
        for _ in 0..8 {
            let _ = dev.erase_block(p.block);
            let _ = dev.program_page(p, &data);
            let _ = dev.erase_block(p.block);
        }
        let bytes = dev.checkpoint_bytes();

        let mut restored = stack();
        restored.restore_bytes(&bytes).unwrap();
        assert_eq!(restored.meter(), dev.meter());
        // Both continue identically: same physics draws AND same fault rolls.
        for _ in 0..8 {
            assert_eq!(dev.erase_block(p.block), restored.erase_block(p.block));
            assert_eq!(dev.program_page(p, &data), restored.program_page(p, &data));
        }
        assert_eq!(dev.meter(), restored.meter());
        assert_eq!(dev.probe_voltages(p), restored.probe_voltages(p));
    }

    #[test]
    fn snapshot_rejects_plan_presence_mismatch() {
        let mut with_plan = SnapshotDevice::new(FaultDevice::with_plan(
            chip(),
            FaultPlan::new(1).with_program_fail(0.5),
        ));
        let bytes = with_plan.checkpoint_bytes();
        let mut without = SnapshotDevice::new(FaultDevice::new(chip()));
        assert!(matches!(without.restore_bytes(&bytes), Err(SnapshotError::Mismatch(_))));
        // And a corrupt header is typed, not a panic.
        assert!(matches!(
            with_plan.restore_bytes(b"NOTASNAP"),
            Err(SnapshotError::Corrupt(_) | SnapshotError::Truncated)
        ));
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let mut dev = SnapshotDevice::new(chip());
        let (p, _) = programmed_page(&mut dev);
        let path = std::env::temp_dir().join("stash_flash_middleware_snapshot_test.bin");
        dev.checkpoint_to(&path).unwrap();
        let mut restored = SnapshotDevice::new(chip());
        restored.restore_from(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(dev.probe_voltages(p).unwrap(), restored.probe_voltages(p).unwrap());
    }

    #[test]
    fn no_cuts_is_bit_identical_passthrough() {
        let drive = |dev: &mut dyn NandDevice| {
            let (p, _) = programmed_page(dev);
            let mask = BitPattern::ones(dev.geometry().cells_per_page());
            dev.partial_program(p, &mask).unwrap();
            (dev.probe_voltages(p).unwrap(), dev.read_page(p).unwrap(), dev.meter())
        };
        let mut bare = chip();
        let mut gated = PowerCutDevice::new(chip());
        assert_eq!(drive(&mut bare), drive(&mut gated));
        assert!(!gated.is_off());
    }

    #[test]
    fn power_cut_only_plan_through_fault_device_is_passthrough() {
        // A plan carrying only a power-cut schedule installs a FaultState
        // (is_none() is false) but must not perturb a single random draw:
        // cuts are consumed by PowerCutDevice, not FaultDevice.
        let drive = |dev: &mut dyn NandDevice| {
            let (p, _) = programmed_page(dev);
            let mask = BitPattern::ones(dev.geometry().cells_per_page());
            dev.partial_program(p, &mask).unwrap();
            (dev.probe_voltages(p).unwrap(), dev.meter())
        };
        let mut bare = chip();
        let mut faulted = FaultDevice::with_plan(chip(), FaultPlan::new(5).with_power_cut(9999));
        assert!(faulted.plan().is_some());
        assert_eq!(drive(&mut bare), drive(&mut faulted));
    }

    #[test]
    fn cut_before_op_latches_without_executing() {
        // Cut at op index 1: the erase (op 0) lands, the program (op 1)
        // never reaches the medium.
        let mut dev = PowerCutDevice::with_plan(chip(), &FaultPlan::new(0).with_power_cut(1));
        let p = PageId::new(BlockId(0), 0);
        dev.erase_block(p.block).unwrap();
        let data = BitPattern::zeros(dev.geometry().cells_per_page());
        assert_eq!(dev.program_page(p, &data), Err(FlashError::PowerLoss));
        assert!(dev.is_off());
        assert_eq!(dev.meter().fault_count(FaultKind::PowerLoss), 1);
        // Every further command fails while off; metadata still works.
        assert_eq!(dev.read_page(p), Err(FlashError::PowerLoss));
        assert_eq!(dev.erase_block(p.block), Err(FlashError::PowerLoss));
        assert!(!dev.is_bad(p.block).unwrap());
        // After reboot the page is still unprogrammed: the op never ran.
        dev.reboot();
        assert!(!dev.is_page_programmed(p).unwrap());
        let bits = dev.read_page(p).unwrap();
        assert_eq!(bits.count_zeros(), 0, "page must read fully erased");
    }

    #[test]
    fn mid_cut_program_tears_data_and_never_lands_the_spare() {
        let cpp = chip().geometry().cells_per_page();
        let mut dev =
            PowerCutDevice::with_plan(chip(), &FaultPlan::new(0).with_power_cut_mid(1, 0.5));
        let p = PageId::new(BlockId(0), 0);
        dev.erase_block(p.block).unwrap();
        let data = BitPattern::zeros(cpp); // all cells programmed
        assert_eq!(dev.program_page_with_spare(p, &data, b"journal"), Err(FlashError::PowerLoss));
        dev.reboot();
        // The page is marked programmed (charge reached it) but only a
        // prefix of the cells took the pattern — and the spare is absent.
        assert!(dev.is_page_programmed(p).unwrap());
        assert_eq!(dev.read_spare(p).unwrap(), None, "torn program must not land the spare");
        let bits = dev.read_page(p).unwrap();
        let torn = bits.hamming_distance(&data);
        assert!(
            torn > cpp / 4 && torn < 3 * cpp / 4,
            "roughly half the cells must be torn, got {torn}/{cpp}"
        );
        // An intact program for comparison: spare lands atomically.
        let p2 = PageId::new(BlockId(0), 1);
        dev.program_page_with_spare(p2, &data, b"journal").unwrap();
        assert_eq!(dev.read_spare(p2).unwrap().as_deref(), Some(&b"journal"[..]));
    }

    #[test]
    fn mid_cut_erase_leaves_block_partially_erased() {
        let mut dev =
            PowerCutDevice::with_plan(chip(), &FaultPlan::new(0).with_power_cut_mid(2, 0.1));
        let cpp = dev.geometry().cells_per_page();
        let b = BlockId(0);
        let p = PageId::new(b, 0);
        dev.erase_block(b).unwrap(); // op 0
        dev.program_page(p, &BitPattern::zeros(cpp)).unwrap(); // op 1
        assert_eq!(dev.erase_block(b), Err(FlashError::PowerLoss)); // op 2, torn
        dev.reboot();
        // A 10%-complete erase leaves most of the programmed charge
        // (165 → ~146, still above the 127 read reference): the page still
        // reads mostly programmed, but wear was taken and the
        // page-programmed flags and spares were cleared by the erase pulse.
        assert!(!dev.is_page_programmed(p).unwrap());
        assert_eq!(dev.block_pec(b).unwrap(), 2, "torn erase still wears the block");
        let bits = dev.read_page(p).unwrap();
        assert!(
            bits.count_zeros() > cpp / 2,
            "a 10% erase must leave most cells reading programmed"
        );
    }

    #[test]
    fn reboot_and_rerun_is_bit_deterministic() {
        let run = || {
            let mut dev =
                PowerCutDevice::with_plan(chip(), &FaultPlan::new(0).with_power_cut_mid(3, 0.42));
            let cpp = dev.geometry().cells_per_page();
            let b = BlockId(0);
            dev.erase_block(b).unwrap();
            dev.program_page(PageId::new(b, 0), &BitPattern::zeros(cpp)).unwrap();
            dev.program_page(PageId::new(b, 1), &BitPattern::ones(cpp)).unwrap();
            let r = dev.program_page(PageId::new(b, 2), &BitPattern::zeros(cpp));
            assert_eq!(r, Err(FlashError::PowerLoss));
            dev.reboot();
            (
                dev.probe_voltages(PageId::new(b, 2)).unwrap(),
                dev.read_page(PageId::new(b, 0)).unwrap(),
                dev.meter(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batch_split_is_exact_when_the_cut_lands_on_a_batch_boundary() {
        // Sweep the cut across every op index touching a batch, including
        // exactly the first op (at_op == op_index when exec starts), the
        // last op inside the batch, and one past the end (fires only on a
        // later batch). batchable_prefix must split so the cut fires at
        // the identical op — and leaves the identical op log and results —
        // as per-op scalar dispatch.
        let batch = |cpp: usize| -> Vec<NandCmd> {
            let b = BlockId(0);
            vec![
                NandCmd::EraseBlock(b),
                NandCmd::ProgramPage(PageId::new(b, 0), BitPattern::zeros(cpp)),
                NandCmd::ProgramPage(PageId::new(b, 1), BitPattern::ones(cpp)),
                NandCmd::ReadPage(PageId::new(b, 0)),
                // A sweep ticks the cut clock once per vref: the boundary
                // can land *inside* this one command's span.
                NandCmd::ReadPageSweep(PageId::new(b, 0), vec![100, 120, 140]),
                NandCmd::ReadPage(PageId::new(b, 1)),
            ]
        };
        let total_span = 8u64; // 1 erase + 2 programs + 1 read + 3 sweep ticks + 1 read
        for at_op in 0..=total_span {
            let run = |batched: bool| {
                let mut dev =
                    PowerCutDevice::with_cuts(chip(), vec![PowerCut { at_op, fraction: 0.5 }]);
                dev.set_op_logging(true);
                let cmds = batch(dev.geometry().cells_per_page());
                let results: Vec<String> = if batched {
                    dev.exec(&cmds).iter().map(|r| format!("{r:?}")).collect()
                } else {
                    cmds.iter().map(|c| format!("{:?}", dispatch_one(&mut dev, c))).collect()
                };
                (results, dev.op_index(), dev.op_log().to_vec(), dev.is_off(), dev.meter())
            };
            assert_eq!(run(true), run(false), "cut at op {at_op} split the batch differently");
        }
        // at_op == total_span never fires within this workload: assert the
        // whole batch survived (no off-by-one cutting the last op short).
        let mut dev =
            PowerCutDevice::with_cuts(chip(), vec![PowerCut { at_op: total_span, fraction: 0.5 }]);
        let cmds = batch(dev.geometry().cells_per_page());
        let results = dev.exec(&cmds);
        assert!(!dev.is_off(), "cut one past the batch end must not fire inside it");
        assert_eq!(dev.op_index(), total_span);
        for (i, r) in results.iter().enumerate() {
            assert!(!format!("{r:?}").contains("PowerLoss"), "cmd {i} failed: {r:?}");
        }
    }

    #[test]
    fn op_log_maps_indices_to_kinds() {
        let mut dev = PowerCutDevice::new(chip());
        dev.set_op_logging(true);
        let (p, _) = programmed_page(&mut dev);
        let mask = BitPattern::ones(dev.geometry().cells_per_page());
        dev.partial_program(p, &mask).unwrap();
        let _ = dev.read_page(p).unwrap();
        assert_eq!(
            dev.op_log(),
            &[OpKind::Erase, OpKind::Program, OpKind::PartialProgram, OpKind::Read]
        );
        assert_eq!(dev.op_index(), 4);
    }

    #[test]
    fn snapshot_roundtrips_power_cut_frame() {
        let stack = |cuts: Vec<PowerCut>| {
            SnapshotDevice::new(PowerCutDevice::with_cuts(
                FaultDevice::new(TraceDevice::new(chip())),
                cuts,
            ))
        };
        let cuts = vec![PowerCut { at_op: 5, fraction: 0.0 }];
        let mut dev = stack(cuts.clone());
        let (p, _) = programmed_page(dev.inner_mut()); // ops 0..2 on the cut clock
        let bytes = dev.checkpoint_bytes();
        let mut restored = stack(cuts);
        restored.restore_bytes(&bytes).unwrap();
        assert_eq!(restored.inner().op_index(), dev.inner().op_index());
        assert!(!restored.inner().is_off());
        // Both continue on the same cut clock, identically.
        let mask = BitPattern::ones(dev.geometry().cells_per_page());
        for d in [&mut dev, &mut restored] {
            d.partial_program(p, &mask).unwrap();
        }
        assert_eq!(dev.probe_voltages(p), restored.probe_voltages(p));
    }

    #[test]
    fn middleware_constructors_build_the_canonical_stack() {
        let plan = FaultPlan::new(3).with_program_fail(1.0);
        let mut faulted = FaultDevice::with_plan(
            TraceDevice::new(Chip::new(ChipProfile::test_small(), 42)),
            plan,
        );
        assert!(faulted.plan().is_some());
        let p = PageId::new(BlockId(0), 0);
        faulted.erase_block(p.block).unwrap();
        let data = BitPattern::zeros(faulted.geometry().cells_per_page());
        assert_eq!(faulted.program_page(p, &data), Err(FlashError::TransientProgramFail(p)));

        let rec = Arc::new(CountingRecorder::new());
        let mut traced = TraceDevice::new(chip());
        traced.set_recorder(Some(rec.clone() as SharedRecorder));
        traced.erase_block(BlockId(0)).unwrap();
        assert_eq!(rec.ops(), 1);
    }
}
