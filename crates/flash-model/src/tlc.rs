//! TLC-mode operations: eight lobes, three logical pages per wordline.
//!
//! The paper's trajectory is explicit (§1): "flash can store one bit (SLC),
//! four voltage levels / two bits (MLC), eight levels / three bits (TLC)…
//! the number of bits stored in any given cell can be changed dynamically."
//! §6.2 expects hiding to extend "to MLC or TLC" with controller support.
//! TLC mode completes the density ladder for the simulator; the lobes are
//! narrower still, and raw BER correspondingly higher — matching the
//! industry trade-off the paper describes (refs [17, 20, 36]).
//!
//! Level order uses a 3-bit gray code so adjacent lobes differ in one bit:
//! `111 110 100 101 001 000 010 011` (lower, middle, upper).

use crate::bits::BitPattern;
use crate::error::FlashError;
use crate::geometry::PageId;
use crate::meter::OpKind;
use crate::{Chip, Result};

/// The eight-lobe gray code, indexed by level (L0..L7), as
/// (lower, middle, upper) bits.
const GRAY: [(bool, bool, bool); 8] = [
    (true, true, true),    // L0 (erased)
    (true, true, false),   // L1
    (true, false, false),  // L2
    (true, false, true),   // L3
    (false, false, true),  // L4
    (false, false, false), // L5
    (false, true, false),  // L6
    (false, true, true),   // L7
];

/// TLC lobe means: L1..L7 spread across the same voltage window as MLC but
/// tighter (paper Fig. 1: higher densities ⇒ narrower distributions).
const TLC_MEANS: [f64; 7] = [62.0, 86.0, 110.0, 134.0, 158.0, 182.0, 206.0];
/// TLC per-lobe sigma.
const TLC_SIGMA: f64 = 3.4;
/// Read references between adjacent lobes.
const TLC_REFS: [u8; 7] = [40, 74, 98, 122, 146, 170, 194];

impl Chip {
    /// Programs a wordline in TLC mode: three logical pages across eight
    /// lobes. Metered as three program operations.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses, bad blocks, pattern-length mismatch, or
    /// if the wordline was already programmed since its last erase.
    pub fn program_page_tlc(
        &mut self,
        p: PageId,
        lower: &BitPattern,
        middle: &BitPattern,
        upper: &BitPattern,
    ) -> Result<()> {
        let cpp = self.geometry().cells_per_page();
        for pat in [lower, middle, upper] {
            if pat.len() != cpp {
                return Err(FlashError::PatternLength { expected: cpp, got: pat.len() });
            }
        }
        let programmed_mask: BitPattern =
            (0..cpp).map(|i| lower.get(i) && middle.get(i) && upper.get(i)).collect();
        self.program_page(p, &programmed_mask)?;

        for i in 0..cpp {
            let bits = (lower.get(i), middle.get(i), upper.get(i));
            let level = GRAY.iter().position(|&g| g == bits).expect("gray code is total");
            if level == 0 {
                continue; // erased
            }
            self.place_cell_level(p, i, TLC_MEANS[level - 1], TLC_SIGMA);
        }
        // Middle + upper page passes.
        self.meter_record(OpKind::Program);
        self.meter_record(OpKind::Program);
        Ok(())
    }

    /// Reads a wordline in TLC mode via seven reference comparisons,
    /// undoing the gray mapping.
    ///
    /// # Errors
    ///
    /// Fails on invalid addresses or bad blocks.
    pub fn read_page_tlc(&mut self, p: PageId) -> Result<(BitPattern, BitPattern, BitPattern)> {
        let cpp = self.geometry().cells_per_page();
        let mut below: Vec<BitPattern> = Vec::with_capacity(7);
        for &r in &TLC_REFS {
            below.push(self.read_page_shifted(p, r)?);
        }
        let mut lower = BitPattern::zeros(cpp);
        let mut middle = BitPattern::zeros(cpp);
        let mut upper = BitPattern::zeros(cpp);
        for i in 0..cpp {
            let level = below.iter().take_while(|b| !b.get(i)).count();
            let (l, m, u) = GRAY[level];
            lower.set(i, l);
            middle.set(i, m);
            upper.set(i, u);
        }
        Ok((lower, middle, upper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockId, ChipProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn chip() -> Chip {
        Chip::new(ChipProfile::test_small(), 31)
    }

    fn pattern(chip: &Chip, seed: u64) -> BitPattern {
        BitPattern::random_half(
            &mut SmallRng::seed_from_u64(seed),
            chip.geometry().cells_per_page(),
        )
    }

    #[test]
    fn gray_code_is_a_bijection_with_single_bit_steps() {
        let set: std::collections::HashSet<_> = GRAY.iter().collect();
        assert_eq!(set.len(), 8);
        for w in GRAY.windows(2) {
            let diff = usize::from(w[0].0 != w[1].0)
                + usize::from(w[0].1 != w[1].1)
                + usize::from(w[0].2 != w[1].2);
            assert_eq!(diff, 1, "adjacent lobes must differ in one bit: {w:?}");
        }
    }

    #[test]
    fn tlc_roundtrip_three_logical_pages() {
        let mut c = chip();
        let (l, m, u) = (pattern(&c, 1), pattern(&c, 2), pattern(&c, 3));
        c.erase_block(BlockId(0)).unwrap();
        let p = PageId::new(BlockId(0), 0);
        c.program_page_tlc(p, &l, &m, &u).unwrap();
        let (rl, rm, ru) = c.read_page_tlc(p).unwrap();
        let errs = rl.hamming_distance(&l) + rm.hamming_distance(&m) + ru.hamming_distance(&u);
        // TLC margins are tight; a handful of raw errors per 3x2048 bits is
        // the realistic price of the density (paper refs [17, 36]).
        assert!(errs <= 12, "TLC raw errors {errs}");
    }

    #[test]
    fn tlc_raw_ber_higher_than_mlc() {
        let mut c = chip();
        let (l, m, u) = (pattern(&c, 4), pattern(&c, 5), pattern(&c, 6));
        c.erase_block(BlockId(0)).unwrap();
        c.erase_block(BlockId(1)).unwrap();
        let tlc_page = PageId::new(BlockId(0), 0);
        let mlc_page = PageId::new(BlockId(1), 0);
        c.program_page_tlc(tlc_page, &l, &m, &u).unwrap();
        c.program_page_mlc(mlc_page, &l, &m).unwrap();
        let (rl, rm, ru) = c.read_page_tlc(tlc_page).unwrap();
        let tlc_errs = rl.hamming_distance(&l) + rm.hamming_distance(&m) + ru.hamming_distance(&u);
        let (ml, mm) = c.read_page_mlc(mlc_page).unwrap();
        let mlc_errs = ml.hamming_distance(&l) + mm.hamming_distance(&m);
        // Normalize per stored bit.
        let tlc_ber = tlc_errs as f64 / (3.0 * l.len() as f64);
        let mlc_ber = mlc_errs as f64 / (2.0 * l.len() as f64);
        assert!(
            tlc_ber >= mlc_ber,
            "TLC ({tlc_ber:.2e}) should not beat MLC ({mlc_ber:.2e}) reliability"
        );
    }

    #[test]
    fn tlc_metered_as_three_programs() {
        let mut c = chip();
        let (l, m, u) = (pattern(&c, 7), pattern(&c, 8), pattern(&c, 9));
        c.erase_block(BlockId(0)).unwrap();
        c.reset_meter();
        c.program_page_tlc(PageId::new(BlockId(0), 0), &l, &m, &u).unwrap();
        assert_eq!(c.meter().count(OpKind::Program), 3);
    }

    #[test]
    fn tlc_respects_erase_rule() {
        let mut c = chip();
        let (l, m, u) = (pattern(&c, 10), pattern(&c, 11), pattern(&c, 12));
        c.erase_block(BlockId(0)).unwrap();
        let p = PageId::new(BlockId(0), 0);
        c.program_page_tlc(p, &l, &m, &u).unwrap();
        assert!(matches!(
            c.program_page_tlc(p, &l, &m, &u),
            Err(FlashError::PageAlreadyProgrammed(_))
        ));
    }
}
