//! Physical device fingerprints from program-timing variation.
//!
//! Following the method of the paper's ref \[39\] (Prabhu et al.,
//! "Extracting device fingerprints from flash memory by exploiting
//! physical variations"): each cell's programming speed is a fixed
//! manufacturing property. The fingerprint is the per-cell vector of
//! incremental-program crossing times of one page, averaged over a few
//! measurements to suppress probe noise. Two measurements of the same
//! physical page correlate strongly; measurements of different dies (or
//! different pages) do not correlate at all.

use stash_flash::{BlockId, NandDevice, PageId, Result};

/// How many incremental steps one timing probe uses.
const PROBE_STEPS: u16 = 30;

/// A device fingerprint: the averaged program-crossing-time profile of one
/// page, mean-centered.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    page: PageId,
    profile: Vec<f32>,
}

impl Fingerprint {
    /// Enrolls a fingerprint from page 0 of `block`, averaging `rounds`
    /// timing probes (4–8 is plenty). Destroys block contents.
    ///
    /// # Errors
    ///
    /// Propagates flash errors.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn enroll<D: NandDevice + ?Sized>(
        chip: &mut D,
        block: BlockId,
        rounds: usize,
    ) -> Result<Fingerprint> {
        assert!(rounds > 0, "need at least one probe round");
        let cpp = chip.geometry().cells_per_page();
        let page = PageId::new(block, 0);
        let mut acc = vec![0.0f64; cpp];
        for _ in 0..rounds {
            let steps = chip.program_time_probe(page, PROBE_STEPS)?;
            for (a, &s) in acc.iter_mut().zip(&steps) {
                *a += f64::from(s);
            }
        }
        let mean: f64 = acc.iter().sum::<f64>() / (cpp as f64);
        let profile = acc.iter().map(|&a| ((a - mean) / rounds as f64) as f32).collect();
        Ok(Fingerprint { page, profile })
    }

    /// The page the fingerprint was taken from.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// Pearson correlation between two fingerprints of equal length.
    /// Same silicon re-measured scores near 1; unrelated silicon near 0.
    ///
    /// # Panics
    ///
    /// Panics if the fingerprints have different lengths.
    pub fn similarity(&self, other: &Fingerprint) -> f64 {
        assert_eq!(self.profile.len(), other.profile.len(), "length mismatch");
        let n = self.profile.len() as f64;
        let (ma, mb) = (
            self.profile.iter().map(|&v| f64::from(v)).sum::<f64>() / n,
            other.profile.iter().map(|&v| f64::from(v)).sum::<f64>() / n,
        );
        let (mut cov, mut va, mut vb) = (0.0f64, 0.0f64, 0.0f64);
        for (&a, &b) in self.profile.iter().zip(&other.profile) {
            let (da, db) = (f64::from(a) - ma, f64::from(b) - mb);
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        if va == 0.0 || vb == 0.0 {
            return 0.0;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    /// Match decision: correlations above 0.5 cannot occur by chance over
    /// a 100k-cell page.
    pub fn matches(&self, other: &Fingerprint) -> bool {
        self.similarity(other) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_flash::{Chip, ChipProfile};

    fn chip(seed: u64) -> Chip {
        Chip::new(ChipProfile::vendor_a_scaled(), seed)
    }

    #[test]
    fn same_die_matches_across_cycles() {
        let mut c = chip(1);
        let a = Fingerprint::enroll(&mut c, BlockId(0), 4).unwrap();
        // Use the device in between: wear the block, re-enroll.
        c.cycle_block(BlockId(0), 50).unwrap();
        let b = Fingerprint::enroll(&mut c, BlockId(0), 4).unwrap();
        let sim = a.similarity(&b);
        assert!(sim > 0.8, "same-die similarity {sim}");
        assert!(a.matches(&b));
    }

    #[test]
    fn different_dies_do_not_match() {
        let mut c1 = chip(2);
        let mut c2 = chip(3);
        let a = Fingerprint::enroll(&mut c1, BlockId(0), 4).unwrap();
        let b = Fingerprint::enroll(&mut c2, BlockId(0), 4).unwrap();
        let sim = a.similarity(&b);
        assert!(sim.abs() < 0.2, "cross-die similarity {sim}");
        assert!(!a.matches(&b));
    }

    #[test]
    fn different_blocks_of_same_die_differ() {
        let mut c = chip(4);
        let a = Fingerprint::enroll(&mut c, BlockId(0), 4).unwrap();
        let b = Fingerprint::enroll(&mut c, BlockId(1), 4).unwrap();
        assert!(a.similarity(&b).abs() < 0.2);
    }

    #[test]
    fn similarity_is_symmetric_and_reflexive() {
        let mut c = chip(5);
        let a = Fingerprint::enroll(&mut c, BlockId(0), 4).unwrap();
        let b = Fingerprint::enroll(&mut c, BlockId(1), 4).unwrap();
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
        assert!(a.similarity(&a) > 0.999);
    }

    #[test]
    fn survives_retention_aging() {
        let mut c = chip(6);
        let a = Fingerprint::enroll(&mut c, BlockId(0), 4).unwrap();
        c.age_days(120.0);
        let b = Fingerprint::enroll(&mut c, BlockId(0), 4).unwrap();
        assert!(a.matches(&b), "fingerprint lost after 4 months: {}", a.similarity(&b));
    }

    #[test]
    fn single_round_still_matches_multi_round() {
        // More rounds = less noise, but even one round must identify.
        let mut c = chip(7);
        let a = Fingerprint::enroll(&mut c, BlockId(0), 8).unwrap();
        let b = Fingerprint::enroll(&mut c, BlockId(0), 1).unwrap();
        assert!(a.matches(&b), "1-vs-8 round similarity {}", a.similarity(&b));
    }
}
