//! A true random number generator harvesting flash programming noise
//! (paper ref \[16\]: "flash memory for ubiquitous hardware security
//! functions: true random number generation and device fingerprints").
//!
//! Each program operation charges cells with independent thermal/ISPP
//! noise; the low-order bit of a probed voltage level is physically random.
//! Raw harvested bits carry bias (the distribution is not symmetric around
//! half-levels), so the generator conditions them with a von Neumann
//! extractor before handing them out.

use stash_flash::{BitPattern, BlockId, Chip, NandDevice, PageId, Result};

/// Entropy source over one scratch block of a device.
#[derive(Debug)]
pub struct FlashTrng<'c, D: NandDevice = Chip> {
    chip: &'c mut D,
    block: BlockId,
    next_page: u32,
    pool: Vec<u8>,
    /// Probe buffer reused across harvests (one allocation per TRNG, not
    /// one per harvested page).
    levels: Vec<stash_flash::Level>,
}

impl<'c, D: NandDevice> FlashTrng<'c, D> {
    /// Creates a TRNG using `block` as scratch space (its contents are
    /// destroyed as entropy is harvested).
    pub fn new(chip: &'c mut D, block: BlockId) -> Self {
        FlashTrng { chip, block, next_page: u32::MAX, pool: Vec::new(), levels: Vec::new() }
    }

    /// Fills `out` with conditioned random bytes.
    ///
    /// # Errors
    ///
    /// Propagates flash errors from the harvesting programs/probes.
    pub fn fill(&mut self, out: &mut [u8]) -> Result<()> {
        for byte in out.iter_mut() {
            while self.pool.is_empty() {
                self.harvest()?;
            }
            *byte = self.pool.pop().expect("pool refilled");
        }
        Ok(())
    }

    /// Produces `n` conditioned random bytes.
    ///
    /// # Errors
    ///
    /// Propagates flash errors.
    pub fn bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        let mut out = vec![0u8; n];
        self.fill(&mut out)?;
        Ok(out)
    }

    /// Programs one scratch page and distills its voltage noise into pool
    /// bytes.
    fn harvest(&mut self) -> Result<()> {
        let pages = self.chip.geometry().pages_per_block;
        if self.next_page >= pages {
            self.chip.erase_block(self.block)?;
            self.next_page = 0;
        }
        let cpp = self.chip.geometry().cells_per_page();
        let page = PageId::new(self.block, self.next_page);
        self.next_page += 1;

        // Program everything: every cell receives fresh program noise.
        self.chip.program_page(page, &BitPattern::zeros(cpp))?;
        self.chip.probe_voltages_into(page, &mut self.levels)?;
        let levels = &self.levels;

        // Raw bit = LSB of the measured level; condition with von Neumann
        // (01 -> 0, 10 -> 1, 00/11 -> discard) to strip bias.
        let mut bit_acc = 0u8;
        let mut bit_count = 0u8;
        for pair in levels.chunks(2) {
            if pair.len() < 2 {
                break;
            }
            let (a, b) = (pair[0] & 1, pair[1] & 1);
            if a == b {
                continue;
            }
            bit_acc = (bit_acc << 1) | a;
            bit_count += 1;
            if bit_count == 8 {
                self.pool.push(bit_acc);
                bit_acc = 0;
                bit_count = 0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_flash::ChipProfile;

    fn chip(seed: u64) -> Chip {
        Chip::new(ChipProfile::vendor_a_scaled(), seed)
    }

    #[test]
    fn produces_requested_bytes() {
        let mut c = chip(1);
        let mut trng = FlashTrng::new(&mut c, BlockId(7));
        let bytes = trng.bytes(1024).unwrap();
        assert_eq!(bytes.len(), 1024);
    }

    #[test]
    fn output_is_balanced() {
        let mut c = chip(2);
        let mut trng = FlashTrng::new(&mut c, BlockId(7));
        let bytes = trng.bytes(8192).unwrap();
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let frac = f64::from(ones) / (8192.0 * 8.0);
        assert!((0.48..0.52).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    fn output_has_no_gross_byte_bias() {
        let mut c = chip(3);
        let mut trng = FlashTrng::new(&mut c, BlockId(7));
        let bytes = trng.bytes(16384).unwrap();
        let mut counts = [0u32; 256];
        for &b in &bytes {
            counts[b as usize] += 1;
        }
        // Chi-square against uniform: expected 64 per bucket.
        let expected = 16384.0 / 256.0;
        let chi2: f64 = counts.iter().map(|&c| (f64::from(c) - expected).powi(2) / expected).sum();
        // 255 degrees of freedom: mean 255, sd ~22.6; 5 sigma ≈ 368.
        assert!(chi2 < 368.0, "chi-square {chi2}");
    }

    #[test]
    fn consecutive_outputs_differ() {
        let mut c = chip(4);
        let mut trng = FlashTrng::new(&mut c, BlockId(7));
        let a = trng.bytes(64).unwrap();
        let b = trng.bytes(64).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_chips_produce_distinct_streams() {
        let mut c1 = chip(5);
        let mut c2 = chip(6);
        let a = FlashTrng::new(&mut c1, BlockId(7)).bytes(64).unwrap();
        let b = FlashTrng::new(&mut c2, BlockId(7)).bytes(64).unwrap();
        assert_ne!(a, b);
    }
}
