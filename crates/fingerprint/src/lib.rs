//! # stash-fingerprint — flash variability as identity and entropy
//!
//! *Stash in a Flash* builds on a line of work (its refs \[16, 39\]) that
//! uses the same physical variability VT-HI hides in for two other
//! security primitives, both name-checked in the paper's §1/§2/§9.1:
//!
//! * **Device fingerprinting** — each cell's interference coupling is a
//!   fixed manufacturing property, so the *pattern* of which erased cells
//!   charge up when their neighbors are programmed identifies the physical
//!   chip: "such fingerprints can be used to authenticate a device's
//!   origin" (§2). See [`Fingerprint`].
//! * **True random number generation** — programming noise is thermal and
//!   shot noise; the low-order bits of probed voltage levels are physically
//!   random. See [`FlashTrng`].
//!
//! Both primitives run on the same simulated chip as the hiding stack and
//! use only standard tester commands plus the voltage probe.
//!
//! ```
//! use stash_flash::{Chip, ChipProfile, BlockId};
//! use stash_fingerprint::Fingerprint;
//!
//! # fn main() -> Result<(), stash_flash::FlashError> {
//! let mut chip = Chip::new(ChipProfile::vendor_a_scaled(), 7);
//! let enrolled = Fingerprint::enroll(&mut chip, BlockId(0), 4)?;
//!
//! // Months later, or in another lab: same silicon, fresh measurement.
//! let probe = Fingerprint::enroll(&mut chip, BlockId(0), 4)?;
//! assert!(enrolled.similarity(&probe) > 0.8);
//!
//! // A different physical chip of the same model does not match.
//! let mut other = Chip::new(ChipProfile::vendor_a_scaled(), 8);
//! let imposter = Fingerprint::enroll(&mut other, BlockId(0), 4)?;
//! assert!(enrolled.similarity(&imposter) < 0.5);
//! # Ok(())
//! # }
//! ```

mod fp;
mod trng;

pub use fp::Fingerprint;
pub use trng::FlashTrng;
