//! ECC throughput at the paper's code points: the default per-page BCH
//! (256 code bits, t=4) and the enhanced configuration's 512-bit, t=12
//! segments, plus the SEC-DED comparison point.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use stash_ecc::bch::Bch;
use stash_ecc::hamming::ExtendedHamming;
use stash_ecc::rs::ReedSolomon;
use stash_ecc::BlockCode;
use std::hint::black_box;

fn data_for(code: &dyn BlockCode, seed: u64) -> Vec<bool> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..code.data_len()).map(|_| rng.gen()).collect()
}

fn with_errors(code: Vec<bool>, n: usize, seed: u64) -> Vec<bool> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = code;
    let mut hit = std::collections::HashSet::new();
    while hit.len() < n {
        let p = rng.gen_range(0..out.len());
        if hit.insert(p) {
            out[p] = !out[p];
        }
    }
    out
}

fn ecc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");

    let default_code = Bch::shortened(9, 4, 220);
    let enhanced_code = Bch::shortened(10, 12, 392);
    let hamming = ExtendedHamming::code_72_64();

    group.bench_function("bch256_t4_encode", |b| {
        let data = data_for(&default_code, 1);
        b.iter(|| black_box(default_code.encode(&data)));
    });
    group.bench_function("bch256_t4_decode_clean", |b| {
        let code = default_code.encode(&data_for(&default_code, 2));
        b.iter(|| black_box(default_code.decode(&code).unwrap()));
    });
    group.bench_function("bch256_t4_decode_4_errors", |b| {
        let code = with_errors(default_code.encode(&data_for(&default_code, 3)), 4, 4);
        b.iter(|| black_box(default_code.decode(&code).unwrap()));
    });
    group.bench_function("bch512_t12_decode_10_errors", |b| {
        let code = with_errors(enhanced_code.encode(&data_for(&enhanced_code, 5)), 10, 6);
        b.iter(|| black_box(enhanced_code.decode(&code).unwrap()));
    });
    group.bench_function("hamming72_decode_1_error", |b| {
        let code = with_errors(hamming.encode(&data_for(&hamming, 7)), 1, 8);
        b.iter(|| black_box(hamming.decode(&code).unwrap()));
    });

    // Reed–Solomon at the same 256-bit page budget: 32 symbols, t=4.
    let rs = ReedSolomon::new(32, 24);
    let rs_data: Vec<u8> = (0..24u8).collect();
    group.bench_function("rs32_t4_encode", |b| {
        b.iter(|| black_box(rs.encode(&rs_data)));
    });
    group.bench_function("rs32_t4_decode_3_symbol_errors", |b| {
        let mut word = rs.encode(&rs_data);
        word[2] ^= 0x55;
        word[10] ^= 0xAA;
        word[30] ^= 0x0F;
        b.iter(|| black_box(rs.decode(&word).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, ecc);
criterion_main!(benches);
