//! Ablations over the design choices DESIGN.md calls out:
//!  1. partial-program step budget `m` (encode cost scales with it);
//!  2. selection strategy (paper's ones-indexed vs robust absolute);
//!  3. ECC strength (BCH t) at the default hidden budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use stash_bench::experiment_key;
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, PageId};
use std::hint::black_box;
use vthi::{EccChoice, Hider, SelectionMode, VthiConfig};

fn ablations(c: &mut Criterion) {
    let key = experiment_key();

    // --- 1: PP step budget --------------------------------------------------
    {
        let mut group = c.benchmark_group("ablation_pp_steps");
        group.sample_size(20);
        for m in [1u8, 5, 10, 15] {
            group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
                let mut chip = Chip::new(ChipProfile::vendor_a_scaled(), 77);
                let mut cfg = VthiConfig::scaled_for(chip.geometry());
                cfg.max_pp_steps = m;
                cfg.ecc = EccChoice::None;
                let cpp = chip.geometry().cells_per_page();
                let mut rng = SmallRng::seed_from_u64(u64::from(m));
                let payload: Vec<u8> =
                    (0..cfg.payload_bytes_per_page()).map(|_| rng.gen()).collect();
                let mut page = 0u64;
                b.iter(|| {
                    let block = BlockId((page / 32) as u32 % 8);
                    let p = PageId::new(block, (page % 32) as u32);
                    if page % 32 == 0 {
                        chip.erase_block(block).unwrap();
                    }
                    let public = BitPattern::random_half(&mut rng, cpp);
                    let mut hider = Hider::new(&mut chip, key.clone(), cfg.clone());
                    black_box(hider.hide_on_fresh_page(p, &public, &payload).unwrap());
                    page += 1;
                });
            });
        }
        group.finish();
    }

    // --- 2: selection strategy ----------------------------------------------
    {
        let mut group = c.benchmark_group("ablation_selection");
        for (name, mode) in
            [("ones_indexed", SelectionMode::OnesIndexed), ("absolute", SelectionMode::Absolute)]
        {
            group.bench_function(name, |b| {
                let key = experiment_key();
                let geometry = stash_flash::Geometry::paper_vendor_a();
                let mut rng = SmallRng::seed_from_u64(4);
                let public = BitPattern::random_half(&mut rng, geometry.cells_per_page());
                let page = PageId::new(BlockId(0), 0);
                b.iter(|| {
                    black_box(vthi::select_hidden_cells(&key, &geometry, page, &public, 256, mode))
                });
            });
        }
        group.finish();
    }

    // --- 3: ECC strength ----------------------------------------------------
    {
        let mut group = c.benchmark_group("ablation_ecc_strength");
        for t in [2usize, 4, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
                let mut cfg = VthiConfig::paper_default();
                cfg.ecc = EccChoice::Bch { t, segment_bits: 0 };
                let code = cfg.segment_code().expect("bch");
                let mut rng = SmallRng::seed_from_u64(t as u64);
                let data: Vec<bool> = (0..code.data_bits()).map(|_| rng.gen()).collect();
                let mut word = code.encode(&data);
                // One error per codeword: the common case.
                word[13] = !word[13];
                b.iter(|| black_box(code.decode(&word).unwrap()));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, ablations);
criterion_main!(benches);
