//! Crypto primitive throughput: the from-scratch SHA-256 / ChaCha20 /
//! selection PRNG that every hide/reveal depends on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stash_crypto::{chacha20_xor, sha256, HidingKey, SelectionPrng};
use std::hint::black_box;

fn crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");

    group.throughput(Throughput::Bytes(4096));
    group.bench_function("sha256_4k", |b| {
        let data = vec![0xA5u8; 4096];
        b.iter(|| black_box(sha256(&data)));
    });

    group.throughput(Throughput::Bytes(4096));
    group.bench_function("chacha20_4k", |b| {
        let key = [7u8; 32];
        let mut data = vec![0u8; 4096];
        b.iter(|| chacha20_xor(&key, 1, black_box(&mut data)));
    });

    group.throughput(Throughput::Elements(256));
    group.bench_function("select_256_of_144384", |b| {
        let key = HidingKey::new([9u8; 32]);
        let mut page = 0u64;
        b.iter(|| {
            let mut s = SelectionPrng::new(&key, page);
            page += 1;
            black_box(s.choose_distinct(256, 144_384))
        });
    });

    group.finish();
}

criterion_group!(benches, crypto);
criterion_main!(benches);
