//! Simulator primitive costs: the per-operation host cost of the tester
//! command set on a full-size (18048-byte) page. Useful for spotting
//! regressions in the hot per-cell loops.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, Geometry, Histogram, PageId};
use std::hint::black_box;

fn chip() -> Chip {
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = Geometry { blocks_per_chip: 8, pages_per_block: 16, page_bytes: 18048 };
    Chip::new(profile, 5)
}

fn flash_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash_ops_18k_page");
    let mut rng = SmallRng::seed_from_u64(1);

    group.bench_function("program_page", |b| {
        let mut chip = chip();
        let cpp = chip.geometry().cells_per_page();
        let data = BitPattern::random_half(&mut rng, cpp);
        let mut i = 0u64;
        b.iter(|| {
            let page = PageId::new(BlockId(0), (i % 16) as u32);
            if i % 16 == 0 {
                chip.erase_block(BlockId(0)).unwrap();
            }
            chip.program_page(page, &data).unwrap();
            i += 1;
        });
    });

    group.bench_function("read_page", |b| {
        let mut chip = chip();
        let cpp = chip.geometry().cells_per_page();
        let data = BitPattern::random_half(&mut rng, cpp);
        chip.erase_block(BlockId(0)).unwrap();
        chip.program_page(PageId::new(BlockId(0), 0), &data).unwrap();
        b.iter(|| black_box(chip.read_page(PageId::new(BlockId(0), 0)).unwrap()));
    });

    group.bench_function("read_page_shifted", |b| {
        let mut chip = chip();
        let cpp = chip.geometry().cells_per_page();
        let data = BitPattern::random_half(&mut rng, cpp);
        chip.erase_block(BlockId(0)).unwrap();
        chip.program_page(PageId::new(BlockId(0), 0), &data).unwrap();
        b.iter(|| black_box(chip.read_page_shifted(PageId::new(BlockId(0), 0), 40).unwrap()));
    });

    group.bench_function("probe_voltages", |b| {
        let mut chip = chip();
        let cpp = chip.geometry().cells_per_page();
        let data = BitPattern::random_half(&mut rng, cpp);
        chip.erase_block(BlockId(0)).unwrap();
        chip.program_page(PageId::new(BlockId(0), 0), &data).unwrap();
        b.iter(|| black_box(chip.probe_voltages(PageId::new(BlockId(0), 0)).unwrap()));
    });

    // The allocation-free probe used by the block-feature hot path: one
    // buffer reused across all iterations, feeding the batched histogram.
    group.bench_function("probe_voltages_into_histogram", |b| {
        let mut chip = chip();
        let cpp = chip.geometry().cells_per_page();
        let data = BitPattern::random_half(&mut rng, cpp);
        chip.erase_block(BlockId(0)).unwrap();
        chip.program_page(PageId::new(BlockId(0), 0), &data).unwrap();
        let mut levels = Vec::new();
        b.iter(|| {
            let mut h = Histogram::new();
            chip.probe_voltages_into(PageId::new(BlockId(0), 0), &mut levels).unwrap();
            h.add_levels(&levels);
            black_box(h.total())
        });
    });

    group.bench_function("bitpattern_hamming_18k", |b| {
        let a = BitPattern::random_half(&mut rng, 18048 * 8);
        let bpat = BitPattern::random_half(&mut rng, 18048 * 8);
        b.iter(|| black_box(a.hamming_distance(&bpat)));
    });

    group.bench_function("partial_program_256_cells", |b| {
        let mut chip = chip();
        let cpp = chip.geometry().cells_per_page();
        let data = BitPattern::random_half(&mut rng, cpp);
        chip.erase_block(BlockId(0)).unwrap();
        chip.program_page(PageId::new(BlockId(0), 0), &data).unwrap();
        let mut mask = BitPattern::zeros(cpp);
        let mut n = 0;
        for i in 0..cpp {
            if data.get(i) {
                mask.set(i, true);
                n += 1;
                if n == 256 {
                    break;
                }
            }
        }
        b.iter(|| chip.partial_program(PageId::new(BlockId(0), 0), &mask).unwrap());
    });

    group.bench_function("erase_block_16_pages", |b| {
        let mut chip = chip();
        b.iter(|| chip.erase_block(BlockId(1)).unwrap());
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = flash_ops
}
criterion_main!(benches);
