//! Adversary training cost: SMO on histogram-shaped feature vectors at the
//! paper's dataset scale (2 training chips × 31 blocks × 2 classes,
//! 256-dimensional features).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use stash_svm::{k_fold_accuracy, Dataset, Kernel, Svm, SvmParams};
use std::hint::black_box;

/// Synthetic histogram-like features: two near-identical classes with a
/// sub-noise mean shift — the hard case the adversary actually faces.
fn paper_scale_dataset(shift: f64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(31);
    let mut data = Dataset::new();
    for _ in 0..62 {
        for (label, mu) in [(-1i8, 0.0), (1i8, shift)] {
            let features: Vec<f64> =
                (0..256).map(|i| (i as f64 / 64.0).sin() + mu + rng.gen_range(-0.3..0.3)).collect();
            data.push(features, label);
        }
    }
    data
}

fn svm_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm");
    group.sample_size(10);

    let hard = paper_scale_dataset(0.02);
    let easy = paper_scale_dataset(0.5);

    group.bench_function("train_rbf_124x256_indistinct", |b| {
        b.iter(|| black_box(Svm::train(&hard, &SvmParams::default())));
    });
    group.bench_function("train_rbf_124x256_separable", |b| {
        b.iter(|| black_box(Svm::train(&easy, &SvmParams::default())));
    });
    group.bench_function("three_fold_cv_linear", |b| {
        let params = SvmParams { kernel: Kernel::Linear, ..Default::default() };
        b.iter(|| black_box(k_fold_accuracy(&easy, 3, &params, 1)));
    });

    group.finish();
}

criterion_group!(benches, svm_train);
criterion_main!(benches);
