//! Table 1 / §8 as Criterion benches: host-side wall-clock of VT-HI and
//! PT-HI encode/decode per page on identical simulated chips. (Simulated
//! *device* time — the paper's metric — is reported by the `table1`
//! binary; these benches track the cost of the schemes' host-side work.)

use criterion::{criterion_group, criterion_main, Criterion};
use pthi::{PthiConfig, PthiHider};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use stash_bench::experiment_key;
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, PageId};
use std::hint::black_box;
use vthi::{EccChoice, Hider, VthiConfig};

fn bench_chip() -> Chip {
    Chip::new(ChipProfile::vendor_a_scaled(), 9)
}

fn scaled_cfg(chip: &Chip) -> VthiConfig {
    VthiConfig::scaled_for(chip.geometry())
}

fn vthi_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_page");
    let key = experiment_key();

    group.bench_function("vthi_default", |b| {
        let mut chip = bench_chip();
        let cfg = scaled_cfg(&chip);
        let cpp = chip.geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(1);
        let payload: Vec<u8> = (0..cfg.payload_bytes_per_page()).map(|_| rng.gen()).collect();
        let mut page = 0u64;
        b.iter(|| {
            let block = BlockId((page / 32) as u32 % 16);
            let p = PageId::new(block, (page % 32) as u32);
            if page % 32 == 0 {
                chip.erase_block(block).unwrap();
            }
            let public = BitPattern::random_half(&mut rng, cpp);
            let mut hider = Hider::new(&mut chip, key.clone(), cfg.clone());
            black_box(hider.hide_on_fresh_page(p, &public, &payload).unwrap());
            page += 1;
        });
    });

    group.bench_function("vthi_enhanced_fine_pp", |b| {
        let mut chip = bench_chip();
        let mut cfg = scaled_cfg(&chip);
        cfg.hidden_bits_per_page *= 10;
        cfg.vth = 15;
        cfg.max_pp_steps = 1;
        cfg.use_fine_pp = true;
        cfg.ecc = EccChoice::Bch { t: 12, segment_bits: cfg.hidden_bits_per_page };
        let cpp = chip.geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(2);
        let payload: Vec<u8> = (0..cfg.payload_bytes_per_page()).map(|_| rng.gen()).collect();
        let mut page = 0u64;
        b.iter(|| {
            let block = BlockId((page / 32) as u32 % 16);
            let p = PageId::new(block, (page % 32) as u32);
            if page % 32 == 0 {
                chip.erase_block(block).unwrap();
            }
            let public = BitPattern::random_half(&mut rng, cpp);
            let mut hider = Hider::new(&mut chip, key.clone(), cfg.clone());
            black_box(hider.hide_on_fresh_page(p, &public, &payload).unwrap());
            page += 1;
        });
    });

    group.bench_function("pthi", |b| {
        let mut chip = bench_chip();
        let cfg = PthiConfig::scaled_for(chip.geometry());
        let bits: Vec<bool> = (0..cfg.bits_per_page).map(|i| i % 2 == 0).collect();
        let mut page = 0u64;
        b.iter(|| {
            let block = BlockId((page / 32) as u32 % 16);
            let p = PageId::new(block, (page % 32) as u32);
            if page % 32 == 0 {
                chip.erase_block(block).unwrap();
            }
            let mut hider = PthiHider::new(&mut chip, key.clone(), cfg.clone());
            hider.encode_page(p, black_box(&bits)).unwrap();
            page += 1;
        });
    });

    group.finish();
}

fn vthi_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_page");
    let key = experiment_key();

    group.bench_function("vthi_single_shifted_read", |b| {
        let mut chip = bench_chip();
        let cfg = scaled_cfg(&chip);
        let cpp = chip.geometry().cells_per_page();
        let mut rng = SmallRng::seed_from_u64(3);
        let public = BitPattern::random_half(&mut rng, cpp);
        let payload: Vec<u8> = (0..cfg.payload_bytes_per_page()).map(|_| rng.gen()).collect();
        let page = PageId::new(BlockId(0), 0);
        chip.erase_block(BlockId(0)).unwrap();
        let mut hider = Hider::new(&mut chip, key.clone(), cfg.clone());
        hider.hide_on_fresh_page(page, &public, &payload).unwrap();
        b.iter(|| {
            let mut hider = Hider::new(&mut chip, key.clone(), cfg.clone());
            black_box(hider.reveal_page(page, Some(&public)).unwrap())
        });
    });

    group.bench_function("pthi_destructive", |b| {
        let mut chip = bench_chip();
        let cfg = PthiConfig::scaled_for(chip.geometry());
        let bits: Vec<bool> = (0..cfg.bits_per_page).map(|i| i % 3 == 0).collect();
        let page = PageId::new(BlockId(0), 0);
        chip.erase_block(BlockId(0)).unwrap();
        {
            let mut hider = PthiHider::new(&mut chip, key.clone(), cfg.clone());
            hider.encode_page(page, &bits).unwrap();
        }
        b.iter(|| {
            let mut hider = PthiHider::new(&mut chip, key.clone(), cfg.clone());
            black_box(hider.decode_page(page).unwrap())
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = vthi_encode, vthi_decode
}
criterion_main!(benches);
