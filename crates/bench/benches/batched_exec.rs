//! Batched-execution kernel costs on a full-size (18048-byte) page: the
//! planned `exec` path and the fused multi-vref sweep against their scalar
//! equivalents, plus bulk Box–Muller noise against per-sample draws. The
//! batched and scalar variants produce byte-identical results (see
//! `tests/backend_parity.rs`); these benches pin how much host time the
//! batching actually saves.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use stash_flash::noise::Gaussian;
use stash_flash::rng::ChipRng;
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, Geometry, NandCmd, NandDevice, PageId};
use std::hint::black_box;

const VREFS: [u8; 8] = [90, 100, 110, 120, 125, 130, 140, 150];

fn chip() -> Chip {
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = Geometry { blocks_per_chip: 8, pages_per_block: 16, page_bytes: 18048 };
    Chip::new(profile, 5)
}

fn programmed_chip(rng: &mut SmallRng) -> (Chip, PageId) {
    let mut chip = chip();
    let cpp = chip.geometry().cells_per_page();
    let data = BitPattern::random_half(rng, cpp);
    chip.erase_block(BlockId(0)).unwrap();
    let page = PageId::new(BlockId(0), 0);
    chip.program_page(page, &data).unwrap();
    (chip, page)
}

fn batched_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_exec_18k_page");
    let mut rng = SmallRng::seed_from_u64(1);

    // Scalar baseline: eight shifted reads, one trait call each, a fresh
    // `BitPattern` allocated per read.
    group.bench_function("sweep_scalar_8_vrefs", |b| {
        let (mut chip, page) = programmed_chip(&mut rng);
        b.iter(|| {
            for v in VREFS {
                black_box(chip.read_page_shifted(page, v).unwrap());
            }
        });
    });

    // The fused sweep: per-page context materialized once, one noise draw
    // per (cell, vref) in the exact scalar order.
    group.bench_function("sweep_fused_8_vrefs", |b| {
        let (mut chip, page) = programmed_chip(&mut rng);
        b.iter(|| black_box(chip.read_page_sweep(page, &VREFS).unwrap()));
    });

    // The same run expressed as a command batch through the planning
    // `exec`: the planner groups the same-page reads itself.
    group.bench_function("exec_read_run_8_vrefs", |b| {
        let (mut chip, page) = programmed_chip(&mut rng);
        let cmds: Vec<NandCmd> = VREFS.iter().map(|&v| NandCmd::ReadPageShifted(page, v)).collect();
        b.iter(|| black_box(chip.exec(&cmds)));
    });

    group.finish();

    // The Box–Muller kernel behind every voltage-noise draw: chunked
    // `Gaussian::fill` against the one-at-a-time sampler it replaced on
    // the hot paths (identical draw stream, see noise.rs tests).
    let mut group = c.benchmark_group("gaussian_noise");
    const N: usize = 18048 * 8 / 8; // one 18 KB page's cells, one word per bit

    group.bench_function("per_sample_18k_cells", |b| {
        let mut gauss = Gaussian::new();
        let mut rng = ChipRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..N {
                acc += gauss.sample(&mut rng);
            }
            black_box(acc)
        });
    });

    group.bench_function("bulk_fill_18k_cells", |b| {
        let mut gauss = Gaussian::new();
        let mut rng = ChipRng::seed_from_u64(7);
        let mut scratch = vec![0.0f64; N];
        b.iter(|| {
            gauss.fill(&mut rng, &mut scratch);
            black_box(scratch[N - 1])
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = batched_exec
}
criterion_main!(benches);
