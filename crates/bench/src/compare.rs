//! The bench-trajectory regression sentinel: diffs the deterministic
//! metrics of freshly produced `BENCH_*.json` artifacts against a
//! committed `results/BASELINE.json`, with per-metric relative tolerance
//! bands. Everything under a bench's `"deterministic"` block is gated;
//! `threads` and the `"wall"` sub-object never are.
//!
//! Baseline format (`stash-baseline/1`):
//!
//! ```json
//! {
//!   "schema": "stash-baseline/1",
//!   "tolerance_rel": 1e-9,
//!   "tolerance": { "chaos.rates.2.survival": 0.01 },
//!   "benches": { "table1": { "deterministic": { ... } } }
//! }
//! ```
//!
//! Metric paths flatten nested deterministic values with `.` separators and
//! array indices (`rates.0.survival`). The default tolerance is effectively
//! exact — the simulation is deterministic, so any drift is a real change —
//! and individual metrics can be widened via the `"tolerance"` map, keyed
//! `<bench>.<metric path>`.

use stash_obs::json::{self, JsonValue};
use std::collections::BTreeMap;

/// Schema tag of `results/BASELINE.json`.
pub const BASELINE_SCHEMA: &str = "stash-baseline/1";

/// Relative tolerance applied when neither the baseline's `tolerance_rel`
/// nor a per-metric override says otherwise: tight enough that any real
/// metric change trips it, loose enough to forgive float formatting.
pub const DEFAULT_TOLERANCE_REL: f64 = 1e-9;

/// One out-of-band (or missing) metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// `<bench>.<metric path>`.
    pub metric: String,
    /// Baseline value, if the metric exists there.
    pub baseline: Option<f64>,
    /// Current value, if the metric exists in the fresh artifact.
    pub current: Option<f64>,
    /// Relative tolerance that was applied.
    pub tolerance_rel: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => {
                let rel = relative_delta(b, c);
                write!(
                    f,
                    "{}: baseline {b} vs current {c} (rel delta {rel:.3e} > tol {:.1e})",
                    self.metric, self.tolerance_rel
                )
            }
            (Some(b), None) => {
                write!(f, "{}: present in baseline ({b}) but missing from current run", self.metric)
            }
            (None, Some(c)) => {
                write!(f, "{}: new metric ({c}) not present in baseline", self.metric)
            }
            (None, None) => write!(f, "{}: missing everywhere", self.metric),
        }
    }
}

/// A parsed baseline: per-bench flattened deterministic metrics plus the
/// tolerance policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// `bench name -> (metric path -> value)`.
    pub benches: BTreeMap<String, BTreeMap<String, f64>>,
    /// Default relative tolerance.
    pub tolerance_rel: f64,
    /// Per-metric overrides, keyed `<bench>.<metric path>`.
    pub tolerance: BTreeMap<String, f64>,
}

/// `|b - c|` relative to the larger magnitude (0 when both are 0).
fn relative_delta(b: f64, c: f64) -> f64 {
    let scale = b.abs().max(c.abs());
    if scale == 0.0 {
        0.0
    } else {
        (b - c).abs() / scale
    }
}

/// Flattens every numeric leaf of a JSON value into `path -> f64` rows;
/// arrays contribute their index as a path segment.
pub fn flatten_numeric(prefix: &str, v: &JsonValue, out: &mut BTreeMap<String, f64>) {
    let join = |seg: &str| {
        if prefix.is_empty() {
            seg.to_string()
        } else {
            format!("{prefix}.{seg}")
        }
    };
    match v {
        JsonValue::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        JsonValue::Bool(b) => {
            out.insert(prefix.to_string(), f64::from(u8::from(*b)));
        }
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_numeric(&join(&i.to_string()), item, out);
            }
        }
        JsonValue::Obj(fields) => {
            for (k, val) in fields {
                flatten_numeric(&join(k), val, out);
            }
        }
        JsonValue::Null | JsonValue::Str(_) => {}
    }
}

/// Extracts `(bench name, flattened deterministic metrics)` from one
/// `BENCH_*.json` artifact.
///
/// # Errors
///
/// Describes the first structural problem (bad JSON, missing fields).
pub fn bench_metrics(raw: &str) -> Result<(String, BTreeMap<String, f64>), String> {
    let parsed = json::parse(raw).map_err(|e| format!("invalid JSON: {e}"))?;
    let JsonValue::Obj(fields) = &parsed else {
        return Err("artifact is not a JSON object".into());
    };
    let name = match fields.get("bench") {
        Some(JsonValue::Str(s)) => s.clone(),
        _ => return Err("artifact is missing its \"bench\" name".into()),
    };
    let det = fields
        .get("deterministic")
        .ok_or_else(|| format!("bench {name:?} has no deterministic block"))?;
    if !matches!(det, JsonValue::Obj(_)) {
        return Err(format!("bench {name:?}: deterministic is not an object"));
    }
    let mut flat = BTreeMap::new();
    flatten_numeric("", det, &mut flat);
    Ok((name, flat))
}

/// Parses `results/BASELINE.json`.
///
/// # Errors
///
/// Describes the first structural problem, including a wrong schema tag.
pub fn parse_baseline(raw: &str) -> Result<Baseline, String> {
    let parsed = json::parse(raw).map_err(|e| format!("invalid JSON: {e}"))?;
    let JsonValue::Obj(fields) = &parsed else {
        return Err("baseline is not a JSON object".into());
    };
    match fields.get("schema") {
        Some(JsonValue::Str(s)) if s == BASELINE_SCHEMA => {}
        Some(JsonValue::Str(s)) => return Err(format!("unknown baseline schema {s:?}")),
        _ => return Err("baseline is missing its schema tag".into()),
    }
    let mut b = Baseline { tolerance_rel: DEFAULT_TOLERANCE_REL, ..Baseline::default() };
    if let Some(v) = fields.get("tolerance_rel") {
        match v {
            JsonValue::Num(n) if *n >= 0.0 => b.tolerance_rel = *n,
            _ => return Err("tolerance_rel is not a non-negative number".into()),
        }
    }
    if let Some(v) = fields.get("tolerance") {
        let JsonValue::Obj(map) = v else {
            return Err("tolerance is not an object".into());
        };
        for (k, val) in map {
            match val {
                JsonValue::Num(n) if *n >= 0.0 => {
                    b.tolerance.insert(k.clone(), *n);
                }
                _ => return Err(format!("tolerance {k:?} is not a non-negative number")),
            }
        }
    }
    let Some(JsonValue::Obj(benches)) = fields.get("benches") else {
        return Err("baseline has no \"benches\" object".into());
    };
    for (name, entry) in benches {
        let JsonValue::Obj(bench_fields) = entry else {
            return Err(format!("baseline bench {name:?} is not an object"));
        };
        let det = bench_fields
            .get("deterministic")
            .ok_or_else(|| format!("baseline bench {name:?} has no deterministic block"))?;
        let mut flat = BTreeMap::new();
        flatten_numeric("", det, &mut flat);
        b.benches.insert(name.clone(), flat);
    }
    Ok(b)
}

/// Serializes a baseline collected from fresh artifacts (used by
/// `bench_compare --write-baseline`). Only benches and their deterministic
/// metrics are emitted; tolerances are left to hand-editing.
#[must_use]
pub fn write_baseline(benches: &BTreeMap<String, String>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": ");
    json::write_escaped(&mut out, BASELINE_SCHEMA);
    out.push_str(",\n  \"benches\": {");
    for (i, (name, det_json)) in benches.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json::write_escaped(&mut out, name);
        out.push_str(": {\"deterministic\": ");
        out.push_str(det_json.trim());
        out.push('}');
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Re-renders one bench artifact's deterministic block as compact JSON
/// (the form [`write_baseline`] embeds).
///
/// # Errors
///
/// Describes the first structural problem.
pub fn deterministic_block(raw: &str) -> Result<String, String> {
    let parsed = json::parse(raw).map_err(|e| format!("invalid JSON: {e}"))?;
    let det = parsed.get("deterministic").ok_or("artifact has no deterministic block")?;
    let mut out = String::new();
    render_compact(&mut out, det);
    Ok(out)
}

fn render_compact(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => json::write_num(out, *n),
        JsonValue::Str(s) => json::write_escaped(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_compact(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_escaped(out, k);
                out.push_str(": ");
                render_compact(out, val);
            }
            out.push('}');
        }
    }
}

/// Compares one bench's fresh metrics against the baseline. Returns every
/// violation: out-of-band values, metrics the baseline promises that the
/// run no longer produces, and metrics the run grew that the baseline has
/// never seen (so additions are committed intentionally via
/// `just baseline`).
pub fn compare_bench(
    baseline: &Baseline,
    bench: &str,
    current: &BTreeMap<String, f64>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let Some(base) = baseline.benches.get(bench) else {
        violations.push(Violation {
            metric: format!("{bench} (whole bench missing from baseline)"),
            baseline: None,
            current: None,
            tolerance_rel: baseline.tolerance_rel,
        });
        return violations;
    };
    for (path, &b) in base {
        let key = format!("{bench}.{path}");
        let tol = baseline.tolerance.get(&key).copied().unwrap_or(baseline.tolerance_rel);
        match current.get(path) {
            Some(&c) => {
                if relative_delta(b, c) > tol {
                    violations.push(Violation {
                        metric: key,
                        baseline: Some(b),
                        current: Some(c),
                        tolerance_rel: tol,
                    });
                }
            }
            None => violations.push(Violation {
                metric: key,
                baseline: Some(b),
                current: None,
                tolerance_rel: tol,
            }),
        }
    }
    for (path, &c) in current {
        if !base.contains_key(path) {
            violations.push(Violation {
                metric: format!("{bench}.{path}"),
                baseline: None,
                current: Some(c),
                tolerance_rel: baseline.tolerance_rel,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARTIFACT: &str = r#"{
      "schema": "stash-bench/1",
      "bench": "demo",
      "threads": 8,
      "wall": {"ms": 12.5, "mean_remount_wall_us": 311.2},
      "deterministic": {
        "device_time_us": 1000.5,
        "ops": 42,
        "rates": [{"rate": 0.01, "survival": 1}, {"rate": 0.05, "survival": 0.999}]
      }
    }"#;

    fn baseline_for(artifact: &str) -> Baseline {
        let mut benches = BTreeMap::new();
        let (name, _) = bench_metrics(artifact).unwrap();
        benches.insert(name, deterministic_block(artifact).unwrap());
        parse_baseline(&write_baseline(&benches)).unwrap()
    }

    #[test]
    fn flattening_walks_arrays_and_objects() {
        let (name, flat) = bench_metrics(ARTIFACT).unwrap();
        assert_eq!(name, "demo");
        assert_eq!(flat.get("device_time_us"), Some(&1000.5));
        assert_eq!(flat.get("rates.1.survival"), Some(&0.999));
        // Wall figures are outside the deterministic block: never flattened.
        assert!(!flat.keys().any(|k| k.contains("wall") || k.contains("ms")));
    }

    #[test]
    fn identical_run_passes() {
        let baseline = baseline_for(ARTIFACT);
        let (name, flat) = bench_metrics(ARTIFACT).unwrap();
        assert!(compare_bench(&baseline, &name, &flat).is_empty());
    }

    #[test]
    fn perturbed_metric_is_flagged() {
        let baseline = baseline_for(ARTIFACT);
        let perturbed = ARTIFACT.replace("\"ops\": 42", "\"ops\": 43");
        let (name, flat) = bench_metrics(&perturbed).unwrap();
        let v = compare_bench(&baseline, &name, &flat);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].metric, "demo.ops");
        assert_eq!(v[0].baseline, Some(42.0));
        assert_eq!(v[0].current, Some(43.0));
    }

    #[test]
    fn nested_perturbation_is_flagged_by_path() {
        let baseline = baseline_for(ARTIFACT);
        let perturbed = ARTIFACT.replace("\"survival\": 0.999", "\"survival\": 0.9");
        let (name, flat) = bench_metrics(&perturbed).unwrap();
        let v = compare_bench(&baseline, &name, &flat);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].metric, "demo.rates.1.survival");
    }

    #[test]
    fn wall_clock_changes_never_gate() {
        let baseline = baseline_for(ARTIFACT);
        let rerun = ARTIFACT
            .replace("\"ms\": 12.5", "\"ms\": 9999.0")
            .replace("311.2", "1.0")
            .replace("\"threads\": 8", "\"threads\": 1");
        let (name, flat) = bench_metrics(&rerun).unwrap();
        assert!(compare_bench(&baseline, &name, &flat).is_empty());
    }

    #[test]
    fn per_metric_tolerance_widen() {
        let mut baseline = baseline_for(ARTIFACT);
        baseline.tolerance.insert("demo.device_time_us".into(), 0.5);
        let perturbed = ARTIFACT.replace("1000.5", "1200");
        let (name, flat) = bench_metrics(&perturbed).unwrap();
        assert!(compare_bench(&baseline, &name, &flat).is_empty(), "20% inside a 50% band");
        baseline.tolerance.insert("demo.device_time_us".into(), 0.01);
        let v = compare_bench(&baseline, &name, &flat);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn missing_and_novel_metrics_are_flagged() {
        let baseline = baseline_for(ARTIFACT);
        let shrunk = ARTIFACT.replace("\"ops\": 42,", "");
        let (name, flat) = bench_metrics(&shrunk).unwrap();
        let v = compare_bench(&baseline, &name, &flat);
        assert_eq!(v.len(), 1);
        assert!(v[0].current.is_none(), "{v:?}");

        let grown = ARTIFACT.replace("\"ops\": 42", "\"ops\": 42, \"extra\": 1");
        let (name, flat) = bench_metrics(&grown).unwrap();
        let v = compare_bench(&baseline, &name, &flat);
        assert_eq!(v.len(), 1);
        assert!(v[0].baseline.is_none(), "{v:?}");
    }

    #[test]
    fn unknown_bench_is_a_violation() {
        let baseline = baseline_for(ARTIFACT);
        let v = compare_bench(&baseline, "nonesuch", &BTreeMap::new());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn baseline_schema_is_required() {
        assert!(parse_baseline("{\"benches\": {}}").is_err());
        assert!(parse_baseline("{\"schema\": \"stash-baseline/9\", \"benches\": {}}").is_err());
    }
}
