//! # stash-bench — experiment harnesses for every table and figure
//!
//! One binary per table/figure of the paper's evaluation regenerates the
//! corresponding series (`cargo run --release -p stash-bench --bin fig6`),
//! and Criterion benches cover the throughput/energy comparisons
//! (`cargo bench -p stash-bench`). This library holds the shared plumbing:
//! block preparation, histogram collection, dataset assembly for the SVM
//! experiments, and tab-separated output helpers.
//!
//! Scale note: experiments that only need distribution *shapes* run on the
//! paper's full 18 KB pages but shorter blocks, or on the scaled SVM
//! geometry — each binary states its geometry in its header line. The
//! simulator preserves densities and noise statistics across geometries
//! (see `stash-flash` calibration tests), so shapes and ratios carry over.

pub mod compare;
pub mod crash;
pub mod detect;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stash_crypto::HidingKey;
use stash_flash::{BitErrorStats, BitPattern, BlockId, Geometry, Histogram, NandDevice, PageId};
use stash_obs::{span, TraceReport, Tracer};
use std::sync::Arc;
use vthi::{Hider, PageEncodeReport, VthiConfig};

/// A geometry with the paper's full 18048-byte pages but short (16-page)
/// blocks: full-size per-page statistics at a fraction of the cost. Used by
/// the BER-oriented figures (6, 7, 8, 11) and Table 1.
///
/// `STASH_PAGE_BYTES` (≥ 512) scales the page down for smoke runs and the
/// determinism test — shapes survive scaling (see `stash-flash`
/// calibration tests), absolute values do not, so scaled artifacts are
/// never committed to `results/`.
pub fn short_block_geometry() -> Geometry {
    let page_bytes = std::env::var("STASH_PAGE_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&b| b >= 512)
        .unwrap_or(18048);
    Geometry { blocks_per_chip: 64, pages_per_block: 16, page_bytes }
}

/// The paper's default hiding configuration on full-size pages, with raw
/// (ECC-free) hidden bits so experiments observe the uncoded BER, as the
/// paper's Figures 6/7/11 do.
pub fn raw_paper_config(hidden_bits: usize, page_interval: u32) -> VthiConfig {
    let mut cfg = VthiConfig::paper_default();
    cfg.hidden_bits_per_page = hidden_bits;
    cfg.page_interval = page_interval;
    cfg.ecc = vthi::EccChoice::None;
    cfg
}

/// Fills every page of a block with fresh pseudorandom public data,
/// returning the patterns (paper §4 methodology).
pub fn fill_block<D: NandDevice>(
    chip: &mut D,
    block: BlockId,
    rng: &mut SmallRng,
) -> Vec<BitPattern> {
    let cpp = chip.geometry().cells_per_page();
    let pages = chip.geometry().pages_per_block;
    chip.erase_block(block).expect("erase");
    (0..pages)
        .map(|p| {
            let data = BitPattern::random_half(rng, cpp);
            chip.program_page(PageId::new(block, p), &data).expect("program");
            data
        })
        .collect()
}

/// Fills a block while hiding payloads on the pages selected by the config's
/// page interval. Returns the public patterns and per-page encode reports.
pub fn fill_block_hiding<D: NandDevice>(
    chip: &mut D,
    block: BlockId,
    key: &HidingKey,
    cfg: &VthiConfig,
    rng: &mut SmallRng,
    track_steps: bool,
) -> (Vec<BitPattern>, Vec<PageEncodeReport>) {
    fill_block_hiding_traced(chip, block, key, cfg, rng, track_steps, None)
}

/// [`fill_block_hiding`] with an optional tracer: phases open spans on it
/// and the hider reports its PP-step/retry metrics (identical behavior when
/// `None`).
#[allow(clippy::too_many_arguments)]
pub fn fill_block_hiding_traced<D: NandDevice>(
    chip: &mut D,
    block: BlockId,
    key: &HidingKey,
    cfg: &VthiConfig,
    rng: &mut SmallRng,
    track_steps: bool,
    tracer: Option<Arc<Tracer>>,
) -> (Vec<BitPattern>, Vec<PageEncodeReport>) {
    let cpp = chip.geometry().cells_per_page();
    let pages = chip.geometry().pages_per_block;
    let stride = cfg.page_stride();
    {
        let _erase = span!(tracer, "erase_block", "block={block}");
        chip.erase_block(block).expect("erase");
    }

    // First pass: program all non-hidden pages (the normal user's data).
    let publics: Vec<BitPattern> = (0..pages).map(|_| BitPattern::random_half(rng, cpp)).collect();
    {
        let _public = span!(tracer, "program_public", "block={block}");
        for p in 0..pages {
            if p % stride != 0 {
                chip.program_page(PageId::new(block, p), &publics[p as usize]).expect("program");
            }
        }
    }
    // Second pass: hide on the strided pages.
    let mut reports = Vec::new();
    let mut hider = Hider::new(chip, key.clone(), cfg.clone()).with_tracer(tracer.clone());
    for p in (0..pages).step_by(stride as usize) {
        let payload: Vec<u8> = (0..cfg.payload_bytes_per_page()).map(|_| rng.gen()).collect();
        let page = PageId::new(block, p);
        {
            let _public = span!(tracer, "program_public", "block={block}");
            hider.chip_mut().program_page(page, &publics[p as usize]).expect("program");
        }
        let rep = hider
            .hide_in_programmed_page(page, &publics[p as usize], &payload, track_steps)
            .expect("hide");
        reports.push(rep);
    }
    (publics, reports)
}

/// Writes a trace's JSONL event stream (`TRACE_<name>.jsonl`) and
/// collapsed-stack flamegraph (`TRACE_<name>.folded`) into `results/`,
/// next to the bench's TSV output. Both are deterministic for a fixed
/// seed, like every other artifact.
pub fn write_trace_artifacts(name: &str, report: &TraceReport) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(
        dir.join(format!("TRACE_{name}.jsonl")),
        stash_obs::export::export_jsonl(report),
    );
    let _ = std::fs::write(
        dir.join(format!("TRACE_{name}.folded")),
        stash_obs::export::export_collapsed(report),
    );
}

/// Probes a whole block and splits the histogram by cell state. One probe
/// buffer is reused across pages — no per-page `Vec<Level>` allocation.
pub fn block_histograms<D: NandDevice>(
    chip: &mut D,
    block: BlockId,
    publics: &[BitPattern],
) -> (Histogram, Histogram) {
    let mut erased = Histogram::new();
    let mut programmed = Histogram::new();
    let mut levels = Vec::new();
    for (p, public) in publics.iter().enumerate() {
        chip.probe_voltages_into(PageId::new(block, p as u32), &mut levels).expect("probe");
        for (bit, &level) in public.iter().zip(levels.iter()) {
            if bit {
                erased.add_level(level);
            } else {
                programmed.add_level(level);
            }
        }
    }
    (erased, programmed)
}

/// Measures the raw hidden BER of previously hidden pages right now.
pub fn measure_hidden_ber<D: NandDevice>(
    chip: &mut D,
    key: &HidingKey,
    cfg: &VthiConfig,
    reports: &[PageEncodeReport],
) -> BitErrorStats {
    let mut hider = Hider::new(chip, key.clone(), cfg.clone());
    reports.iter().map(|rep| hider.measure_raw_ber(rep.page, rep).expect("measure")).sum()
}

/// Measures the public-data BER of a block against the stored patterns.
pub fn measure_public_ber<D: NandDevice>(
    chip: &mut D,
    block: BlockId,
    publics: &[BitPattern],
) -> BitErrorStats {
    let mut total = BitErrorStats::default();
    for (p, public) in publics.iter().enumerate() {
        let read = chip.read_page(PageId::new(block, p as u32)).expect("read");
        total.absorb(BitErrorStats::compare(public, &read));
    }
    total
}

/// Schema tag stamped into every `BENCH_<name>.json` artifact;
/// `bench_check` requires it.
pub const BENCH_SCHEMA: &str = "stash-bench/1";

/// Schema tag stamped into every `results/HISTORY.jsonl` run record.
pub const HISTORY_SCHEMA: &str = "stash-history/1";

/// Wall-clock and simulated-work accounting for one bench run, emitted as
/// `results/BENCH_<name>.json` so the perf trajectory has machine-readable
/// data, and appended to `results/HISTORY.jsonl` so the trajectory
/// *accumulates* across runs instead of being overwritten.
///
/// The JSON has two kinds of fields. `threads` and everything under
/// `"wall"` describe *this run* of the harness and legitimately vary
/// between machines and `STASH_THREADS` settings. Everything under
/// `"deterministic"` describes the *simulated experiment* — device time,
/// op counts, custom totals — and must be byte-identical across thread
/// counts for a fixed seed; the determinism test enforces exactly that
/// split, and `bench_compare` gates CI on only the deterministic block.
pub struct BenchMeter {
    name: String,
    start: std::time::Instant,
    /// Deterministic fields, pre-rendered as JSON (insertion order kept).
    det: Vec<(String, String)>,
    /// Extra wall-clock figures beyond the always-present `ms`.
    wall: Vec<(String, f64)>,
}

impl BenchMeter {
    /// Starts the wall clock for the named bench.
    #[must_use]
    pub fn start(name: &str) -> Self {
        BenchMeter {
            name: name.to_string(),
            start: std::time::Instant::now(),
            det: Vec::new(),
            wall: Vec::new(),
        }
    }

    /// Records one deterministic field (insertion order is emission order).
    pub fn record(&mut self, key: &str, v: f64) {
        let mut rendered = String::new();
        stash_obs::json::write_num(&mut rendered, v);
        self.det.push((key.to_string(), rendered));
    }

    /// Records one deterministic field whose value is pre-rendered JSON
    /// (an array or object, e.g. a per-rate series) — the caller promises
    /// it is valid JSON and byte-identical across thread counts.
    pub fn record_json(&mut self, key: &str, rendered_json: &str) {
        self.det.push((key.to_string(), rendered_json.to_string()));
    }

    /// Records one wall-clock figure (nondeterministic, never gated) under
    /// the `"wall"` sub-object, e.g. a mean remount latency.
    pub fn record_wall(&mut self, key: &str, v: f64) {
        self.wall.push((key.to_string(), v));
    }

    /// Records the standard fields of an aggregated meter snapshot:
    /// simulated device/wait time, energy, and total op/fault counts.
    pub fn record_snapshot(&mut self, snap: &stash_flash::MeterSnapshot) {
        self.record("device_time_us", snap.device_time_us);
        self.record("wait_time_us", snap.wait_time_us);
        self.record("energy_uj", snap.energy_uj);
        self.record("ops", snap.total_ops() as f64);
        self.record("faults", snap.total_faults() as f64);
    }

    fn write_wall_object(&self, out: &mut String, indent: &str) {
        use std::fmt::Write as _;
        let wall_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let _ = write!(out, "{{{indent}\"ms\": ");
        stash_obs::json::write_num(out, (wall_ms * 1e3).round() / 1e3);
        for (k, v) in &self.wall {
            let _ = write!(out, ",{indent}");
            stash_obs::json::write_escaped(out, k);
            out.push_str(": ");
            stash_obs::json::write_num(out, *v);
        }
    }

    fn write_det_fields(&self, out: &mut String, indent: &str) {
        for (i, (k, v)) in self.det.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(indent);
            stash_obs::json::write_escaped(out, k);
            out.push_str(": ");
            out.push_str(v);
        }
    }

    /// Serializes the bench record (without writing it anywhere).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        stash_obs::json::write_escaped(&mut out, BENCH_SCHEMA);
        out.push_str(",\n  \"bench\": ");
        stash_obs::json::write_escaped(&mut out, &self.name);
        let _ = write!(out, ",\n  \"threads\": {}", stash_par::thread_count());
        out.push_str(",\n  \"wall\": ");
        self.write_wall_object(&mut out, "\n    ");
        out.push_str("\n  }");
        out.push_str(",\n  \"deterministic\": {");
        self.write_det_fields(&mut out, "\n    ");
        out.push_str("\n  }\n}\n");
        out
    }

    /// The single-line `HISTORY.jsonl` run record: same data as
    /// [`to_json`](Self::to_json) but schema-tagged `stash-history/1` and
    /// newline-free, ready to append to the trajectory log.
    #[must_use]
    pub fn history_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\"schema\": ");
        stash_obs::json::write_escaped(&mut out, HISTORY_SCHEMA);
        out.push_str(", \"bench\": ");
        stash_obs::json::write_escaped(&mut out, &self.name);
        let _ = write!(out, ", \"threads\": {}", stash_par::thread_count());
        out.push_str(", \"wall\": ");
        self.write_wall_object(&mut out, "");
        out.push_str("}, \"deterministic\": {");
        self.write_det_fields(&mut out, "");
        out.push_str("}}");
        // Pre-rendered nested values may be pretty-printed; raw newlines
        // cannot occur inside JSON strings, so flattening them is safe.
        if out.contains('\n') {
            out = out.replace('\n', " ");
        }
        out
    }

    /// Stops the clock, writes `results/BENCH_<name>.json`, and appends
    /// this run's record to `results/HISTORY.jsonl`, rotating the log
    /// first when it has grown past the cap (see [`rotate_history`]).
    pub fn finish(self) {
        use std::io::Write as _;
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let _ = std::fs::write(dir.join(format!("BENCH_{}.json", self.name)), self.to_json());
        let history = dir.join("HISTORY.jsonl");
        rotate_history(&history, history_max());
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&history) {
            let _ = writeln!(f, "{}", self.history_line());
        }
    }
}

/// The `HISTORY.jsonl` rotation cap: `STASH_HISTORY_MAX` lines (default
/// 4096 — generous; a full `just bench` run appends well under a dozen).
#[must_use]
pub fn history_max() -> usize {
    std::env::var("STASH_HISTORY_MAX").ok().and_then(|v| v.parse().ok()).unwrap_or(4096).max(1)
}

/// Rotates `HISTORY.jsonl` to `HISTORY.1.jsonl` (replacing any previous
/// rotation) once it holds at least `max` records, so the trajectory log
/// is bounded at roughly `2 * max` lines across the live + rotated pair
/// while every record survives one full rotation cycle. Best-effort:
/// rotation failures never block recording the current run.
pub fn rotate_history(history: &std::path::Path, max: usize) {
    let Ok(raw) = std::fs::read_to_string(history) else { return };
    if raw.lines().count() < max {
        return;
    }
    let rotated = history.with_file_name("HISTORY.1.jsonl");
    let _ = std::fs::rename(history, rotated);
}

/// A deterministic experiment RNG.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// The experiments' shared hiding key (any key works; fixed for
/// reproducibility).
pub fn experiment_key() -> HidingKey {
    HidingKey::from_passphrase("stash-bench reproduction key")
}

/// Prints a header comment line (`# ...`).
pub fn header(title: &str, detail: &str) {
    println!("# {title}");
    if !detail.is_empty() {
        println!("# {detail}");
    }
}

/// Prints one TSV row.
pub fn row<I: IntoIterator<Item = String>>(cells: I) {
    println!("{}", cells.into_iter().collect::<Vec<_>>().join("\t"));
}

/// Formats a float with fixed precision for TSV output.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_flash::Chip;

    #[test]
    fn short_block_geometry_has_paper_pages() {
        let g = short_block_geometry();
        assert_eq!(g.page_bytes, 18048);
        assert_eq!(g.cells_per_page(), 144_384);
        assert!(g.pages_per_block < 64);
    }

    #[test]
    fn bench_meter_json_and_history_parse_and_split_wall_from_deterministic() {
        use stash_obs::json::{self, JsonValue};
        let mut m = BenchMeter::start("demo");
        m.record("ops", 42.0);
        m.record_wall("mean_remount_wall_us", 311.25);
        m.record_json("rates", "[{\"rate\": 0.01, \"survival\": 1}]");

        for (what, raw) in [("artifact", m.to_json()), ("history", m.history_line())] {
            let parsed = json::parse(&raw).unwrap_or_else(|e| panic!("{what} invalid: {e}\n{raw}"));
            let schema = if what == "history" { HISTORY_SCHEMA } else { BENCH_SCHEMA };
            assert_eq!(parsed.get("schema").and_then(JsonValue::as_str), Some(schema), "{what}");
            assert_eq!(parsed.get("bench").and_then(JsonValue::as_str), Some("demo"));
            let wall = parsed.get("wall").expect("wall object");
            assert!(wall.get("ms").and_then(JsonValue::as_f64).is_some_and(|ms| ms >= 0.0));
            assert_eq!(wall.get("mean_remount_wall_us").and_then(JsonValue::as_f64), Some(311.25));
            let det = parsed.get("deterministic").expect("deterministic object");
            assert_eq!(det.get("ops").and_then(JsonValue::as_f64), Some(42.0));
            assert!(det.get("mean_remount_wall_us").is_none(), "wall leaked into deterministic");
            let Some(JsonValue::Arr(rates)) = det.get("rates") else {
                panic!("{what}: nested rates array survives");
            };
            assert_eq!(rates[0].get("survival").and_then(JsonValue::as_f64), Some(1.0));
        }
        // History lines must be JSONL-safe.
        assert!(!m.history_line().contains('\n'));
    }

    #[test]
    fn fill_and_histogram_pipeline() {
        let mut chip = Chip::new(stash_flash::ChipProfile::test_small(), 3);
        let mut r = rng(1);
        let publics = fill_block(&mut chip, BlockId(0), &mut r);
        let (erased, programmed) = block_histograms(&mut chip, BlockId(0), &publics);
        assert!(erased.total() > 0 && programmed.total() > 0);
        assert!(programmed.mean() > erased.mean());
        let ber = measure_public_ber(&mut chip, BlockId(0), &publics);
        assert!(ber.ber() < 1e-3);
    }

    #[test]
    fn hiding_pipeline_reports() {
        let mut chip = Chip::new(stash_flash::ChipProfile::vendor_a_scaled(), 4);
        let key = experiment_key();
        let mut cfg = VthiConfig::scaled_for(chip.geometry());
        cfg.ecc = vthi::EccChoice::None;
        let mut r = rng(2);
        let (_publics, reports) =
            fill_block_hiding(&mut chip, BlockId(0), &key, &cfg, &mut r, false);
        assert_eq!(reports.len(), 16); // 32 pages at stride 2
        let ber = measure_hidden_ber(&mut chip, &key, &cfg, &reports);
        assert!(ber.bits > 0);
        assert!(ber.ber() < 0.05, "hidden BER {}", ber.ber());
    }

    #[test]
    fn history_rotation_bounds_the_live_log() {
        let dir = std::env::temp_dir().join("stash_bench_history_rotation_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let history = dir.join("HISTORY.jsonl");
        let rotated = dir.join("HISTORY.1.jsonl");

        // Under the cap: nothing moves.
        std::fs::write(&history, "{\"schema\": \"stash-history/1\"}\n".repeat(2)).unwrap();
        rotate_history(&history, 3);
        assert!(history.exists() && !rotated.exists(), "under cap must not rotate");

        // At the cap: the live log rotates out whole.
        std::fs::write(&history, "{\"schema\": \"stash-history/1\"}\n".repeat(3)).unwrap();
        rotate_history(&history, 3);
        assert!(!history.exists(), "live log should have rotated away");
        let kept = std::fs::read_to_string(&rotated).unwrap();
        assert_eq!(kept.lines().count(), 3, "rotation keeps every record");

        // The next rotation replaces the old generation rather than growing.
        std::fs::write(&history, "{\"schema\": \"stash-history/1\"}\n".repeat(4)).unwrap();
        rotate_history(&history, 3);
        assert_eq!(std::fs::read_to_string(&rotated).unwrap().lines().count(), 4);

        // Missing file is a no-op, not an error.
        rotate_history(&dir.join("HISTORY_ABSENT.jsonl"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
