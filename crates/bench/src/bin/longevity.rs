//! Longevity: can the hiding scheme anchor a *long-lived* steganographic
//! SSD? (Paper §2 disqualifies PT-HI for exactly this: its channel decays
//! after a few hundred public P/E cycles and its decode destroys public
//! data. §9.2's hidden volume presumes the device survives normal use.)
//!
//! The harness runs a Zipfian host workload over the §9.2 hidden volume for
//! several full-device rewrite generations and reports, per generation:
//! hidden-slot survival, write amplification, wear spread, and the
//! PT-HI channel's BER on the same device for contrast.
//!
//! The volume simulation is inherently serial (one device evolving across
//! generations), so it stays on one thread; the PT-HI contrast decodes are
//! independent per checkpoint — each reconstructs a twin chip from seed,
//! wears it to that checkpoint's max PEC and decodes — and run on the
//! `stash-par` pool. Rows print in generation order: byte-identical output
//! for any `STASH_THREADS`.

use pthi::{PthiConfig, PthiHider};
use stash_bench::{experiment_key, f, header, row, BenchMeter};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, Geometry, PageId};
use stash_ftl::{AccessPattern, Ftl, FtlConfig, WorkloadGen};
use stash_stego::{HiddenVolume, StegoConfig};

const GENERATIONS: u32 = 512;

fn small_profile() -> ChipProfile {
    let mut p = ChipProfile::vendor_a();
    p.geometry = Geometry { blocks_per_chip: 24, pages_per_block: 8, page_bytes: 512 };
    p
}

/// PT-HI contrast at one wear checkpoint: a fresh twin chip is encoded at
/// zero wear, cycled to `wear_max`, and decoded. Fully determined by
/// `wear_max`, so checkpoints parallelize.
fn pthi_ber_at_wear(profile: &ChipProfile, key: &stash_crypto::HidingKey, wear_max: u32) -> f64 {
    let mut chip = Chip::new(profile.clone(), 0x10AE);
    let pcfg = PthiConfig::paper_default(chip.geometry());
    let truth: Vec<bool> = (0..pcfg.bits_per_page).map(|i| i % 2 == 0).collect();
    let page = PageId::new(BlockId(0), 0);
    chip.erase_block(BlockId(0)).unwrap();
    {
        let mut ph = PthiHider::new(&mut chip, key.clone(), pcfg.clone());
        ph.encode_page(page, &truth).unwrap();
    }
    if wear_max > 0 {
        chip.cycle_block(BlockId(0), wear_max).unwrap();
    }
    let mut ph = PthiHider::new(&mut chip, key.clone(), pcfg);
    let got = ph.decode_page(page).unwrap();
    got.iter().zip(&truth).filter(|(a, b)| a != b).count() as f64 / truth.len() as f64
}

fn main() {
    let mut bench = BenchMeter::start("longevity");
    let key = experiment_key();
    let profile = small_profile();

    // --- the VT-HI hidden volume under load ---------------------------------
    let chip = Chip::new(profile.clone(), 0x10AD);
    let ftl = Ftl::new(chip, FtlConfig { reserve_blocks: 6, gc_low_water: 2 }).unwrap();
    let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
    let mut vol = HiddenVolume::format(ftl, key.clone(), cfg, 6).unwrap();
    let cap = vol.ftl().capacity_pages();
    let cpp = vol.ftl().chip().geometry().cells_per_page();

    // Fill the public volume and store the hidden secrets once.
    let mut wl = WorkloadGen::new(AccessPattern::Sequential, cap, 1);
    let mut rng = stash_bench::rng(2);
    for _ in 0..cap {
        let lpn = wl.next_lpn();
        let data = BitPattern::random_half(&mut rng, cpp);
        vol.write_public(lpn, &data).unwrap();
    }
    let secrets: Vec<Vec<u8>> = (0..6u8).map(|i| vec![0xB0 + i; vol.slot_bytes()]).collect();
    for (i, s) in secrets.iter().enumerate() {
        vol.write_hidden(i, s).unwrap();
    }

    header(
        "Longevity: a hidden volume under sustained Zipfian load",
        &format!(
            "{cap}-page public volume, 6 hidden slots, {GENERATIONS} full-device rewrite \
             generations (log-spaced rows); PT-HI channel on a twin chip for contrast"
        ),
    );
    row([
        "generation",
        "device_writes",
        "vthi_slots_intact",
        "write_amp",
        "wear_min",
        "wear_max",
        "pthi_ber_at_same_wear",
    ]
    .map(String::from));

    // Serial phase: evolve the device, buffering one checkpoint row per
    // log-spaced generation.
    struct Checkpoint {
        generation: u32,
        host_writes: u64,
        intact: usize,
        write_amp: f64,
        wear_min: u32,
        wear_max: u32,
    }
    let mut checkpoints = Vec::new();
    let mut zipf = WorkloadGen::new(AccessPattern::Zipfian { theta: 0.99 }, cap, 3);
    for generation in 1..=GENERATIONS {
        // One generation = one full device capacity of host writes.
        for _ in 0..cap {
            let lpn = zipf.next_lpn();
            let data = BitPattern::random_half(&mut rng, cpp);
            vol.write_public(lpn, &data).unwrap();
        }
        if !generation.is_power_of_two() && generation != GENERATIONS {
            continue;
        }

        // Hidden-data health (served from flash via a remount-style decode
        // would be slow every generation; the cache is kept consistent by
        // the re-embedding path, so verify through it plus spot remounts
        // at the halfway and final generations below).
        let intact = (0..6)
            .filter(|&i| vol.read_hidden(i).unwrap().as_deref() == Some(&secrets[i][..]))
            .count();

        let stats = vol.ftl().stats();
        let blocks = vol.ftl().chip().geometry().blocks_per_chip;
        let pecs: Vec<u32> =
            (0..blocks).map(|b| vol.ftl().chip().block_pec(BlockId(b)).unwrap()).collect();
        checkpoints.push(Checkpoint {
            generation,
            host_writes: stats.host_writes,
            intact,
            write_amp: stats.write_amplification(),
            wear_min: *pecs.iter().min().unwrap(),
            wear_max: *pecs.iter().max().unwrap(),
        });
    }

    // Parallel phase: the PT-HI contrast decode per checkpoint.
    let pthi_bers =
        stash_par::par_map(checkpoints.iter().map(|c| c.wear_max).collect(), |_, wear_max| {
            pthi_ber_at_wear(&profile, &key, wear_max)
        });
    for (c, &pthi_ber) in checkpoints.iter().zip(&pthi_bers) {
        row([
            c.generation.to_string(),
            c.host_writes.to_string(),
            format!("{}/6", c.intact),
            f(c.write_amp, 2),
            c.wear_min.to_string(),
            c.wear_max.to_string(),
            f(pthi_ber, 3),
        ]);
    }

    // Final proof from flash, not cache: power-cycle and remount.
    let geometry = *vol.ftl().chip().geometry();
    let ftl = vol.unmount();
    let (mut vol2, report) =
        HiddenVolume::remount(ftl, experiment_key(), StegoConfig::for_geometry(&geometry), 6)
            .unwrap();
    let intact_after_remount = (0..6)
        .filter(|&i| vol2.read_hidden(i).unwrap().as_deref() == Some(&secrets[i][..]))
        .count();
    println!();
    println!(
        "# after remount from key alone: {intact_after_remount}/6 slots intact \
         (recovered {}, rebuilt {}, lost {})",
        report.recovered, report.reconstructed, report.lost
    );
    println!("# paper §2: VT-HI tolerates wear (hidden BER ~flat to 3000 PEC) while");
    println!("# PT-HI's channel collapses after a few hundred public P/E cycles —");
    println!("# the columns above show both effects on the same workload");

    bench.record("generations", f64::from(GENERATIONS));
    bench.record("checkpoints", checkpoints.len() as f64);
    bench.record("slots_intact_after_remount", intact_after_remount as f64);
    bench.record_snapshot(&vol2.ftl().chip().meter());
    bench.finish();
}
