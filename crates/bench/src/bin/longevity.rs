//! Longevity: can the hiding scheme anchor a *long-lived* steganographic
//! SSD? (Paper §2 disqualifies PT-HI for exactly this: its channel decays
//! after a few hundred public P/E cycles and its decode destroys public
//! data. §9.2's hidden volume presumes the device survives normal use.)
//!
//! The harness runs a Zipfian host workload over the §9.2 hidden volume for
//! several full-device rewrite generations and reports, per generation:
//! hidden-slot survival, write amplification, wear spread, and the
//! PT-HI channel's BER on the same device for contrast.

use pthi::{PthiConfig, PthiHider};
use stash_bench::{experiment_key, f, header, row};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, Geometry, PageId};
use stash_ftl::{AccessPattern, Ftl, FtlConfig, WorkloadGen};
use stash_stego::{HiddenVolume, StegoConfig};

const GENERATIONS: u32 = 512;

fn small_profile() -> ChipProfile {
    let mut p = ChipProfile::vendor_a();
    p.geometry = Geometry { blocks_per_chip: 24, pages_per_block: 8, page_bytes: 512 };
    p
}

fn main() {
    let key = experiment_key();
    let profile = small_profile();

    // --- the VT-HI hidden volume under load ---------------------------------
    let chip = Chip::new(profile.clone(), 0x10AD);
    let ftl = Ftl::new(chip, FtlConfig { reserve_blocks: 6, gc_low_water: 2 }).unwrap();
    let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
    let mut vol = HiddenVolume::format(ftl, key.clone(), cfg, 6).unwrap();
    let cap = vol.ftl().capacity_pages();
    let cpp = vol.ftl().chip().geometry().cells_per_page();

    // Fill the public volume and store the hidden secrets once.
    let mut wl = WorkloadGen::new(AccessPattern::Sequential, cap, 1);
    let mut rng = stash_bench::rng(2);
    for _ in 0..cap {
        let lpn = wl.next_lpn();
        let data = BitPattern::random_half(&mut rng, cpp);
        vol.write_public(lpn, &data).unwrap();
    }
    let secrets: Vec<Vec<u8>> = (0..6u8).map(|i| vec![0xB0 + i; vol.slot_bytes()]).collect();
    for (i, s) in secrets.iter().enumerate() {
        vol.write_hidden(i, s).unwrap();
    }

    // --- a PT-HI channel encoded on a same-model chip for contrast ----------
    let mut pthi_chip = Chip::new(profile, 0x10AE);
    let pcfg = PthiConfig::paper_default(pthi_chip.geometry());
    let pthi_truth: Vec<bool> = (0..pcfg.bits_per_page).map(|i| i % 2 == 0).collect();
    let pthi_page = PageId::new(BlockId(0), 0);
    pthi_chip.erase_block(BlockId(0)).unwrap();
    {
        let mut ph = PthiHider::new(&mut pthi_chip, key, pcfg.clone());
        ph.encode_page(pthi_page, &pthi_truth).unwrap();
    }

    header(
        "Longevity: a hidden volume under sustained Zipfian load",
        &format!(
            "{cap}-page public volume, 6 hidden slots, {GENERATIONS} full-device rewrite \
             generations (log-spaced rows); PT-HI channel on a twin chip for contrast"
        ),
    );
    row([
        "generation",
        "device_writes",
        "vthi_slots_intact",
        "write_amp",
        "wear_min",
        "wear_max",
        "pthi_ber_at_same_wear",
    ]
    .map(String::from));

    let mut zipf = WorkloadGen::new(AccessPattern::Zipfian { theta: 0.99 }, cap, 3);
    for generation in 1..=GENERATIONS {
        // One generation = one full device capacity of host writes.
        for _ in 0..cap {
            let lpn = zipf.next_lpn();
            let data = BitPattern::random_half(&mut rng, cpp);
            vol.write_public(lpn, &data).unwrap();
        }
        if !generation.is_power_of_two() && generation != GENERATIONS {
            continue;
        }

        // Hidden-data health (served from flash via a remount-style decode
        // would be slow every generation; the cache is kept consistent by
        // the re-embedding path, so verify through it plus spot remounts
        // at the halfway and final generations below).
        let intact = (0..6)
            .filter(|&i| vol.read_hidden(i).unwrap().as_deref() == Some(&secrets[i][..]))
            .count();

        let stats = vol.ftl().stats();
        let blocks = vol.ftl().chip().geometry().blocks_per_chip;
        let pecs: Vec<u32> =
            (0..blocks).map(|b| vol.ftl().chip().block_pec(BlockId(b)).unwrap()).collect();
        let wear_min = *pecs.iter().min().unwrap();
        let wear_max = *pecs.iter().max().unwrap();

        // PT-HI contrast: wear the twin chip to the same max PEC and decode.
        let pthi_ber = {
            let current = pthi_chip.block_pec(BlockId(0)).unwrap();
            if wear_max > current {
                pthi_chip.cycle_block(BlockId(0), wear_max - current).unwrap();
            }
            let mut chip_copy = pthi_chip.clone();
            let mut ph = PthiHider::new(&mut chip_copy, experiment_key(), pcfg.clone());
            let got = ph.decode_page(pthi_page).unwrap();
            got.iter().zip(&pthi_truth).filter(|(a, b)| a != b).count() as f64
                / pthi_truth.len() as f64
        };

        row([
            generation.to_string(),
            stats.host_writes.to_string(),
            format!("{intact}/6"),
            f(stats.write_amplification(), 2),
            wear_min.to_string(),
            wear_max.to_string(),
            f(pthi_ber, 3),
        ]);
    }

    // Final proof from flash, not cache: power-cycle and remount.
    let geometry = *vol.ftl().chip().geometry();
    let ftl = vol.unmount();
    let (mut vol2, report) =
        HiddenVolume::remount(ftl, experiment_key(), StegoConfig::for_geometry(&geometry), 6)
            .unwrap();
    let intact_after_remount = (0..6)
        .filter(|&i| vol2.read_hidden(i).unwrap().as_deref() == Some(&secrets[i][..]))
        .count();
    println!();
    println!(
        "# after remount from key alone: {intact_after_remount}/6 slots intact \
         (recovered {}, rebuilt {}, lost {})",
        report.recovered, report.reconstructed, report.lost
    );
    println!("# paper §2: VT-HI tolerates wear (hidden BER ~flat to 3000 PEC) while");
    println!("# PT-HI's channel collapses after a few hundred public P/E cycles —");
    println!("# the columns above show both effects on the same workload");
}
