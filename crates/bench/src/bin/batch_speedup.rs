//! Batched-vs-scalar speedup sentinel: runs the decode-heavy sweep-read
//! workload once through the scalar trait surface and once as command
//! batches through the planning `exec`, proves the outputs byte-identical,
//! and records both walls plus the speedup ratio into
//! `results/BENCH_batch_speedup.json` / `results/HISTORY.jsonl`.
//!
//! The workload mirrors what `Hider::reveal_block` and the recovery sweep
//! issue: for every hidden-bearing page, a plain read plus a run of
//! shifted reads at neighbouring references. `STASH_PAGE_BYTES` scales the
//! geometry for smoke runs exactly as in the other bench binaries.

use stash_bench::{fill_block, rng, short_block_geometry, BenchMeter};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, NandCmd, NandDevice, PageId};

const BLOCKS: u32 = 4;
const VREFS: [u8; 6] = [105, 110, 115, 120, 125, 130];

fn chip() -> Chip {
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    Chip::new(profile, 77)
}

/// FNV-1a over a bit pattern.
fn digest(mut h: u64, bits: &BitPattern) -> u64 {
    for &byte in bits.as_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Programs the workload's blocks; identical for both runs.
fn prepare(chip: &mut Chip) {
    let mut r = rng(9);
    for b in 0..BLOCKS {
        fill_block(chip, BlockId(b), &mut r);
    }
}

/// The scalar reference: one trait call per read.
fn run_scalar(chip: &mut Chip) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let pages = chip.geometry().pages_per_block;
    for b in 0..BLOCKS {
        for p in 0..pages {
            let page = PageId::new(BlockId(b), p);
            h = digest(h, &chip.read_page(page).expect("read"));
            for &v in &VREFS {
                h = digest(h, &chip.read_page_shifted(page, v).expect("shifted read"));
            }
        }
    }
    h
}

/// The same reads expressed as one command batch per block through the
/// planning `exec`.
fn run_batched(chip: &mut Chip) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let pages = chip.geometry().pages_per_block;
    for b in 0..BLOCKS {
        let mut cmds = Vec::with_capacity(pages as usize * (1 + VREFS.len()));
        for p in 0..pages {
            let page = PageId::new(BlockId(b), p);
            cmds.push(NandCmd::ReadPage(page));
            for &v in &VREFS {
                cmds.push(NandCmd::ReadPageShifted(page, v));
            }
        }
        for result in chip.exec(&cmds) {
            match result {
                stash_flash::CmdResult::Bits(bits) => h = digest(h, &bits.expect("read")),
                other => unreachable!("read workload produced {other:?}"),
            }
        }
    }
    h
}

fn main() {
    let mut meter = BenchMeter::start("batch_speedup");

    // Scalar pass on its own chip sample.
    let mut scalar_chip = chip();
    prepare(&mut scalar_chip);
    let t = std::time::Instant::now();
    let scalar_digest = run_scalar(&mut scalar_chip);
    let scalar_ms = t.elapsed().as_secs_f64() * 1e3;

    // Batched pass on an identically-seeded sample: must match bit for bit.
    let mut batch_chip = chip();
    prepare(&mut batch_chip);
    let t = std::time::Instant::now();
    let batch_digest = run_batched(&mut batch_chip);
    let batch_ms = t.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        scalar_digest, batch_digest,
        "batched exec diverged from scalar dispatch — the speedup would be meaningless"
    );
    assert_eq!(scalar_chip.meter(), batch_chip.meter(), "batched exec billed differently");

    let reads = u64::from(BLOCKS)
        * u64::from(scalar_chip.geometry().pages_per_block)
        * (1 + VREFS.len() as u64);
    meter.record("reads", reads as f64);
    meter.record("digest_lo32", (scalar_digest & 0xffff_ffff) as f64);
    meter.record_snapshot(&scalar_chip.meter());
    meter.record_wall("scalar_ms", (scalar_ms * 1e3).round() / 1e3);
    meter.record_wall("batched_ms", (batch_ms * 1e3).round() / 1e3);
    meter.record_wall("speedup", (scalar_ms / batch_ms * 1e3).round() / 1e3);
    println!(
        "batch_speedup: {reads} reads, scalar {scalar_ms:.1} ms, batched {batch_ms:.1} ms, {:.2}x",
        scalar_ms / batch_ms
    );
    meter.finish();
}
