//! Figure 11: normalized retention BER — hidden (VT-HI) vs normal data
//! after 1 day / 1 month / 4 months, for blocks at PEC 0 / 1000 / 2000.
//! Each bar is the BER after the retention period divided by the BER at
//! "zero" time (paper §8 "Reliability").
//!
//! Expected shape: flat (≈1×) at PEC 0 for both; at PEC 2000 / 4 months
//! hidden data degrades ≈6.3× while normal data degrades ≈2.3×.
//!
//! Each wear level runs on its own chip (aging clocks stay independent)
//! with an RNG derived from its PEC — one `stash-par` work item per level,
//! byte-identical TSV for any `STASH_THREADS`.

use stash_bench::{
    experiment_key, f, fill_block_hiding, header, measure_hidden_ber, measure_public_ber,
    raw_paper_config, rng, row, short_block_geometry, BenchMeter,
};
use stash_flash::{BitErrorStats, BlockId, Chip, ChipProfile, MeterSnapshot};

const BLOCKS: u32 = 4;
const PECS: [u32; 3] = [0, 1000, 2000];
/// Retention checkpoints in days (1 day, 1 month, 4 months).
const CHECKPOINTS: [f64; 3] = [1.0, 30.0, 120.0];

struct Line {
    pec: u32,
    hidden_t0: f64,
    public_t0: f64,
    hidden: Vec<f64>,
    public: Vec<f64>,
    device: MeterSnapshot,
}

fn main() {
    let mut bench = BenchMeter::start("fig11");
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    let cfg = raw_paper_config(256, 1);

    let lines = stash_par::par_map(PECS.to_vec(), |i, pec| {
        // One chip per wear level so aging clocks stay independent.
        let mut chip = Chip::new(profile.clone(), 5000 + i as u64);
        let mut r = rng(11000 + u64::from(pec));
        let mut stored = Vec::new();
        for b in 0..BLOCKS {
            let block = BlockId(b);
            chip.cycle_block(block, pec).expect("cycle");
            let (publics, reports) = fill_block_hiding(&mut chip, block, &key, &cfg, &mut r, false);
            stored.push((block, publics, reports));
        }

        let measure =
            |chip: &mut Chip,
             stored: &[(BlockId, Vec<stash_flash::BitPattern>, Vec<vthi::PageEncodeReport>)]|
             -> (f64, f64) {
                let mut hid = BitErrorStats::default();
                let mut pubs = BitErrorStats::default();
                for (block, publics, reports) in stored {
                    hid.absorb(measure_hidden_ber(chip, &key, &cfg, reports));
                    pubs.absorb(measure_public_ber(chip, *block, publics));
                }
                (hid.ber(), pubs.ber())
            };

        let (h0, p0) = measure(&mut chip, &stored);
        let mut line = Line {
            pec,
            hidden_t0: h0,
            public_t0: p0,
            hidden: vec![],
            public: vec![],
            device: MeterSnapshot::default(),
        };
        let mut aged = 0.0;
        for &t in &CHECKPOINTS {
            chip.age_days(t - aged);
            aged = t;
            let (h, p) = measure(&mut chip, &stored);
            line.hidden.push(h);
            line.public.push(p);
        }
        line.device = chip.meter();
        line
    });

    header(
        "Figure 11: normalized retention BER (vs zero time)",
        &format!("{BLOCKS} blocks per wear level; 256 hidden bits/page; 18048-byte pages"),
    );
    row(["period", "kind", "PEC0", "PEC1000", "PEC2000"].map(String::from));
    let labels = ["1day", "1month", "4month"];
    for (ci, label) in labels.iter().enumerate() {
        for kind in ["vthi", "normal"] {
            let mut cells = vec![(*label).to_owned(), kind.to_owned()];
            for line in &lines {
                let (t0, t) = if kind == "vthi" {
                    (line.hidden_t0, line.hidden[ci])
                } else {
                    (line.public_t0, line.public[ci])
                };
                cells.push(if t0 > 0.0 { f(t / t0, 2) } else { "n/a".into() });
            }
            row(cells);
        }
    }

    println!();
    for line in &lines {
        println!(
            "# PEC {:>4}: hidden BER {:.4} -> {:.4} after 4 months; normal {:.2e} -> {:.2e}",
            line.pec, line.hidden_t0, line.hidden[2], line.public_t0, line.public[2]
        );
    }
    println!("# paper anchors: hidden x6.3 and normal x2.3 at PEC 2000 / 4 months;");
    println!("# both ~flat at PEC 0");

    let mut device = MeterSnapshot::default();
    for line in &lines {
        device.absorb(&line.device);
    }
    bench.record("wear_levels", lines.len() as f64);
    bench.record_snapshot(&device);
    bench.finish();
}
