//! Figure 7: hidden BER after ten PP steps as a function of the page
//! interval, for 32 / 128 / 512 hidden cells per page (paper §6.3).
//!
//! Expected shape: BER in the 0.4%–1% band, largely insensitive to both
//! knobs, with small irregularity from BER variance and program
//! interference.
//!
//! Each (interval, bits) point runs on the `stash-par` pool with its own
//! chip and RNG derived from the pair — byte-identical TSV for any
//! `STASH_THREADS`.

use stash_bench::{
    experiment_key, f, fill_block_hiding, header, measure_hidden_ber, raw_paper_config, rng, row,
    short_block_geometry, BenchMeter,
};
use stash_flash::{BitErrorStats, BlockId, Chip, ChipProfile, MeterSnapshot};

const BLOCKS: u32 = 5;
const INTERVALS: [u32; 4] = [0, 1, 2, 4];
const BITS: [usize; 3] = [32, 128, 512];

fn main() {
    let mut bench = BenchMeter::start("fig7");
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();

    header(
        "Figure 7: hidden BER at 10 PP steps vs page interval",
        &format!("{BLOCKS} blocks per point; 18048-byte pages"),
    );
    row(["page_interval", "bits32", "bits128", "bits512"].map(String::from));

    let points: Vec<(u32, usize)> =
        INTERVALS.iter().flat_map(|&i| BITS.iter().map(move |&b| (i, b))).collect();
    let results = stash_par::par_map(points, |_, (interval, bits)| {
        let cfg = raw_paper_config(bits, interval);
        let mut chip = Chip::new(profile.clone(), 2000 + u64::from(interval) * 10 + bits as u64);
        let mut r = rng(7000 + u64::from(interval) * 10 + bits as u64);
        let mut total = BitErrorStats::default();
        for b in 0..BLOCKS {
            let (_publics, reports) =
                fill_block_hiding(&mut chip, BlockId(b), &key, &cfg, &mut r, false);
            total.absorb(measure_hidden_ber(&mut chip, &key, &cfg, &reports));
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
        (total, chip.meter())
    });

    for (ii, &interval) in INTERVALS.iter().enumerate() {
        let mut cells = vec![interval.to_string()];
        cells.extend(
            results[ii * BITS.len()..(ii + 1) * BITS.len()].iter().map(|(t, _)| f(t.ber(), 5)),
        );
        row(cells);
    }
    println!();
    println!("# paper band: 0.004-0.010 with irregular variation across intervals");

    let mut device = MeterSnapshot::default();
    for (_, meter) in &results {
        device.absorb(meter);
    }
    bench.record("points", results.len() as f64);
    bench.record_snapshot(&device);
    bench.finish();
}
