//! Figure 7: hidden BER after ten PP steps as a function of the page
//! interval, for 32 / 128 / 512 hidden cells per page (paper §6.3).
//!
//! Expected shape: BER in the 0.4%–1% band, largely insensitive to both
//! knobs, with small irregularity from BER variance and program
//! interference.

use stash_bench::{
    experiment_key, f, fill_block_hiding, header, measure_hidden_ber, raw_paper_config, rng, row,
    short_block_geometry,
};
use stash_flash::{BitErrorStats, BlockId, Chip, ChipProfile};

const BLOCKS: u32 = 5;
const INTERVALS: [u32; 4] = [0, 1, 2, 4];
const BITS: [usize; 3] = [32, 128, 512];

fn main() {
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();

    header(
        "Figure 7: hidden BER at 10 PP steps vs page interval",
        &format!("{BLOCKS} blocks per point; 18048-byte pages"),
    );
    row(["page_interval", "bits32", "bits128", "bits512"].map(String::from));

    let mut r = rng(7);
    for &interval in &INTERVALS {
        let mut cells = vec![interval.to_string()];
        for &bits in &BITS {
            let cfg = raw_paper_config(bits, interval);
            let mut chip = Chip::new(profile.clone(), 2000 + interval as u64 * 10 + bits as u64);
            let mut total = BitErrorStats::default();
            for b in 0..BLOCKS {
                let (_publics, reports) =
                    fill_block_hiding(&mut chip, BlockId(b), &key, &cfg, &mut r, false);
                total.absorb(measure_hidden_ber(&mut chip, &key, &cfg, &reports));
                chip.discard_block_state(BlockId(b)).expect("discard");
            }
            cells.push(f(total.ber(), 5));
        }
        row(cells);
    }
    println!();
    println!("# paper band: 0.004-0.010 with irregular variation across intervals");
}
