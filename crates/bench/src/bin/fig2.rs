//! Figure 2: voltage-level distributions of four chip samples of the same
//! model, at block level and page level, for erased and programmed cells.
//!
//! Output: four TSV sections matching the paper's four panels —
//! (a) block/erased over levels 10–70, (b) block/programmed over 120–210,
//! (c) page/erased, (d) page/programmed. Columns: level, sample1..sample4.

use stash_bench::{
    block_histograms, f, fill_block, header, rng, row, short_block_geometry, BenchMeter,
};
use stash_flash::{BlockId, Chip, ChipProfile, Histogram, PageId};

fn main() {
    let mut meter = BenchMeter::start("fig2");
    let mut block_erased = Vec::new();
    let mut block_programmed = Vec::new();
    let mut page_erased = Vec::new();
    let mut page_programmed = Vec::new();

    let mut r = rng(42);
    for sample in 0..4u64 {
        let mut profile = ChipProfile::vendor_a();
        profile.geometry = short_block_geometry();
        let mut chip = Chip::new(profile, 100 + sample);
        let publics = fill_block(&mut chip, BlockId(0), &mut r);
        let (erased, programmed) = block_histograms(&mut chip, BlockId(0), &publics);
        block_erased.push(erased);
        block_programmed.push(programmed);

        // Page-level: one mid-block page.
        let mut levels = Vec::new();
        chip.probe_voltages_into(PageId::new(BlockId(0), 8), &mut levels).expect("probe");
        let mut pe = Histogram::new();
        let mut pp = Histogram::new();
        for (i, &l) in levels.iter().enumerate() {
            if publics[8].get(i) {
                pe.add_levels(&[l]);
            } else {
                pp.add_levels(&[l]);
            }
        }
        page_erased.push(pe);
        page_programmed.push(pp);
    }

    let dump = |title: &str, lo: u8, hi: u8, hists: &[Histogram]| {
        header(title, "level\tsample1\tsample2\tsample3\tsample4 (% of cells)");
        for level in lo..=hi {
            let mut cells = vec![level.to_string()];
            cells.extend(hists.iter().map(|h| f(h.pct(level), 4)));
            row(cells);
        }
        println!();
    };

    header(
        "Figure 2: voltage distributions of four samples of the same chip model",
        "geometry: 18048-byte pages, 16-page blocks; pseudorandom data at PEC 1",
    );
    println!();
    dump("(a) block level, erased cells", 10, 70, &block_erased);
    dump("(b) block level, programmed cells", 120, 210, &block_programmed);
    dump("(c) page level, erased cells", 10, 70, &page_erased);
    dump("(d) page level, programmed cells", 120, 210, &page_programmed);

    // Sanity line mirroring §4: 99.99% of cells within the stated ranges.
    let in_range: f64 = block_erased
        .iter()
        .map(|h| h.fraction_in(0, 70))
        .chain(block_programmed.iter().map(|h| h.fraction_in(120, 210)))
        .sum::<f64>()
        / 8.0;
    println!("# mean fraction inside paper ranges [0,70]/[120,210]: {:.5}", in_range);
    meter.record("mean_fraction_in_paper_ranges", (in_range * 1e5).round() / 1e5);
    meter.record("samples", 4.0);
    meter.finish();
}
