//! Future work made executable (paper §6.2/§9.2): hiding inside an MLC
//! lobe with controller-grade fine programming — "with more precise
//! programming steps ... our approach should extend to MLC or TLC", "hide
//! data as TLC in MLC cells".
//!
//! The harness hides payloads in the L1 lobe of MLC wordlines and reports
//! raw hidden BER, public-data BER for both logical pages, and the capacity
//! relative to SLC-mode VT-HI on the same wordlines.

use rand::Rng;
use stash_bench::{experiment_key, f, header, rng, row, BenchMeter};
use stash_flash::{BitErrorStats, BitPattern, BlockId, Chip, ChipProfile, PageId};
use vthi::{MlcHideConfig, MlcHider};

const WORDLINES: u32 = 24;

fn main() {
    let mut meter = BenchMeter::start("mlc_future");
    let profile = ChipProfile::vendor_a_scaled();
    let key = experiment_key();
    let cfg = MlcHideConfig::default();
    let mut r = rng(260);

    let mut chip = Chip::new(profile, 61);
    let sub_vth = cfg.sub_vth(&chip);
    header(
        "§6.2 future work: VT-HI inside the MLC L1 lobe (fine PP)",
        &format!(
            "{WORDLINES} wordlines; {} hidden bits each; sub-threshold level {}",
            cfg.hidden_bits_per_page, sub_vth
        ),
    );

    let cpp = chip.geometry().cells_per_page();
    let mut hidden_errs = BitErrorStats::default();
    let mut public_errs = BitErrorStats::default();
    let payload_bytes = cfg.payload_bytes(&chip);
    let mut hider = MlcHider::new(&mut chip, key, cfg.clone());

    for w in 0..WORDLINES {
        let block = BlockId(w / 8);
        let page = PageId::new(block, w % 8);
        if w % 8 == 0 {
            hider.chip_mut().erase_block(block).expect("erase");
        }
        let lower = BitPattern::random_half(&mut r, cpp);
        let upper = BitPattern::random_half(&mut r, cpp);
        let payload: Vec<u8> = (0..payload_bytes).map(|_| r.gen()).collect();
        hider.hide_on_fresh_wordline(page, &lower, &upper, &payload).expect("hide");

        // Hidden-path integrity.
        match hider.reveal_wordline(page, Some((&lower, &upper))) {
            Ok(got) => {
                let errors = got
                    .iter()
                    .zip(&payload)
                    .map(|(a, b)| u64::from((a ^ b).count_ones()))
                    .sum::<u64>();
                hidden_errs.absorb(BitErrorStats::from_counts(errors, payload.len() as u64 * 8));
            }
            Err(_) => {
                hidden_errs.absorb(BitErrorStats::from_counts(
                    payload.len() as u64 * 8,
                    payload.len() as u64 * 8,
                ));
            }
        }

        // Public-path integrity (both logical pages).
        let (l, u) = hider.chip_mut().read_page_mlc(page).expect("mlc read");
        public_errs.absorb(BitErrorStats::compare(&lower, &l));
        public_errs.absorb(BitErrorStats::compare(&upper, &u));
    }

    row(["metric", "value"].map(String::from));
    row(["post-ECC hidden payload BER".into(), f(hidden_errs.ber(), 6)]);
    row(["public MLC data BER".into(), format!("{:.3e}", public_errs.ber())]);
    row(["hidden payload bytes per wordline".into(), payload_bytes.to_string()]);
    row([
        "MLC public capacity per wordline".into(),
        format!("{} bytes (2 logical pages)", cpp / 8 * 2),
    ]);
    meter.record("hidden_payload_ber", (hidden_errs.ber() * 1e6).round() / 1e6);
    meter.record("public_mlc_ber", (public_errs.ber() * 1e9).round() / 1e9);
    meter.record("payload_bytes_per_wordline", payload_bytes as f64);
    meter.record("wordlines", f64::from(WORDLINES));
    meter.finish();

    println!();
    println!("# interpretation: the same keyed-selection + sub-threshold construction");
    println!("# works inside an MLC lobe once fine programming is available, at the cost");
    println!("# VT-HI already pays in SLC mode — supporting the paper's conjecture that");
    println!("# vendor support extends hiding to MLC/TLC densities.");
}
