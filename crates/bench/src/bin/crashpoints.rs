//! Crash-point sweep: power-loss atomicity across the golden e2e workload.
//!
//! Enumerates a deterministic matrix of power-cut points (before-op cuts
//! over the whole device-op stream, mid-operation cuts on every PP pulse
//! and on page programs), runs one full crash-and-recover experiment per
//! cut on the `stash-par` pool, and asserts zero invariant violations:
//! acked public writes durable, unacked writes cleanly absent, acked
//! hidden payloads byte-identical after remount recovery, FTL mapping
//! consistent.
//!
//! Two extra series ride along:
//!
//! - **SVM detectability**: a linear SVM trained to separate voltage
//!   histograms of hidden-bearing pages on never-crashed devices from the
//!   same pages on crashed-then-recovered devices. Held-out accuracy at a
//!   coin flip means recovery leaves no forensic tell — "no worse than the
//!   no-crash baseline".
//! - **Recovery metrics** (via `stash-obs` counters from a traced
//!   representative run): pages journal-replayed, torn pages discarded,
//!   hidden slots re-encoded, remount wall/device time.
//!
//! `STASH_CRASH_TARGET` (≥ 16, default 200) scales the matrix for smoke
//! runs (`just crash-smoke` uses 64).

use stash_bench::crash::{enumerate_cuts, run_cut, run_cut_traced, run_matrix, SLOTS};
use stash_bench::{f, header, row, write_trace_artifacts, BenchMeter};
use stash_flash::OpKind;
use stash_obs::Tracer;
use stash_svm::{Dataset, Kernel, StandardScaler, Svm, SvmParams};
use std::fmt::Write as _;

const SEED: u64 = 0xC0FFEE;
/// Seeds for the detectability experiment: one device per seed, crashed
/// and uncrashed variants of each.
const SVM_SEEDS: [u64; 6] = [101, 102, 103, 104, 105, 106];
/// Seeds held out of SVM training and used only for accuracy.
const SVM_TEST_SEEDS: usize = 2;

fn target() -> usize {
    std::env::var("STASH_CRASH_TARGET")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 16)
        .unwrap_or(200)
}

/// Trains crash-vs-baseline and baseline-vs-baseline linear SVMs on slot
/// page voltage histograms; returns (crash_acc, control_acc) on held-out
/// seeds.
fn svm_detectability() -> (f64, f64) {
    // Per-seed: an uncut run and a run cut mid-way through a late PP pulse
    // (so recovery has real work: the torn embed must be rebuilt).
    let runs = stash_par::par_map(SVM_SEEDS.to_vec(), |_, seed| {
        let base = run_cut(seed, None, true);
        let pp: Vec<u64> = (0..base.op_log.len() as u64)
            .filter(|&i| base.op_log[i as usize] == OpKind::PartialProgram)
            .collect();
        let cut = stash_flash::PowerCut { at_op: pp[pp.len() * 3 / 4], fraction: 0.5 };
        let crashed = run_cut(seed, Some(cut), false);
        assert!(crashed.violations.is_empty(), "seed {seed}: {:?}", crashed.violations);
        (base, crashed)
    });

    let split = SVM_SEEDS.len() - SVM_TEST_SEEDS;
    let (mut train, mut test) = (Dataset::new(), Dataset::new());
    let (mut ctrain, mut ctest) = (Dataset::new(), Dataset::new());
    for (i, (base, crashed)) in runs.iter().enumerate() {
        let (d, c) = if i < split { (&mut train, &mut ctrain) } else { (&mut test, &mut ctest) };
        for h in &base.slot_page_hists {
            d.push(h.clone(), -1);
            // Control: baselines split by seed parity — same-distribution
            // classes, so its accuracy measures the coin-flip floor.
            c.push(h.clone(), if i % 2 == 0 { -1 } else { 1 });
        }
        for h in &crashed.slot_page_hists {
            d.push(h.clone(), 1);
        }
    }
    let params = SvmParams { kernel: Kernel::Linear, c: 1.0, ..Default::default() };
    let scaler = StandardScaler::fit(&train);
    let crash_acc = Svm::train(&scaler.transform_dataset(&train), &params)
        .accuracy(&scaler.transform_dataset(&test));
    let cscaler = StandardScaler::fit(&ctrain);
    let control_acc = Svm::train(&cscaler.transform_dataset(&ctrain), &params)
        .accuracy(&cscaler.transform_dataset(&ctest));
    (crash_acc, control_acc)
}

fn main() {
    let mut meter = BenchMeter::start("crashpoints");
    let target = target();
    header(
        "Crash-point matrix: power-loss atomicity over the golden workload",
        &format!(
            "{SLOTS} hidden slots; one power cut per run; target {target} cut points \
             (STASH_CRASH_TARGET scales)"
        ),
    );

    let baseline = run_cut(SEED, None, true);
    assert!(baseline.violations.is_empty(), "uncut baseline violated invariants");
    let cuts = enumerate_cuts(&baseline.op_log, target);
    let runs = run_matrix(SEED, &cuts, stash_par::thread_count());

    // Aggregate by cut shape.
    row(["cut_kind", "cuts", "torn_pages", "tag_failures", "reencoded", "violations"]
        .map(String::from));
    let mut json_kinds = String::new();
    let mut violations_total = 0usize;
    let (mut torn_total, mut tag_total, mut reenc_total) = (0u64, 0usize, 0usize);
    let (mut replayed_total, mut device_us_total, mut wall_us_total) = (0u64, 0.0f64, 0.0f64);
    for (label, select) in [
        (
            "before_op",
            Box::new(|c: &stash_flash::PowerCut| c.fraction == 0.0)
                as Box<dyn Fn(&stash_flash::PowerCut) -> bool>,
        ),
        (
            "mid_pp",
            Box::new(|c: &stash_flash::PowerCut| {
                c.fraction > 0.0 && baseline.op_log[c.at_op as usize] == OpKind::PartialProgram
            }),
        ),
        (
            "mid_program",
            Box::new(|c: &stash_flash::PowerCut| {
                c.fraction > 0.0 && baseline.op_log[c.at_op as usize] == OpKind::Program
            }),
        ),
    ] {
        let group: Vec<_> = runs.iter().filter(|r| r.cut.as_ref().is_some_and(&select)).collect();
        let torn: u64 = group.iter().map(|r| r.mount.torn_pages).sum();
        let tags: usize = group.iter().map(|r| r.recovery.tag_failures).sum();
        let reenc: usize = group.iter().map(|r| r.recovery.reconstructed).sum();
        let viol: usize = group.iter().map(|r| r.violations.len()).sum();
        row([
            label.to_string(),
            group.len().to_string(),
            torn.to_string(),
            tags.to_string(),
            reenc.to_string(),
            viol.to_string(),
        ]);
        if !json_kinds.is_empty() {
            json_kinds.push_str(",\n");
        }
        let _ = write!(
            json_kinds,
            "      {{\"kind\":\"{label}\",\"cuts\":{},\"torn_pages\":{torn},\
             \"tag_failures\":{tags},\"reencoded\":{reenc},\"violations\":{viol}}}",
            group.len(),
        );
    }
    for r in &runs {
        violations_total += r.violations.len();
        torn_total += r.mount.torn_pages;
        tag_total += r.recovery.tag_failures;
        reenc_total += r.recovery.reconstructed;
        replayed_total += r.mount.live_pages;
        device_us_total += r.remount_device_us;
        wall_us_total += r.remount_wall_us;
    }
    assert_eq!(violations_total, 0, "crash matrix found invariant violations");
    assert!(torn_total > 0, "matrix never tore a public page");
    assert!(tag_total > 0, "matrix never tore a hidden embed");

    // Detectability: does recovery leave a forensic tell?
    let (crash_acc, control_acc) = svm_detectability();
    println!();
    println!(
        "# SVM on recovered hidden-bearing pages: crash-vs-baseline {:.1}%, \
         control (baseline-vs-baseline) {:.1}%",
        crash_acc * 100.0,
        control_acc * 100.0
    );
    assert!(
        crash_acc <= control_acc + 0.25,
        "crash recovery is detectable: {crash_acc} vs control {control_acc}"
    );

    // Traced representative run: recovery metrics through stash-obs.
    let tracer = Tracer::shared();
    let mid_pp = cuts
        .iter()
        .find(|c| c.fraction > 0.0 && baseline.op_log[c.at_op as usize] == OpKind::PartialProgram)
        .copied();
    let traced = run_cut_traced(SEED, mid_pp, false, Some(&tracer));
    let report = tracer.report();
    write_trace_artifacts("crashpoints", &report);
    let counter = |name: &str| -> u64 {
        report.counters.iter().find(|(n, _, _)| n == name).map_or(0, |c| c.2)
    };

    let n = runs.len() as f64;
    meter.record_wall("mean_remount_wall_us", (wall_us_total / n * 10.0).round() / 10.0);
    meter.record("cut_points", runs.len() as f64);
    meter.record("violations", violations_total as f64);
    meter.record("torn_pages", torn_total as f64);
    meter.record("tag_failures", tag_total as f64);
    meter.record("hidden_reencoded", reenc_total as f64);
    meter.record("journal_replayed", replayed_total as f64);
    meter.record("mean_remount_device_us", (device_us_total / n * 1e3).round() / 1e3);
    meter.record_json(
        "svm",
        &format!("{{\"crash_accuracy\": {crash_acc}, \"control_accuracy\": {control_acc}}}"),
    );
    let mut traced_run = String::new();
    let _ = write!(
        traced_run,
        "{{\"journal_replayed\": {}, \"torn_discarded\": {}, \
         \"remount_recovered\": {}, \"remount_reconstructed\": {}, \
         \"remount_tag_failures\": {}, \"remount_device_us\": {:.3}}}",
        counter("mount_journal_replayed"),
        counter("mount_torn_discarded"),
        counter("remount_recovered"),
        counter("remount_reconstructed"),
        counter("remount_tag_failures"),
        traced.remount_device_us,
    );
    meter.record_json("traced_run", &traced_run);
    meter.record_json("by_kind", &format!("[\n{json_kinds}\n    ]"));
    meter.finish();

    println!();
    println!(
        "ok: {} cut points, zero invariant violations ({} torn pages, {} torn embeds recovered)",
        runs.len(),
        torn_total,
        tag_total
    );
    println!("# machine-readable series: results/BENCH_crashpoints.json");
    println!(
        "# trace artifacts: results/TRACE_crashpoints.jsonl, results/TRACE_crashpoints.folded"
    );
    println!(
        "# detectability: crash {}%, control {}%",
        f(crash_acc * 100.0, 1),
        f(control_acc * 100.0, 1)
    );
}
