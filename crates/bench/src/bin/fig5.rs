//! Figure 5: where hidden data lives. The measured distribution of
//! non-programmed (public `1`) cells, with the hidden threshold `Vth = 34`
//! splitting it into the hidden-`1` region (below) and the hidden-`0`
//! region (above), inside which VT-HI parks its charged cells.
//!
//! Output: TSV of level vs % of erased cells, before and after hiding,
//! plus the region boundaries.

use stash_bench::{
    block_histograms, experiment_key, f, fill_block, fill_block_hiding, header, raw_paper_config,
    rng, row, short_block_geometry, BenchMeter,
};
use stash_flash::{BlockId, Chip, ChipProfile};

fn main() {
    let mut meter = BenchMeter::start("fig5");
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    let key = experiment_key();
    let cfg = raw_paper_config(256, 1);

    // Normal block.
    let mut chip = Chip::new(profile.clone(), 21);
    let mut r = rng(5);
    let publics = fill_block(&mut chip, BlockId(0), &mut r);
    let (normal, _) = block_histograms(&mut chip, BlockId(0), &publics);

    // Block with hidden data.
    let mut chip2 = Chip::new(profile, 21);
    let (publics2, _) = fill_block_hiding(&mut chip2, BlockId(0), &key, &cfg, &mut r, false);
    let (hidden, _) = block_histograms(&mut chip2, BlockId(0), &publics2);

    header(
        "Figure 5: VT-HI hides data inside the non-programmed distribution",
        &format!("Vth = {} | below: hidden '1' | [Vth, ~70]: hidden '0'", cfg.vth),
    );
    row(["level", "normal_pct", "with_hidden_pct", "region"].map(String::from));
    for level in 1u8..=75 {
        let region = if level < cfg.vth { "hidden-1" } else { "hidden-0" };
        row([
            level.to_string(),
            f(normal.pct(level), 4),
            f(hidden.pct(level), 4),
            region.to_string(),
        ]);
    }
    println!();
    println!(
        "# erased cells naturally at/above Vth: {:.3}% (paper: ~1%, ≥700 of 72k per page)",
        normal.fraction_at_or_above(cfg.vth) * 100.0
    );
    println!(
        "# erased cells at/above Vth after hiding 256 bits/page: {:.3}%",
        hidden.fraction_at_or_above(cfg.vth) * 100.0
    );
    let pct = |v: f64| (v * 100.0 * 1e3).round() / 1e3;
    meter.record("natural_above_vth_pct", pct(normal.fraction_at_or_above(cfg.vth)));
    meter.record("hidden_above_vth_pct", pct(hidden.fraction_at_or_above(cfg.vth)));
    meter.finish();
}
