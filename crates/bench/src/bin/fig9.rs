//! Figure 9: can the eye tell? Voltage distributions of blocks from three
//! different chip samples, normally programmed vs after applying VT-HI —
//! interleaved so a reader can try to spot which is which.
//!
//! Output: (a) erased cells, (b) programmed cells; columns alternate
//! normal/hidden per chip.

use stash_bench::{
    block_histograms, experiment_key, f, fill_block, fill_block_hiding, header, raw_paper_config,
    rng, row, short_block_geometry, BenchMeter,
};
use stash_flash::{BlockId, Chip, ChipProfile, Histogram};

fn main() {
    let mut meter = BenchMeter::start("fig9");
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    let cfg = raw_paper_config(256, 1);
    let mut r = rng(9);

    let mut erased: Vec<(String, Histogram)> = Vec::new();
    let mut programmed: Vec<(String, Histogram)> = Vec::new();
    for chip_idx in 0..3u64 {
        let mut chip = Chip::new(profile.clone(), 4000 + chip_idx);
        // Normal block.
        let publics = fill_block(&mut chip, BlockId(0), &mut r);
        let (e, p) = block_histograms(&mut chip, BlockId(0), &publics);
        erased.push((format!("chip{chip_idx}_normal"), e));
        programmed.push((format!("chip{chip_idx}_normal"), p));
        // Hidden block on the same chip.
        let (publics, _) = fill_block_hiding(&mut chip, BlockId(1), &key, &cfg, &mut r, false);
        let (e, p) = block_histograms(&mut chip, BlockId(1), &publics);
        erased.push((format!("chip{chip_idx}_hidden"), e));
        programmed.push((format!("chip{chip_idx}_hidden"), p));
    }

    header(
        "Figure 9: normal vs VT-HI blocks across three chips (visual test)",
        "256 hidden bits/page where hidden; same wear everywhere",
    );
    let dump = |title: &str, lo: u8, hi: u8, hists: &[(String, Histogram)]| {
        header(title, "");
        let mut head = vec!["level".to_owned()];
        head.extend(hists.iter().map(|(n, _)| n.clone()));
        row(head);
        for level in lo..=hi {
            let mut cells = vec![level.to_string()];
            cells.extend(hists.iter().map(|(_, h)| f(h.pct(level), 4)));
            row(cells);
        }
        println!();
    };
    dump("(a) non-programmed cells", 10, 70, &erased);
    dump("(b) programmed cells", 120, 210, &programmed);

    // Chip-to-chip spread vs hiding-induced shift, quantified.
    let above: Vec<f64> = erased.iter().map(|(_, h)| h.fraction_at_or_above(34) * 100.0).collect();
    println!(
        "# erased cells >= Vth per block (%): {:?}",
        above.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>()
    );
    let rendered: Vec<String> = above.iter().map(|v| f(*v, 3)).collect();
    meter.record_json("above_vth_pct_per_block", &format!("[{}]", rendered.join(", ")));
    meter.record("blocks", above.len() as f64);
    meter.finish();
    println!("# the hiding shift hides inside the chip-to-chip spread (paper: 'the human");
    println!("# eye has difficulty distinguishing which distributions come from blocks");
    println!("# with hidden data')");
}
