//! Figure 1 (illustrative in the paper): typical cell-voltage distributions
//! of SLC vs MLC flash. The paper's Fig. 1 is a textbook sketch; this
//! harness renders the equivalent from the simulator's calibrated SLC-mode
//! distributions and a narrowed four-level MLC-style rendering, so the
//! repository regenerates *every* figure from executable code.

use stash_bench::{f, header, row, BenchMeter};
use stash_flash::latent::inverse_normal_cdf;

/// Renders a gaussian mixture as a 256-level percentage histogram.
fn mixture(components: &[(f64, f64, f64)]) -> Vec<f64> {
    let mut out = vec![0.0f64; 256];
    for &(weight, mean, sigma) in components {
        for (level, o) in out.iter_mut().enumerate() {
            let z = (level as f64 - mean) / sigma;
            *o += weight * (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt());
        }
    }
    out.iter().map(|v| v * 100.0).collect()
}

fn main() {
    let mut meter = BenchMeter::start("fig1");
    header(
        "Figure 1: SLC vs MLC voltage-level distributions (illustrative)",
        "rendered from the calibrated simulator parameters; erased lobes clipped at 0",
    );

    // SLC: erased lobe (negative mean; only the positive tail is
    // measurable) and one programmed lobe — the simulator's vendor-A
    // parameters.
    let slc = mixture(&[(0.5, -1.8, 14.0), (0.5, 165.0, 9.0)]);
    // MLC: four narrower lobes in the same range (paper: "MLC distributions
    // are typically narrower").
    let mlc =
        mixture(&[(0.25, -1.8, 9.0), (0.25, 85.0, 6.0), (0.25, 145.0, 6.0), (0.25, 200.0, 6.0)]);

    row(["level", "slc_pct", "mlc_pct"].map(String::from));
    for level in 0..=255usize {
        row([level.to_string(), f(slc[level], 4), f(mlc[level], 4)]);
    }
    println!();
    println!(
        "# note: SLC stores 1 bit across 2 wide lobes; MLC stores 2 bits across 4 \
         narrow lobes"
    );
    println!(
        "# sanity: z-score of SLC read reference inside programmed lobe: {:.1} sigma",
        (165.0 - 127.0) / 9.0
    );
    let _ = inverse_normal_cdf(0.5); // keep the latent module linked in

    meter.record("slc_pct_sum", (slc.iter().sum::<f64>() * 1e4).round() / 1e4);
    meter.record("mlc_pct_sum", (mlc.iter().sum::<f64>() * 1e4).round() / 1e4);
    meter.record("slc_read_ref_z_sigma", (165.0 - 127.0) / 9.0);
    meter.finish();
}
