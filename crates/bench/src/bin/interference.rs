//! §6.3 public-data interference: partial programming disturbs neighboring
//! wordlines, raising the *public* BER. The paper measured +20% with no
//! physical space between hidden pages (interval 0) and an acceptable +10%
//! at one page interval, which became the default.

use stash_bench::{
    experiment_key, f, fill_block, fill_block_hiding, header, measure_public_ber, raw_paper_config,
    rng, row, short_block_geometry, BenchMeter,
};
use stash_flash::{BitErrorStats, BlockId, Chip, ChipProfile};
use std::fmt::Write as _;

const BLOCKS: u32 = 48;

fn main() {
    let mut meter = BenchMeter::start("interference");
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    let mut r = rng(63);

    header(
        "§6.3: public-data BER vs page interval",
        &format!("{BLOCKS} blocks per point; 18048-byte pages; 256 hidden bits/page"),
    );

    // Baseline: no hiding at all.
    let mut baseline = BitErrorStats::default();
    {
        let mut chip = Chip::new(profile.clone(), 600);
        for b in 0..BLOCKS {
            let publics = fill_block(&mut chip, BlockId(b), &mut r);
            baseline.absorb(measure_public_ber(&mut chip, BlockId(b), &publics));
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
    }

    row(["page_interval", "public_ber", "increase_vs_baseline"].map(String::from));
    row(["none".into(), format!("{:.3e}", baseline.ber()), "-".into()]);
    let mut json_rows = String::new();
    for interval in [0u32, 1, 2, 4] {
        let cfg = raw_paper_config(256, interval);
        let mut chip = Chip::new(profile.clone(), 600);
        let mut total = BitErrorStats::default();
        for b in 0..BLOCKS {
            let (publics, _) = fill_block_hiding(&mut chip, BlockId(b), &key, &cfg, &mut r, false);
            total.absorb(measure_public_ber(&mut chip, BlockId(b), &publics));
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
        let increase = (total.ber() / baseline.ber() - 1.0) * 100.0;
        row([
            interval.to_string(),
            format!("{:.3e}", total.ber()),
            format!("{}{}%", if increase >= 0.0 { "+" } else { "" }, f(increase, 1)),
        ]);
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let _ = write!(
            json_rows,
            "      {{\"interval\":{interval},\"public_ber\":{},\"increase_pct\":{}}}",
            f(total.ber(), 9),
            f(increase, 1),
        );
    }
    meter.record("baseline_public_ber", (baseline.ber() * 1e9).round() / 1e9);
    meter.record_json("by_interval", &format!("[\n{json_rows}\n    ]"));
    meter.finish();
    println!();
    println!("# paper: interval 0 -> +20%, interval 1 -> +10% (chosen as default)");
}
