//! Array-shard smoke: a 4-chip chaos run that kills an entire chip and
//! asserts full hidden recovery.
//!
//! The hidden volume stripes every parity group across distinct chips of
//! an [`ArrayDevice`], so a whole-chip loss costs each group at most one
//! member — which the group's parity slot rebuilds at remount. This smoke
//! drives the full stack (array → FTL → hidden volume) under transient
//! faults, grows every block of one chip bad, cold-mounts, and requires
//! 100% of hidden payload bytes back. `just array-smoke` runs it in CI;
//! the binary itself asserts, and `bench_check` validates the artifact.

use rand::Rng;
use stash_bench::{f, header, rng, row, BenchMeter};
use stash_flash::{
    ArrayDevice, BitPattern, BlockId, ChipProfile, FaultDevice, FaultPlan, Geometry, NandDevice,
    TraceDevice,
};
use stash_ftl::{Ftl, FtlConfig};
use stash_stego::{HiddenVolume, StegoConfig};

const CHIPS: u32 = 4;
const SLOTS: usize = 9; // 3 parity groups of 3 data slots each
const PARITY_GROUP: usize = 3;
const FAULT_RATE: f64 = 0.005;
const DEAD_CHIP: u32 = 1;
const SEED: u64 = 0xA44A;

fn chip_profile() -> ChipProfile {
    let mut p = ChipProfile::vendor_a();
    p.geometry = Geometry { blocks_per_chip: 12, pages_per_block: 8, page_bytes: 1024 };
    p
}

fn key() -> stash_crypto::HidingKey {
    stash_crypto::HidingKey::from_passphrase("array smoke")
}

fn main() {
    let mut meter = BenchMeter::start("array_smoke");
    header(
        "Array-shard smoke: whole-chip loss on a 4-chip array",
        &format!(
            "{SLOTS} hidden slots striped in groups of {PARITY_GROUP} over {CHIPS} chips under \
             {FAULT_RATE} transient faults; chip {DEAD_CHIP} then dies wholesale and every \
             hidden byte must come back through cross-chip parity"
        ),
    );

    let plan = FaultPlan::new(SEED)
        .with_program_fail(FAULT_RATE)
        .with_partial_program_fail(FAULT_RATE)
        .with_erase_fail(FAULT_RATE);
    let array = ArrayDevice::homogeneous(chip_profile(), CHIPS, SEED);
    let dev = FaultDevice::with_plan(TraceDevice::new(array), plan);
    let ftl = Ftl::new(dev, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).unwrap();
    let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
    cfg.parity_group = PARITY_GROUP;
    let mut vol = HiddenVolume::format(ftl, key(), cfg.clone(), SLOTS).unwrap();

    // Public fill, hidden payloads, a round of GC churn — all under faults.
    let cap = vol.ftl().capacity_pages();
    let cpp = vol.ftl().chip().geometry().cells_per_page();
    let mut r = rng(SEED);
    for lpn in 0..cap {
        vol.write_public(lpn, &BitPattern::random_half(&mut r, cpp)).expect("public write");
    }
    let payloads: Vec<Vec<u8>> =
        (0..SLOTS).map(|s| (0..cfg.slot_bytes()).map(|b| (s * 41 + b) as u8).collect()).collect();
    for (s, p) in payloads.iter().enumerate() {
        vol.write_hidden(s, p).expect("hidden write");
    }
    for _ in 0..cap / 2 {
        let lpn = r.gen_range(0..cap);
        vol.write_public(lpn, &BitPattern::random_half(&mut r, cpp)).expect("churn write");
    }

    // Kill chip DEAD_CHIP wholesale at the device level, then rebuild the
    // whole stack from the medium.
    let mut dev = vol.unmount().into_chip();
    // The array exposes the widened geometry; per-chip span is the total
    // block count over the chip count.
    let local = dev.geometry().blocks_per_chip / dev.chip_count();
    for b in DEAD_CHIP * local..(DEAD_CHIP + 1) * local {
        dev.grow_bad_block(BlockId(b)).expect("grow bad");
    }
    let (ftl_back, mount) =
        Ftl::mount(dev, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).expect("mount");
    let (mut vol2, remount) =
        HiddenVolume::remount(ftl_back, key(), cfg.clone(), SLOTS).expect("remount");

    let mut survived = 0usize;
    let total = SLOTS * cfg.slot_bytes();
    for (s, expect) in payloads.iter().enumerate() {
        if let Ok(Some(got)) = vol2.read_hidden(s) {
            survived += got.iter().zip(expect).filter(|(a, b)| a == b).count();
        }
    }
    let survival = survived as f64 / total as f64;
    let retired_on_dead =
        vol2.ftl().retired_blocks().iter().filter(|b| b.0 / local == DEAD_CHIP).count();

    row(["chips", "dead_chip", "survival", "reconstructed", "lost", "retired_on_dead"]
        .map(String::from));
    row([
        CHIPS.to_string(),
        DEAD_CHIP.to_string(),
        f(survival, 4),
        remount.reconstructed.to_string(),
        remount.lost.to_string(),
        retired_on_dead.to_string(),
    ]);

    assert_eq!(remount.lost, 0, "whole-chip loss must be fully recoverable: {remount:?}");
    assert!(
        (survival - 1.0).abs() < f64::EPSILON,
        "only {survival} of hidden bytes survived chip {DEAD_CHIP} dying"
    );
    assert_eq!(
        retired_on_dead, local as usize,
        "every block of the dead chip must be retired at mount"
    );

    meter.record("chips", f64::from(CHIPS));
    meter.record("dead_chip", f64::from(DEAD_CHIP));
    meter.record("survival", survival);
    meter.record("reconstructed", remount.reconstructed as f64);
    meter.record("lost", remount.lost as f64);
    meter.record("retired_on_dead", retired_on_dead as f64);
    meter.record("journal_replayed", mount.live_pages as f64);
    meter.finish();
    println!("ok: 100% of hidden payload bytes survive a whole-chip loss on a {CHIPS}-chip array");
    println!("# machine-readable record: results/BENCH_array_smoke.json");
}
