//! Forensics: *where* does the adversary look? Trains a linear SVM on
//! matched-wear and wear-mismatched block pairs and prints the
//! highest-leverage voltage levels of its weight vector.
//!
//! Expected story: against a wear gap the weights concentrate on the
//! programmed lobe (whose mean drifts with PEC); against matched-wear
//! hiding the weights scatter across the erased tail without finding a
//! consistent lever — the visual of why Fig. 10's diagonal sits at a coin
//! flip.

use stash_bench::detect::prepare_features;
use stash_bench::{experiment_key, f, header, row, BenchMeter};
use stash_flash::ChipProfile;
use stash_svm::{Dataset, Kernel, StandardScaler, Svm, SvmParams};
use vthi::{EccChoice, VthiConfig};

const BLOCKS: u32 = 16;

fn weights_for(normal_pec: u32, hidden_pec: u32) -> (Vec<f64>, f64, f64) {
    let profile = ChipProfile::vendor_a_scaled();
    let key = experiment_key();
    let mut cfg = VthiConfig::scaled_for(&profile.geometry);
    cfg.ecc = EccChoice::None;
    // Per-(pair, chip, class) fill-RNG base seeds; prepare_features adds
    // the block index within each 100-wide slot and fans the blocks out on
    // the worker pool.
    let fill_seed = |chip: u64, hidden: bool| {
        777_000_000 + u64::from(normal_pec) * 100_000 + chip * 1_000 + u64::from(hidden) * 100
    };

    let mut train = Dataset::new();
    for seed in [1u64, 2] {
        for feat in
            prepare_features(&profile, seed, normal_pec, None, BLOCKS, fill_seed(seed, false))
        {
            train.push(feat, -1);
        }
        for feat in prepare_features(
            &profile,
            seed,
            hidden_pec,
            Some((&key, &cfg)),
            BLOCKS,
            fill_seed(seed, true),
        ) {
            train.push(feat, 1);
        }
    }
    // Held-out chip: the number that actually matters.
    let mut test = Dataset::new();
    for feat in prepare_features(&profile, 3, normal_pec, None, BLOCKS, fill_seed(3, false)) {
        test.push(feat, -1);
    }
    for feat in
        prepare_features(&profile, 3, hidden_pec, Some((&key, &cfg)), BLOCKS, fill_seed(3, true))
    {
        test.push(feat, 1);
    }
    let scaler = StandardScaler::fit(&train);
    let model = Svm::train(
        &scaler.transform_dataset(&train),
        &SvmParams { kernel: Kernel::Linear, c: 1.0, ..Default::default() },
    );
    let train_acc = model.accuracy(&scaler.transform_dataset(&train));
    let test_acc = model.accuracy(&scaler.transform_dataset(&test));
    (model.linear_weights().expect("linear"), train_acc, test_acc)
}

fn top_levels(w: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut idx: Vec<usize> = (0..w.len()).collect();
    idx.sort_by(|&a, &b| w[b].abs().partial_cmp(&w[a].abs()).expect("finite"));
    idx.into_iter().take(k).map(|i| (i, w[i])).collect()
}

fn main() {
    let mut bench = BenchMeter::start("forensics");
    header(
        "Forensics: the linear adversary's highest-leverage voltage levels",
        &format!("{BLOCKS} blocks/class/chip, 2 chips, training-set weights"),
    );

    for (label, normal_pec, hidden_pec) in
        [("matched wear (hiding only)", 1000u32, 1000u32), ("wear gap (PEC 0 vs 2000)", 0, 2000)]
    {
        let (w, train_acc, test_acc) = weights_for(normal_pec, hidden_pec);
        println!();
        println!(
            "# {label}: train accuracy {:.1}%, held-out chip {:.1}%",
            train_acc * 100.0,
            test_acc * 100.0
        );
        row(["rank", "voltage_level", "weight", "region"].map(String::from));
        for (rank, (level, weight)) in top_levels(&w, 10).into_iter().enumerate() {
            let region = match level {
                0 => "measurement floor",
                1..=33 => "erased body",
                34..=70 => "erased tail (hidden region)",
                71..=126 => "guard band",
                _ => "programmed lobe",
            };
            row([(rank + 1).to_string(), level.to_string(), f(weight, 3), region.to_owned()]);
        }
    }
    println!();
    println!("# reading: at matched wear the classifier can only memorize sampling noise");
    println!("# — its big weights sit on near-empty bins (guard band, lobe extremes) and");
    println!("# the held-out accuracy collapses toward a coin flip. Against a wear gap");
    println!("# the leverage generalizes: drift moves whole populated regions, and the");
    println!("# held-out accuracy stays high. The SVM detects wear, not hiding.");

    bench.record("blocks_per_class", f64::from(BLOCKS));
    bench.record("pairs", 2.0);
    bench.finish();
}
