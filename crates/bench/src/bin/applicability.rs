//! §8 "Applicability": the same VT-HI code against a chip model from a
//! second major vendor (16 GB, 2096 blocks, 18256-byte pages). The paper
//! hides a 256-bit payload per relevant page on a fresh chip and measures a
//! BER of ≈1%, similar to vendor A.

use stash_bench::rng;
use stash_bench::{
    experiment_key, f, fill_block_hiding, header, measure_hidden_ber, raw_paper_config, row,
    BenchMeter,
};
use stash_flash::{BlockId, Chip, ChipProfile, Geometry};

fn main() {
    let mut meter = BenchMeter::start("applicability");
    let key = experiment_key();
    let cfg = raw_paper_config(256, 1);

    header(
        "§8 Applicability: VT-HI on a second vendor's chip model",
        "256-bit payloads, fresh chips (PEC 0), raw (pre-ECC) hidden BER",
    );
    row(["chip_model", "page_bytes", "hidden_ber"].map(String::from));

    let mut r = rng(88);
    for (name, mut profile) in
        [("vendor-A", ChipProfile::vendor_a()), ("vendor-B", ChipProfile::vendor_b())]
    {
        // Short blocks, full-size pages of the respective vendor.
        profile.geometry = Geometry {
            blocks_per_chip: 16,
            pages_per_block: 16,
            page_bytes: profile.geometry.page_bytes,
        };
        let mut chip = Chip::new(profile.clone(), 90);
        let mut total = stash_flash::BitErrorStats::default();
        for b in 0..3 {
            let (_publics, reports) =
                fill_block_hiding(&mut chip, BlockId(b), &key, &cfg, &mut r, false);
            total.absorb(measure_hidden_ber(&mut chip, &key, &cfg, &reports));
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
        row([name.to_owned(), profile.geometry.page_bytes.to_string(), f(total.ber(), 4)]);
        let metric = if name == "vendor-A" { "vendor_a_hidden_ber" } else { "vendor_b_hidden_ber" };
        meter.record(metric, (total.ber() * 1e6).round() / 1e6);
    }
    meter.finish();
    println!();
    println!("# paper: vendor-B BER ~1%, 'similar to the one in the first model'");
}
