//! §9.2 multiple-snapshot adversary: an attacker who images the device's
//! voltages twice diffs the snapshots. Any page whose cells changed without
//! a corresponding public write is a telltale. The paper's mitigation is to
//! piggyback hidden writes on public traffic; this harness counts the
//! telltales both ways.

use rand::Rng;
use stash_bench::{header, rng, row, BenchMeter};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, Geometry, PageId};
use stash_ftl::{Ftl, FtlConfig};
use stash_stego::{HiddenVolume, StegoConfig};
use std::fmt::Write as _;

fn small_profile() -> ChipProfile {
    let mut p = ChipProfile::vendor_a();
    p.geometry = Geometry { blocks_per_chip: 16, pages_per_block: 8, page_bytes: 1024 };
    p
}

/// Full-device voltage snapshot.
fn snapshot(chip: &Chip) -> Vec<Vec<u8>> {
    let mut copy = chip.clone();
    let g = *copy.geometry();
    let mut out = Vec::new();
    for b in 0..g.blocks_per_chip {
        for p in 0..g.pages_per_block {
            let mut levels = Vec::new();
            copy.probe_voltages_into(PageId::new(BlockId(b), p), &mut levels).unwrap();
            out.push(levels);
        }
    }
    out
}

/// Pages whose voltage image moved by more than read noise.
fn changed_pages(a: &[Vec<u8>], b: &[Vec<u8>]) -> usize {
    a.iter()
        .zip(b)
        .filter(|(x, y)| {
            x.iter().zip(y.iter()).any(|(&u, &v)| (i32::from(u) - i32::from(v)).abs() > 6)
        })
        .count()
}

fn scenario(piggyback: bool, public_writes_between: usize) -> (usize, usize) {
    let chip = Chip::new(small_profile(), 0x57A9);
    let ftl = Ftl::new(chip, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).unwrap();
    let mut cfg = StegoConfig::for_geometry(ftl.chip().geometry());
    cfg.piggyback = piggyback;
    cfg.parity_group = 0;
    let key = stash_crypto::HidingKey::from_passphrase("snapshot scenario");
    let mut vol = HiddenVolume::format(ftl, key, cfg, 4).unwrap();
    let cap = vol.ftl().capacity_pages();
    let cpp = vol.ftl().chip().geometry().cells_per_page();
    let mut r = rng(9 + u64::from(piggyback));
    for lpn in 0..cap {
        let data = BitPattern::random_half(&mut r, cpp);
        vol.write_public(lpn, &data).unwrap();
    }

    let snap1 = snapshot(vol.ftl().chip());

    // The hiding user writes one secret between the two snapshots…
    let secret = vec![0x42u8; vol.slot_bytes()];
    vol.write_hidden(0, &secret).unwrap();
    // …and the normal user performs some public writes.
    let mut publicly_touched = std::collections::HashSet::new();
    for _ in 0..public_writes_between {
        let lpn = r.gen_range(0..cap);
        let data = BitPattern::random_half(&mut r, cpp);
        vol.write_public(lpn, &data).unwrap();
        publicly_touched.insert(lpn);
    }

    let snap2 = snapshot(vol.ftl().chip());
    (changed_pages(&snap1, &snap2), publicly_touched.len())
}

fn main() {
    let mut meter = BenchMeter::start("snapshots");
    header(
        "§9.2 multiple-snapshot adversary: voltage-diff telltales",
        "a changed page with no public write to explain it betrays hiding",
    );
    row(["mode", "public_writes_between", "pages_changed", "deniable"].map(String::from));

    let mut json_rows = String::new();
    for (label, piggyback, writes) in [
        ("eager, quiet device", false, 0usize),
        ("eager, busy device", false, 24),
        ("piggyback, quiet device", true, 0),
        ("piggyback, busy device", true, 24),
    ] {
        let (changed, touched) = scenario(piggyback, writes);
        // With zero public writes, ANY change is a telltale. With traffic,
        // changes are expected; hidden writes hide inside them.
        let deniable = if writes == 0 { changed == 0 } else { true };
        row([
            label.to_owned(),
            touched.to_string(),
            changed.to_string(),
            if deniable { "yes".into() } else { "NO — telltale".into() },
        ]);
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let _ = write!(
            json_rows,
            "      {{\"mode\":\"{label}\",\"piggyback\":{piggyback},\"public_writes\":{touched},\
             \"pages_changed\":{changed},\"deniable\":{deniable}}}",
        );
    }
    meter.record_json("scenarios", &format!("[\n{json_rows}\n    ]"));
    meter.finish();
    println!();
    println!("# paper: \"storing hidden data while leaving the public data unchanged");
    println!("# leaves telltale signs of voltage manipulations\"; piggybacking on public");
    println!("# writes removes the uncorrelated changes");
}
