//! Figure 8: average block-level voltage distribution of non-programmed
//! cells after hiding 32 / 64 / 128 / 256 bits per page, against a normal
//! block. Hiding more bits shifts a (tiny) bit more mass to the right of
//! `Vth`; the shift stays inside natural variability.

use stash_bench::{
    block_histograms, experiment_key, f, fill_block, fill_block_hiding, header, raw_paper_config,
    rng, row, short_block_geometry, BenchMeter,
};
use stash_flash::{BlockId, Chip, ChipProfile, Histogram};
use std::fmt::Write as _;

const BLOCKS: u32 = 3;
const BITS: [usize; 4] = [32, 64, 128, 256];

fn main() {
    let mut meter = BenchMeter::start("fig8");
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    let mut r = rng(8);

    // Normal baseline.
    let mut normal = Histogram::new();
    {
        let mut chip = Chip::new(profile.clone(), 3000);
        for b in 0..BLOCKS {
            let publics = fill_block(&mut chip, BlockId(b), &mut r);
            let (e, _) = block_histograms(&mut chip, BlockId(b), &publics);
            normal.merge(&e);
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
    }

    // One averaged histogram per hidden-bit count.
    let mut hidden: Vec<Histogram> = Vec::new();
    for &bits in &BITS {
        let cfg = raw_paper_config(bits, 1);
        let mut chip = Chip::new(profile.clone(), 3000);
        let mut h = Histogram::new();
        for b in 0..BLOCKS {
            let (publics, _) = fill_block_hiding(&mut chip, BlockId(b), &key, &cfg, &mut r, false);
            let (e, _) = block_histograms(&mut chip, BlockId(b), &publics);
            h.merge(&e);
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
        hidden.push(h);
    }

    header(
        "Figure 8: average erased-cell distributions after VT-HI",
        "level, normal, then one column per hidden-bit count (% of erased cells)",
    );
    row(["level", "normal", "bits32", "bits64", "bits128", "bits256"].map(String::from));
    for level in 1u8..=75 {
        let mut cells = vec![level.to_string(), f(normal.pct(level), 4)];
        cells.extend(hidden.iter().map(|h| f(h.pct(level), 4)));
        row(cells);
    }

    println!();
    println!("# fraction of erased cells at/above Vth=34 (the hiding-induced shift):");
    println!("#   normal: {:.4}%", normal.fraction_at_or_above(34) * 100.0);
    let mut json_rows = String::new();
    for (h, bits) in hidden.iter().zip(BITS) {
        println!("#   {bits:>3} bits/page: {:.4}%", h.fraction_at_or_above(34) * 100.0);
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let _ = write!(
            json_rows,
            "      {{\"bits\":{bits},\"above_vth_pct\":{}}}",
            f(h.fraction_at_or_above(34) * 100.0, 4),
        );
    }
    println!("# paper: 'only a tiny shift to the right', growing with bit count");
    meter.record(
        "normal_above_vth_pct",
        (normal.fraction_at_or_above(34) * 100.0 * 1e4).round() / 1e4,
    );
    meter.record_json("shift_by_bits", &format!("[\n{json_rows}\n    ]"));
    meter.finish();
}
