//! Chaos sweep: hidden-data survival under injected flash faults.
//!
//! Runs the full stack (chip → FTL → hidden volume) against a deterministic
//! [`FaultPlan`] at increasing transient-fault rates, with one block
//! scheduled to go grown bad mid-run and a retention pause before recovery.
//! The recovery pipeline — bounded retries with backoff, the `Vth` read
//! sweep, the scrubber's refresh/migrate passes and FTL block retirement —
//! must hold byte survival at ≥ 99.9% through the 1% fault point.
//!
//! Each fault rate is one `stash-par` work item (own chip, FTL, volume and
//! tracer, all derived from the rate's seed); TSV and JSON rows are
//! collected in rate order, so output is byte-identical for any
//! `STASH_THREADS`. Wall time, thread count and the mean remount wall time
//! live under the JSON's `wall` object, outside the `deterministic` object
//! that holds the `rates` series `bench_compare` gates on.

use rand::Rng;
use stash_bench::{f, header, rng, row, write_trace_artifacts, BenchMeter};
use stash_flash::{
    BitPattern, BlockId, Chip, ChipProfile, FaultDevice, FaultPlan, Geometry, NandDevice,
    TraceDevice,
};
use stash_ftl::{Ftl, FtlConfig};
use stash_obs::json::write_num;
use stash_obs::Tracer;
use stash_stego::{HiddenVolume, StegoConfig};
use std::fmt::Write as _;

const RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];
const SLOTS: usize = 6;
const GROWN_BAD_AT_OP: u64 = 400;
/// The fault rate whose trace is exported as the flamegraph/JSONL artifact.
const TRACED_RATE: f64 = 0.01;

fn volume_profile() -> ChipProfile {
    let mut p = ChipProfile::vendor_a();
    p.geometry = Geometry { blocks_per_chip: 12, pages_per_block: 8, page_bytes: 1024 };
    p
}

fn key() -> stash_crypto::HidingKey {
    stash_crypto::HidingKey::from_passphrase("chaos sweep")
}

/// One full chaos run at a single fault rate: returns the TSV cells, the
/// JSON row for that rate and the (nondeterministic) remount wall time.
fn run_rate(i: usize, rate: f64) -> (Vec<String>, String, f64) {
    let seed = 9000 + i as u64;
    let plan = FaultPlan::new(seed)
        .with_program_fail(rate)
        .with_partial_program_fail(rate)
        .with_erase_fail(rate)
        .schedule_grown_bad(BlockId(5), GROWN_BAD_AT_OP);
    let chip = FaultDevice::with_plan(TraceDevice::new(Chip::new(volume_profile(), seed)), plan);
    let ftl = Ftl::new(chip, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).unwrap();
    let cfg = StegoConfig::for_geometry(ftl.chip().geometry());
    let mut vol = HiddenVolume::format(ftl, key(), cfg.clone(), SLOTS).unwrap();
    let tracer = Tracer::shared();
    vol.attach_tracer(Some(tracer.clone()));

    // Public fill, hidden payloads, then GC churn — all under faults.
    let cap = vol.ftl().capacity_pages();
    let cpp = vol.ftl().chip().geometry().cells_per_page();
    let mut r = rng(seed);
    {
        let _s = tracer.span("fill_public");
        for lpn in 0..cap {
            let data = BitPattern::random_half(&mut r, cpp);
            vol.write_public(lpn, &data).expect("public write");
        }
    }
    let payloads: Vec<Vec<u8>> =
        (0..SLOTS).map(|s| (0..cfg.slot_bytes()).map(|b| (s * 37 + b) as u8).collect()).collect();
    {
        let _s = tracer.span("write_hidden");
        for (s, p) in payloads.iter().enumerate() {
            vol.write_hidden(s, p).expect("hidden write");
        }
    }
    {
        let _s = tracer.span("churn");
        for _ in 0..cap {
            let lpn = r.gen_range(0..cap);
            let data = BitPattern::random_half(&mut r, cpp);
            vol.write_public(lpn, &data).expect("churn write");
        }
    }

    // A month on the shelf, then the maintenance pass.
    {
        let _s = tracer.span("retention_wait");
        vol.ftl_mut().chip_mut().age_days(30.0);
    }
    let scrub = vol.scrub(8).expect("scrub");

    // Cold mount: power-cycle the device and rebuild the whole stack from
    // the medium — FTL journal replay first, then hidden-slot recovery.
    let dev = vol.unmount().into_chip();
    let device_us_before = dev.meter().device_time_us;
    let remount_wall = std::time::Instant::now();
    let (mut ftl_back, mount) = {
        let _s = tracer.span("cold_mount");
        Ftl::mount(dev, FtlConfig { reserve_blocks: 4, gc_low_water: 2 }).expect("mount")
    };
    ftl_back.attach_tracer(Some(tracer.clone()));
    let (mut vol2, remount) =
        HiddenVolume::remount(ftl_back, key(), cfg.clone(), SLOTS).expect("remount");
    let remount_wall_us = remount_wall.elapsed().as_secs_f64() * 1e6;
    let remount_device_us = vol2.ftl().chip().meter().device_time_us - device_us_before;
    tracer.counter_add("mount_journal_replayed", "", mount.live_pages);
    tracer.counter_add("mount_torn_discarded", "", mount.torn_pages);
    tracer.gauge_set("remount_device_us", "", remount_device_us);
    let mut survived = 0usize;
    let total = SLOTS * cfg.slot_bytes();
    {
        let _s = tracer.span("readback");
        for (s, expect) in payloads.iter().enumerate() {
            if let Ok(Some(got)) = vol2.read_hidden(s) {
                survived += got.iter().zip(expect).filter(|(a, b)| a == b).count();
            }
        }
    }
    let survival = survived as f64 / total as f64;
    let meter = vol2.ftl().chip().meter();
    let tsv = vec![
        f(rate, 3),
        f(survival, 4),
        meter.total_faults().to_string(),
        vol2.ftl().stats().retirements.to_string(),
        scrub.migrated.to_string(),
        scrub.refreshed.to_string(),
        (scrub.lost + remount.lost).to_string(),
    ];

    let report = tracer.report();
    let mut json_row = String::new();
    json_row.push_str("    {\"fault_rate\":");
    write_num(&mut json_row, rate);
    json_row.push_str(",\"survival\":");
    write_num(&mut json_row, survival);
    let _ = write!(
        json_row,
        ",\"faults\":{},\"retired_blocks\":{},\"scrub_migrated\":{},\"scrub_refreshed\":{},\
         \"lost\":{},\"retries\":{},\"ops\":{},",
        meter.total_faults(),
        vol2.ftl().stats().retirements,
        scrub.migrated,
        scrub.refreshed,
        scrub.lost + remount.lost,
        report.counters.iter().find(|(n, _, _)| n == "transient_retries").map_or(0, |c| c.2),
        meter.total_ops(),
    );
    let _ = write!(
        json_row,
        "\"journal_replayed\":{},\"torn_pages\":{},\"hidden_reencoded\":{},\
         \"remount_device_us\":",
        mount.live_pages, mount.torn_pages, remount.reconstructed,
    );
    write_num(&mut json_row, remount_device_us);
    json_row.push_str(",\"device_time_us\":");
    write_num(&mut json_row, meter.device_time_us);
    json_row.push_str(",\"energy_uj\":");
    write_num(&mut json_row, meter.energy_uj);
    json_row.push('}');

    if rate == TRACED_RATE {
        write_trace_artifacts("chaos", &report);
    }
    if rate <= 0.01 {
        assert!(survival >= 0.999, "survival {survival} below 99.9% at fault rate {rate}");
    }
    (tsv, json_row, remount_wall_us)
}

fn main() {
    let mut meter = BenchMeter::start("chaos");
    header(
        "Chaos sweep: hidden-byte survival vs injected fault rate",
        &format!(
            "{SLOTS} slots; transient program/partial-program/erase faults at the listed rate, \
             one grown-bad block scheduled at op {GROWN_BAD_AT_OP}, 30-day retention pause, \
             then scrub + remount"
        ),
    );
    row(["fault_rate", "survival", "faults", "retired", "migrated", "refreshed", "lost"]
        .map(String::from));

    let results = stash_par::par_map(RATES.to_vec(), run_rate);

    let mut json_rows = String::new();
    let mut remount_wall_us_total = 0.0;
    for (tsv, json_row, remount_wall_us) in results {
        row(tsv);
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        json_rows.push_str(&json_row);
        remount_wall_us_total += remount_wall_us;
    }

    meter.record_wall(
        "mean_remount_wall_us",
        (remount_wall_us_total / RATES.len() as f64 * 1e3).round() / 1e3,
    );
    meter.record("slots", SLOTS as f64);
    meter.record("grown_bad_at_op", GROWN_BAD_AT_OP as f64);
    meter.record_json("rates", &format!("[\n{json_rows}\n    ]"));
    meter.finish();
    println!("ok: >=99.9% of hidden payload bytes survive through the 1% fault point");
    println!("# machine-readable series: results/BENCH_chaos.json");
    println!("# trace artifacts (rate {TRACED_RATE}): results/TRACE_chaos.jsonl, results/TRACE_chaos.folded");
}
