//! Table 1 + §8: VT-HI vs PT-HI on reliability, performance, power, public
//! data integrity, repeated reads, wear, and capacity.
//!
//! Two methods, cross-checked:
//!  1. the paper's closed-form §8 arithmetic over operation counts and the
//!     §6.1 device latencies/energies, and
//!  2. metered measurements from actually running both schemes on
//!     independently seeded simulated chips (the paper characterizes four
//!     samples of the vendor-A chip; we meter `STASH_SAMPLES` of each
//!     scheme, default 8, and aggregate).
//!
//! Samples are independent work items on the `stash-par` pool: each derives
//! its own chip and RNG from its sample index, so the TSV is byte-identical
//! for any `STASH_THREADS`. Sample 0 of VT-HI carries the tracer.
//!
//! Headline targets: 24× encode, 50× decode, 37× energy, 10-vs-625 wear,
//! ~2× capacity (enhanced configuration vs PT-HI).

use pthi::{PthiConfig, PthiHider};
use stash_bench::{
    experiment_key, f, fill_block_hiding_traced, header, raw_paper_config, rng, row,
    short_block_geometry, write_trace_artifacts, BenchMeter,
};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, MeterSnapshot, NandDevice, PageId};
use stash_obs::Tracer;
use vthi::{shannon_capacity_bits, Hider, HidingThroughput, PAPER_PAGES_PER_BLOCK_S8};

/// One metered scheme run: encode-phase meter, decode-phase meter, and the
/// number of hidden (VT-HI) or carrier (PT-HI) pages it processed.
struct SampleMeters {
    encode: MeterSnapshot,
    decode: MeterSnapshot,
    pages: u32,
}

/// VT-HI on one freshly seeded chip: hide across one block, then decode it.
/// The encode account excludes public program ops (the normal user pays
/// those anyway; the §8 model charges VT-HI only the PP+read iterations).
fn vthi_sample(profile: &ChipProfile, sample: usize, traced: bool) -> SampleMeters {
    let timing = stash_flash::TimingModel::paper_vendor_a();
    let key = experiment_key();
    let cfg = raw_paper_config(256, 1);
    let mut chip =
        stash_flash::TraceDevice::new(Chip::new(profile.clone(), 71 + 100 * sample as u64));
    let mut r = rng(42 + sample as u64);
    chip.reset_meter();
    let tracer = traced.then(Tracer::shared);
    chip.set_recorder(tracer.clone().map(|t| t as stash_flash::SharedRecorder));
    let before = chip.meter();
    let (publics, reports) =
        fill_block_hiding_traced(&mut chip, BlockId(0), &key, &cfg, &mut r, false, tracer.clone());
    let after_encode = chip.meter();
    let hidden_pages = reports.len() as u32;
    {
        let _decode = tracer.as_ref().map(|t| t.span("decode_block"));
        let mut hider = Hider::new(&mut chip, key, cfg.clone()).with_tracer(tracer.clone());
        for (i, _rep) in reports.iter().enumerate() {
            let page = PageId::new(BlockId(0), i as u32 * cfg.page_stride());
            let _ = hider
                .read_hidden_bits(page, Some(&publics[(i as u32 * cfg.page_stride()) as usize]))
                .expect("decode");
        }
    }
    let after_decode = chip.meter();
    chip.set_recorder(None);
    if let Some(tracer) = tracer {
        write_trace_artifacts("table1", &tracer.report());
    }

    let mut encode = after_encode.since(&before);
    let program_us = encode.count(stash_flash::OpKind::Program) as f64 * timing.program_us;
    let program_uj = encode.count(stash_flash::OpKind::Program) as f64 * timing.program_uj;
    encode.device_time_us -= program_us;
    encode.energy_uj -= program_uj;
    SampleMeters { encode, decode: after_decode.since(&after_encode), pages: hidden_pages }
}

/// PT-HI on one freshly seeded chip: encode + (destructive) decode per page
/// over a whole block, with public data programmed in between.
fn pthi_sample(profile: &ChipProfile, sample: usize) -> SampleMeters {
    let key = experiment_key();
    let pages = profile.geometry.pages_per_block;
    let mut chip = Chip::new(profile.clone(), 72 + 100 * sample as u64);
    let mut r = rng(1042 + sample as u64);
    let pcfg = PthiConfig::paper_default(chip.geometry());
    chip.erase_block(BlockId(0)).expect("erase");
    chip.reset_meter();
    let b0 = chip.meter();
    {
        let mut ph = PthiHider::new(&mut chip, key.clone(), pcfg.clone());
        for p in 0..pages {
            let bits: Vec<bool> =
                (0..pcfg.bits_per_page).map(|i| (i + p as usize) % 2 == 0).collect();
            ph.encode_page(PageId::new(BlockId(0), p), &bits).expect("encode");
        }
    }
    let b1 = chip.meter();
    chip.erase_block(BlockId(0)).expect("erase");
    {
        // Public data in between.
        let cpp = chip.geometry().cells_per_page();
        for p in 0..pages {
            let data = BitPattern::random_half(&mut r, cpp);
            chip.program_page(PageId::new(BlockId(0), p), &data).expect("program");
        }
    }
    let b2 = chip.meter();
    {
        let mut ph = PthiHider::new(&mut chip, key, pcfg);
        for p in 0..pages {
            let _ = ph.decode_page(PageId::new(BlockId(0), p)).expect("decode");
        }
    }
    let b3 = chip.meter();
    SampleMeters { encode: b1.since(&b0), decode: b3.since(&b2), pages }
}

/// Sums per-sample meters into one device-total account, in sample order.
fn aggregate(samples: &[SampleMeters]) -> SampleMeters {
    let mut total = SampleMeters {
        encode: MeterSnapshot::default(),
        decode: MeterSnapshot::default(),
        pages: 0,
    };
    for s in samples {
        total.encode.absorb(&s.encode);
        total.decode.absorb(&s.decode);
        total.pages += s.pages;
    }
    total
}

fn main() {
    let mut bench = BenchMeter::start("table1");
    let timing = stash_flash::TimingModel::paper_vendor_a();

    // ---- method 1: the paper's closed-form model --------------------------
    let vthi_model = HidingThroughput::vthi_model(&timing, 10, PAPER_PAGES_PER_BLOCK_S8, 243.6);
    let pthi_model = HidingThroughput::pthi_model(&timing, PAPER_PAGES_PER_BLOCK_S8);

    // ---- method 2: metered execution on the simulator ---------------------
    let samples: usize = std::env::var("STASH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(8);
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();

    // One pool pass over all 2×S independent samples: VT-HI first, PT-HI
    // after, split back apart below.
    let metered = stash_par::par_trials(2 * samples, |i| {
        if i < samples {
            vthi_sample(&profile, i, i == 0)
        } else {
            pthi_sample(&profile, i - samples)
        }
    });
    let vthi_total = aggregate(&metered[..samples]);
    let pthi_total = aggregate(&metered[samples..]);

    let vthi_measured = HidingThroughput::from_meter(
        &vthi_total.encode,
        &vthi_total.decode,
        vthi_total.pages,
        shannon_capacity_bits(256, 0.005) / 1.0,
        false,
    );
    let pthi_measured = HidingThroughput::from_meter(
        &pthi_total.encode,
        &pthi_total.decode,
        pthi_total.pages,
        PthiConfig::paper_default(&profile.geometry).bits_per_page as f64,
        true,
    );

    // ---- print -------------------------------------------------------------
    header(
        "Table 1 / §8: VT-HI vs PT-HI",
        &format!("model = paper closed-form; measured = simulator meter over {samples} chip samples/scheme"),
    );
    row(["metric", "vthi_model", "pthi_model", "vthi_measured", "pthi_measured", "paper"]
        .map(String::from));
    row([
        "encode Kb/s".into(),
        f(vthi_model.encode_kbps(), 1),
        f(pthi_model.encode_kbps(), 2),
        f(vthi_measured.encode_kbps(), 1),
        f(pthi_measured.encode_kbps(), 2),
        "35 vs 1.4".into(),
    ]);
    row([
        "decode Kb/s".into(),
        f(vthi_model.decode_kbps(), 0),
        f(pthi_model.decode_kbps(), 0),
        f(vthi_measured.decode_kbps(), 0),
        f(pthi_measured.decode_kbps(), 0),
        "2700 vs 54".into(),
    ]);
    row([
        "encode mJ/page".into(),
        f(vthi_model.encode_mj_per_page, 2),
        f(pthi_model.encode_mj_per_page, 1),
        f(vthi_measured.encode_mj_per_page, 2),
        f(pthi_measured.encode_mj_per_page, 1),
        "1.1 vs 43".into(),
    ]);
    row([
        "wear ops/page".into(),
        f(vthi_model.wear_ops_per_page, 0),
        f(pthi_model.wear_ops_per_page, 0),
        f(vthi_measured.wear_ops_per_page, 1),
        f(pthi_measured.wear_ops_per_page, 0),
        "10 vs 625".into(),
    ]);
    row([
        "destructive decode".into(),
        "no".into(),
        "yes".into(),
        "no".into(),
        "yes".into(),
        "Table 1".into(),
    ]);

    let (enc, dec, energy) = vthi_model.speedup_over(&pthi_model);
    let (enc_m, dec_m, energy_m) = vthi_measured.speedup_over(&pthi_measured);
    println!();
    println!(
        "# headline ratios  (model):    encode {enc:.1}x, decode {dec:.1}x, energy {energy:.1}x"
    );
    println!("# headline ratios  (measured): encode {enc_m:.1}x, decode {dec_m:.1}x, energy {energy_m:.1}x");
    println!("# paper:                       encode 24x,   decode 50x,   energy 37x");

    // Capacity row (§8 Improved Capacity): enhanced VT-HI vs PT-HI.
    let enhanced_bits = shannon_capacity_bits(2560, 0.02); // ≈ 2197/page
    let pthi_bits_per_page = 72_000.0 / f64::from(PAPER_PAGES_PER_BLOCK_S8); // 1125
    println!();
    println!(
        "# capacity: enhanced VT-HI {:.0} usable bits/page vs PT-HI {:.0} -> {:.1}x (paper: ~2x)",
        enhanced_bits,
        pthi_bits_per_page,
        enhanced_bits / pthi_bits_per_page
    );
    println!(
        "# default VT-HI capacity {:.1} usable bits/page (paper: 243.6)",
        shannon_capacity_bits(256, 0.005)
    );
    println!("# trace artifacts (VT-HI measured run): results/TRACE_table1.jsonl, results/TRACE_table1.folded");

    let mut device = MeterSnapshot::default();
    device.absorb(&vthi_total.encode);
    device.absorb(&vthi_total.decode);
    device.absorb(&pthi_total.encode);
    device.absorb(&pthi_total.decode);
    bench.record("samples_per_scheme", samples as f64);
    bench.record("hidden_pages", f64::from(vthi_total.pages));
    bench.record_snapshot(&device);
    bench.finish();
}
