//! Table 1 + §8: VT-HI vs PT-HI on reliability, performance, power, public
//! data integrity, repeated reads, wear, and capacity.
//!
//! Two methods, cross-checked:
//!  1. the paper's closed-form §8 arithmetic over operation counts and the
//!     §6.1 device latencies/energies, and
//!  2. metered measurements from actually running both schemes on the same
//!     simulated chip.
//!
//! Headline targets: 24× encode, 50× decode, 37× energy, 10-vs-625 wear,
//! ~2× capacity (enhanced configuration vs PT-HI).

use pthi::{PthiConfig, PthiHider};
use stash_bench::{
    experiment_key, f, fill_block_hiding_traced, header, raw_paper_config, rng, row,
    short_block_geometry, write_trace_artifacts,
};
use stash_flash::{BitPattern, BlockId, Chip, ChipProfile, PageId};
use stash_obs::Tracer;
use vthi::{shannon_capacity_bits, Hider, HidingThroughput, PAPER_PAGES_PER_BLOCK_S8};

fn main() {
    let timing = stash_flash::TimingModel::paper_vendor_a();

    // ---- method 1: the paper's closed-form model --------------------------
    let vthi_model = HidingThroughput::vthi_model(&timing, 10, PAPER_PAGES_PER_BLOCK_S8, 243.6);
    let pthi_model = HidingThroughput::pthi_model(&timing, PAPER_PAGES_PER_BLOCK_S8);

    // ---- method 2: metered execution on the simulator ---------------------
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    let pages = profile.geometry.pages_per_block;

    // VT-HI measured: hide across one block (interval 1 -> pages/2 hidden
    // pages), then decode it.
    let cfg = raw_paper_config(256, 1);
    let mut chip = Chip::new(profile.clone(), 71);
    let mut r = rng(42);
    chip.reset_meter();
    let tracer = Tracer::shared();
    chip.set_recorder(Some(tracer.clone()));
    let before = chip.meter();
    let (publics, reports) = fill_block_hiding_traced(
        &mut chip,
        BlockId(0),
        &key,
        &cfg,
        &mut r,
        false,
        Some(tracer.clone()),
    );
    let after_encode = chip.meter();
    // Subtract the public programming (the normal user pays it anyway).
    let programs = after_encode.count(stash_flash::OpKind::Program);
    let hidden_pages = reports.len() as u32;
    {
        let _decode = tracer.span("decode_block");
        let mut hider =
            Hider::new(&mut chip, key.clone(), cfg.clone()).with_tracer(Some(tracer.clone()));
        for (i, _rep) in reports.iter().enumerate() {
            let page = PageId::new(BlockId(0), i as u32 * cfg.page_stride());
            let _ = hider
                .read_hidden_bits(page, Some(&publics[(i as u32 * cfg.page_stride()) as usize]))
                .expect("decode");
        }
    }
    let after_decode = chip.meter();
    chip.set_recorder(None);
    write_trace_artifacts("table1", &tracer.report());

    let mut encode_meter = after_encode.since(&before);
    // Remove the public program ops from the hidden-encode account.
    let _ = programs;
    let decode_meter = after_decode.since(&after_encode);
    // Exclude program ops (public-data writes) from encode time/energy: the
    // §8 model charges VT-HI only the PP+read iterations.
    let program_us = encode_meter.count(stash_flash::OpKind::Program) as f64 * timing.program_us;
    let program_uj = encode_meter.count(stash_flash::OpKind::Program) as f64 * timing.program_uj;
    encode_meter.device_time_us -= program_us;
    encode_meter.energy_uj -= program_uj;

    let vthi_measured = HidingThroughput::from_meter(
        &encode_meter,
        &decode_meter,
        hidden_pages,
        shannon_capacity_bits(256, 0.005) / 1.0,
        false,
    );

    // PT-HI measured: encode + (destructive) decode per page over the same
    // number of pages.
    let mut chip2 = Chip::new(profile, 72);
    let pcfg = PthiConfig::paper_default(chip2.geometry());
    chip2.erase_block(BlockId(0)).expect("erase");
    chip2.reset_meter();
    let b0 = chip2.meter();
    {
        let mut ph = PthiHider::new(&mut chip2, key.clone(), pcfg.clone());
        for p in 0..pages {
            let bits: Vec<bool> =
                (0..pcfg.bits_per_page).map(|i| (i + p as usize) % 2 == 0).collect();
            ph.encode_page(PageId::new(BlockId(0), p), &bits).expect("encode");
        }
    }
    let b1 = chip2.meter();
    chip2.erase_block(BlockId(0)).expect("erase");
    {
        // Public data in between.
        let cpp = chip2.geometry().cells_per_page();
        for p in 0..pages {
            let data = BitPattern::random_half(&mut r, cpp);
            chip2.program_page(PageId::new(BlockId(0), p), &data).expect("program");
        }
    }
    let b2 = chip2.meter();
    {
        let mut ph = PthiHider::new(&mut chip2, key, pcfg.clone());
        for p in 0..pages {
            let _ = ph.decode_page(PageId::new(BlockId(0), p)).expect("decode");
        }
    }
    let b3 = chip2.meter();
    let pthi_measured = HidingThroughput::from_meter(
        &b1.since(&b0),
        &b3.since(&b2),
        pages,
        pcfg.bits_per_page as f64,
        true,
    );

    // ---- print -------------------------------------------------------------
    header("Table 1 / §8: VT-HI vs PT-HI", "model = paper closed-form; measured = simulator meter");
    row(["metric", "vthi_model", "pthi_model", "vthi_measured", "pthi_measured", "paper"]
        .map(String::from));
    row([
        "encode Kb/s".into(),
        f(vthi_model.encode_kbps(), 1),
        f(pthi_model.encode_kbps(), 2),
        f(vthi_measured.encode_kbps(), 1),
        f(pthi_measured.encode_kbps(), 2),
        "35 vs 1.4".into(),
    ]);
    row([
        "decode Kb/s".into(),
        f(vthi_model.decode_kbps(), 0),
        f(pthi_model.decode_kbps(), 0),
        f(vthi_measured.decode_kbps(), 0),
        f(pthi_measured.decode_kbps(), 0),
        "2700 vs 54".into(),
    ]);
    row([
        "encode mJ/page".into(),
        f(vthi_model.encode_mj_per_page, 2),
        f(pthi_model.encode_mj_per_page, 1),
        f(vthi_measured.encode_mj_per_page, 2),
        f(pthi_measured.encode_mj_per_page, 1),
        "1.1 vs 43".into(),
    ]);
    row([
        "wear ops/page".into(),
        f(vthi_model.wear_ops_per_page, 0),
        f(pthi_model.wear_ops_per_page, 0),
        f(vthi_measured.wear_ops_per_page, 1),
        f(pthi_measured.wear_ops_per_page, 0),
        "10 vs 625".into(),
    ]);
    row([
        "destructive decode".into(),
        "no".into(),
        "yes".into(),
        "no".into(),
        "yes".into(),
        "Table 1".into(),
    ]);

    let (enc, dec, energy) = vthi_model.speedup_over(&pthi_model);
    let (enc_m, dec_m, energy_m) = vthi_measured.speedup_over(&pthi_measured);
    println!();
    println!(
        "# headline ratios  (model):    encode {enc:.1}x, decode {dec:.1}x, energy {energy:.1}x"
    );
    println!("# headline ratios  (measured): encode {enc_m:.1}x, decode {dec_m:.1}x, energy {energy_m:.1}x");
    println!("# paper:                       encode 24x,   decode 50x,   energy 37x");

    // Capacity row (§8 Improved Capacity): enhanced VT-HI vs PT-HI.
    let enhanced_bits = shannon_capacity_bits(2560, 0.02); // ≈ 2197/page
    let pthi_bits_per_page = 72_000.0 / f64::from(PAPER_PAGES_PER_BLOCK_S8); // 1125
    println!();
    println!(
        "# capacity: enhanced VT-HI {:.0} usable bits/page vs PT-HI {:.0} -> {:.1}x (paper: ~2x)",
        enhanced_bits,
        pthi_bits_per_page,
        enhanced_bits / pthi_bits_per_page
    );
    println!(
        "# default VT-HI capacity {:.1} usable bits/page (paper: 243.6)",
        shannon_capacity_bits(256, 0.005)
    );
    println!("# trace artifacts (VT-HI measured run): results/TRACE_table1.jsonl, results/TRACE_table1.folded");
}
