//! Ablation (DESIGN.md §5.2): where should `Vth` sit?
//!
//! Lower thresholds buy capacity (more natural cells above them ⇒ a larger
//! §6.3 stealth budget) but raise the hidden-`1` collision rate (natural
//! cells above the threshold read as `0`). Higher thresholds shrink both.
//! The paper picked 34 empirically; this harness shows the whole trade-off.

use stash_bench::{
    experiment_key, f, fill_block, fill_block_hiding, header, measure_hidden_ber, raw_paper_config,
    rng, row, short_block_geometry, BenchMeter,
};
use stash_flash::{BitErrorStats, BlockId, Chip, ChipProfile, Histogram, PageId};
use std::fmt::Write as _;

const BLOCKS: u32 = 3;
const VTHS: [u8; 6] = [20, 27, 34, 42, 50, 60];

fn main() {
    let mut meter = BenchMeter::start("ablation_vth");
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();

    header(
        "Ablation: hidden threshold Vth — capacity vs reliability",
        &format!("{BLOCKS} blocks per point; 256 hidden bits/page; 18048-byte pages"),
    );
    row(["vth", "natural_above_pct", "stealth_budget_bits_per_page", "hidden_ber_at_10_steps"]
        .map(String::from));

    let mut r = rng(340);

    // One fixed natural baseline: probe erased cells of plain blocks once,
    // then read every threshold's occupancy off the same histogram (so the
    // capacity column is monotone by construction).
    let mut natural = Histogram::new();
    {
        let mut chip = Chip::new(profile.clone(), 4000);
        let mut levels = Vec::new();
        for b in 0..BLOCKS {
            let publics = fill_block(&mut chip, BlockId(b), &mut r);
            for (p, public) in publics.iter().enumerate() {
                chip.probe_voltages_into(PageId::new(BlockId(b), p as u32), &mut levels)
                    .expect("probe");
                for (i, &l) in levels.iter().enumerate() {
                    if public.get(i) {
                        natural.add_levels(&[l]);
                    }
                }
            }
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
    }

    let mut json_rows = String::new();
    for &vth in &VTHS {
        let mut cfg = raw_paper_config(256, 1);
        cfg.vth = vth;

        let mut chip = Chip::new(profile.clone(), 4000 + u64::from(vth));
        let mut total = BitErrorStats::default();
        for b in 0..BLOCKS {
            let (_publics, reports) =
                fill_block_hiding(&mut chip, BlockId(b), &key, &cfg, &mut r, false);
            total.absorb(measure_hidden_ber(&mut chip, &key, &cfg, &reports));
            chip.discard_block_state(BlockId(b)).expect("discard");
        }
        let above = natural.fraction_at_or_above(vth);
        // §6.3 budget: ~73% of the natural population, in cells ⇒ ×2 bits.
        let erased_per_page = 144_384 / 2;
        let budget = (above * erased_per_page as f64 * 0.73 * 2.0) as usize;
        row([vth.to_string(), f(above * 100.0, 3), budget.to_string(), f(total.ber(), 5)]);
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let _ = write!(
            json_rows,
            "      {{\"vth\":{vth},\"natural_above_pct\":{},\"stealth_budget_bits\":{budget},\
             \"hidden_ber\":{}}}",
            f(above * 100.0, 3),
            f(total.ber(), 5),
        );
    }
    meter.record_json("vth_tradeoff", &format!("[\n{json_rows}\n    ]"));
    meter.finish();
    println!();
    println!("# the paper's Vth=34 sits where the natural population still covers the");
    println!("# 256-bit default (budget >= hidden bits) while the hidden-'1' collision");
    println!("# floor stays under ~1%");
}
