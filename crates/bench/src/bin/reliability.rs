//! §8 "Reliability" (wear sweep): hidden-data BER is low and essentially
//! flat across block wear — the paper reports 0.013 at PEC 0 and roughly
//! 0.011 at higher wear, letting users hide data even in well-worn cells
//! (unlike PT-HI, whose channel collapses after a few hundred PEC — shown
//! here side by side).

use pthi::{PthiConfig, PthiHider};
use stash_bench::{
    experiment_key, f, fill_block_hiding, header, measure_hidden_ber, raw_paper_config, rng, row,
    short_block_geometry, BenchMeter,
};
use stash_flash::{BitErrorStats, BlockId, Chip, ChipProfile, PageId};
use std::fmt::Write as _;

const BLOCKS: u32 = 4;
const PECS: [u32; 4] = [0, 1000, 2000, 3000];

fn main() {
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();
    let cfg = raw_paper_config(256, 1);
    let mut r = rng(80);

    header(
        "§8 Reliability: hidden BER vs wear — VT-HI stays flat, PT-HI collapses",
        &format!("{BLOCKS} blocks per point; raw (pre-ECC) BER"),
    );
    row(["pec", "vthi_ber", "pthi_ber"].map(String::from));

    let mut meter = BenchMeter::start("reliability");
    let mut json_rows = String::new();
    for (i, &pec) in PECS.iter().enumerate() {
        // VT-HI.
        let mut chip = Chip::new(profile.clone(), 700 + i as u64);
        let mut vthi_total = BitErrorStats::default();
        for b in 0..BLOCKS {
            chip.cycle_block(BlockId(b), pec).expect("cycle");
            let (_p, reports) = fill_block_hiding(&mut chip, BlockId(b), &key, &cfg, &mut r, false);
            vthi_total.absorb(measure_hidden_ber(&mut chip, &key, &cfg, &reports));
            chip.discard_block_state(BlockId(b)).expect("discard");
        }

        // PT-HI: encode fresh, then cycle to the target wear, then decode.
        let mut chip2 = Chip::new(profile.clone(), 800 + i as u64);
        let pcfg = PthiConfig::paper_default(chip2.geometry());
        let mut errs = 0u64;
        let mut bits_total = 0u64;
        {
            let block = BlockId(0);
            chip2.erase_block(block).expect("erase");
            let pages = chip2.geometry().pages_per_block;
            let truth: Vec<Vec<bool>> = (0..pages)
                .map(|p| (0..pcfg.bits_per_page).map(|i| (i * 31 + p as usize) % 2 == 0).collect())
                .collect();
            let mut ph = PthiHider::new(&mut chip2, key.clone(), pcfg.clone());
            for p in 0..pages {
                ph.encode_page(PageId::new(block, p), &truth[p as usize]).expect("encode");
            }
            ph.chip_mut().cycle_block(block, pec).expect("cycle");
            for p in 0..pages {
                let got = ph.decode_page(PageId::new(block, p)).expect("decode");
                errs += got.iter().zip(&truth[p as usize]).filter(|(a, b)| a != b).count() as u64;
                bits_total += got.len() as u64;
            }
        }
        let pthi_ber = errs as f64 / bits_total as f64;

        row([pec.to_string(), f(vthi_total.ber(), 4), f(pthi_ber, 4)]);
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let _ = write!(
            json_rows,
            "      {{\"pec\":{pec},\"vthi_ber\":{},\"pthi_ber\":{}}}",
            f(vthi_total.ber(), 4),
            f(pthi_ber, 4),
        );
    }
    meter.record_json("wear_sweep", &format!("[\n{json_rows}\n    ]"));
    meter.finish();
    println!();
    println!("# paper: VT-HI 0.013 at PEC 0, ~0.011 at other PEC (flat);");
    println!("# PT-HI 'error rate significantly increases after only a few hundred PEC'");
}
