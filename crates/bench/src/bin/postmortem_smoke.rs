//! Postmortem smoke: crash a golden run mid-pulse and validate the flight
//! recorder's black-box dump.
//!
//! The run drives the canonical observed stack
//! (`PowerCutDevice<FlightDevice<TraceDevice<Chip>>>`) through a
//! deterministic erase/program/read workload with a power cut scheduled
//! mid-way through a page program. The binary asserts that the power loss
//! auto-dumped a `stash-postmortem/1` artifact, that the artifact's final
//! captured op is the torn program at the cut position with live span
//! context, and that a second identical run reproduces the artifact
//! byte-for-byte. `just postmortem-smoke` runs it in CI; `bench_check`
//! then re-validates the emitted artifacts.

use rand::{rngs::SmallRng, SeedableRng};
use stash_bench::{header, BenchMeter};
use stash_flash::{
    BitPattern, BlockId, Chip, ChipProfile, FlightDevice, NandDevice, PageId, PowerCut,
    PowerCutDevice, TraceDevice,
};
use stash_obs::json::{self, JsonValue};
use stash_obs::{FlightRecorder, Tracer, POSTMORTEM_SCHEMA};
use std::sync::Arc;

const SEED: u64 = 0xD0D0;
/// Op index of the cut: op 0 is the erase, ops 1.. are page programs, so
/// op 5 tears the fifth program mid-pulse.
const CUT_AT: u64 = 5;

/// One full crash run; returns the dumped artifact's bytes plus the
/// recorder's captured/total counters.
fn crash_run() -> (String, usize, u64) {
    let recorder = FlightRecorder::shared();
    recorder.set_dump_dir("results");
    recorder.set_label("smoke");
    let tracer = Tracer::shared();
    recorder.set_tracer(Some(Arc::clone(&tracer)));

    let mut dev = PowerCutDevice::with_cuts(
        FlightDevice::new(TraceDevice::new(Chip::new(ChipProfile::vendor_a_scaled(), SEED))),
        vec![PowerCut { at_op: CUT_AT, fraction: 0.5 }],
    );
    dev.install_recorder(Some(tracer.clone()));
    dev.install_flight_sink(Some(recorder.clone()));

    let cpp = dev.geometry().cells_per_page();
    let mut rng = SmallRng::seed_from_u64(SEED);
    {
        let _s = tracer.span("setup");
        dev.erase_block(BlockId(0)).expect("erase");
    }
    {
        let _s = tracer.span("host_write");
        for p in 0..8u32 {
            let data = BitPattern::random_half(&mut rng, cpp);
            if dev.program_page(PageId::new(BlockId(0), p), &data).is_err() {
                break; // the cut landed
            }
        }
    }
    assert!(dev.is_off(), "the scheduled cut never fired");

    let artifact = recorder.last_dump().expect("power loss must auto-dump");
    let raw = std::fs::read_to_string(&artifact).expect("read postmortem artifact");
    (raw, recorder.len(), recorder.seq())
}

fn main() {
    let mut meter = BenchMeter::start("postmortem_smoke");
    header(
        "Postmortem smoke: mid-pulse power cut through the flight recorder",
        &format!("cut at op {CUT_AT} (a page program, fraction 0.5), seed {SEED:#x}"),
    );

    let (raw, captured, total_ops) = crash_run();

    // The artifact is a valid stash-postmortem/1 document whose header
    // matches the recorder and whose final entry is the torn program.
    let mut lines = raw.lines();
    let head = json::parse(lines.next().expect("header line")).expect("header parses");
    assert_eq!(head.get("schema").and_then(JsonValue::as_str), Some(POSTMORTEM_SCHEMA));
    assert_eq!(head.get("type").and_then(JsonValue::as_str), Some("postmortem_summary"));
    assert_eq!(head.get("trigger").and_then(JsonValue::as_str), Some("power-loss"));
    assert_eq!(head.get("captured").and_then(JsonValue::as_f64), Some(captured as f64));
    assert_eq!(head.get("faults").and_then(JsonValue::as_f64), Some(1.0));
    let entries: Vec<JsonValue> = lines.map(|l| json::parse(l).expect("entry parses")).collect();
    assert_eq!(entries.len(), captured, "header captured count matches entry lines");
    let last = entries.last().expect("at least one entry");
    assert_eq!(last.get("torn").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(last.get("op").and_then(JsonValue::as_str), Some("program"));
    assert_eq!(last.get("seq").and_then(JsonValue::as_f64), Some(CUT_AT as f64));
    let span = last.get("span").and_then(JsonValue::as_str).unwrap_or("");
    assert!(span.contains("host_write"), "torn op lost its span context: {span:?}");

    // A second identical run reproduces the artifact byte-for-byte.
    let (raw2, captured2, total2) = crash_run();
    assert_eq!(raw, raw2, "postmortem artifact is not reproducible");
    assert_eq!((captured, total_ops), (captured2, total2));

    println!("captured\t{captured}");
    println!("total_ops\t{total_ops}");
    println!("artifact_bytes\t{}", raw.len());
    meter.record("captured", captured as f64);
    meter.record("total_ops", total_ops as f64);
    meter.record("artifact_bytes", raw.len() as f64);
    meter.record("cut_at", CUT_AT as f64);
    meter.finish();
    println!("# OK: postmortem artifact valid and reproducible");
}
