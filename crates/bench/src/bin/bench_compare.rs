//! The CI regression gate over bench artifacts.
//!
//! ```text
//! bench_compare <BASELINE.json> <BENCH_*.json>...        # gate mode
//! bench_compare --write-baseline <out> <BENCH_*.json>... # collect mode
//! ```
//!
//! Gate mode flattens each artifact's `"deterministic"` block and compares
//! it against the committed baseline with per-metric relative tolerance
//! bands (see `stash_bench::compare`); any violation exits non-zero so
//! `just ci` fails on perf/robustness regressions. Collect mode rebuilds
//! the baseline from fresh artifacts (`just baseline`).
//!
//! On any tolerance breach the gate also *attributes* the regression when
//! traces exist: with `STASH_TRACE_BASELINE` pointing at a directory of
//! baseline `TRACE_<name>.jsonl` files, the bench's current trace (next to
//! its artifact) is diffed per span name and the top grown spans are
//! printed; without a baseline trace, the current trace's top spans are
//! printed instead.

use stash_bench::compare::{
    bench_metrics, compare_bench, deterministic_block, parse_baseline, write_baseline,
};
use stash_obs::analyze;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--write-baseline") {
        let [_, out_path, artifacts @ ..] = &args[..] else {
            return Err("usage: bench_compare --write-baseline <out> <BENCH_*.json>...".into());
        };
        if artifacts.is_empty() {
            return Err("no artifacts to collect".into());
        }
        let mut benches = BTreeMap::new();
        for path in artifacts {
            let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: read: {e}"))?;
            let (name, _) = bench_metrics(&raw).map_err(|e| format!("{path}: {e}"))?;
            let det = deterministic_block(&raw).map_err(|e| format!("{path}: {e}"))?;
            if benches.insert(name.clone(), det).is_some() {
                return Err(format!("bench {name:?} appears twice in the artifact list"));
            }
            println!("collected {name}");
        }
        std::fs::write(out_path, write_baseline(&benches))
            .map_err(|e| format!("{out_path}: write: {e}"))?;
        println!("wrote {} benches to {out_path}", benches.len());
        return Ok(true);
    }

    let [baseline_path, artifacts @ ..] = &args[..] else {
        return Err("usage: bench_compare <BASELINE.json> <BENCH_*.json>...".into());
    };
    if artifacts.is_empty() {
        return Err("no artifacts to compare".into());
    }
    let baseline_raw = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("{baseline_path}: read: {e}"))?;
    let baseline = parse_baseline(&baseline_raw).map_err(|e| format!("{baseline_path}: {e}"))?;

    let mut clean = true;
    for path in artifacts {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: read: {e}"))?;
        let (name, flat) = bench_metrics(&raw).map_err(|e| format!("{path}: {e}"))?;
        let violations = compare_bench(&baseline, &name, &flat);
        if violations.is_empty() {
            println!("ok {name} ({} metrics within tolerance)", flat.len());
        } else {
            clean = false;
            for v in &violations {
                eprintln!("REGRESSION {v}");
            }
            eprintln!("FAIL {name}: {} metric(s) out of band", violations.len());
            print_trace_attribution(&name, path);
        }
    }
    Ok(clean)
}

/// Best-effort span attribution for a failed bench; quiet when no trace
/// artifact exists next to the bench artifact.
fn print_trace_attribution(name: &str, artifact_path: &str) {
    let dir = Path::new(artifact_path).parent().unwrap_or_else(|| Path::new("."));
    let current = dir.join(format!("TRACE_{name}.jsonl"));
    let Ok(cur_text) = std::fs::read_to_string(&current) else { return };
    let cur = match analyze::parse_trace(&cur_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace attribution for {name}: unreadable trace: {e}");
            return;
        }
    };
    let base_path = std::env::var_os("STASH_TRACE_BASELINE")
        .map(|d| PathBuf::from(d).join(format!("TRACE_{name}.jsonl")));
    if let Some(base_path) = base_path {
        if let Ok(base_text) = std::fs::read_to_string(&base_path) {
            if let Ok(old) = analyze::parse_trace(&base_text) {
                eprintln!("trace attribution for {name} (vs {}):", base_path.display());
                eprint!("{}", analyze::render_diff(&analyze::diff(&old, &cur), 5));
                return;
            }
        }
    }
    eprintln!("trace attribution for {name} (no baseline trace; top spans):");
    for (span, s) in analyze::top_spans(&cur, 5) {
        eprintln!("  {span}: {:.1} us, {} ops", s.device_us, s.ops);
    }
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        }
    }
}
