//! Figure 10: SVM classification accuracy for block-level voltage
//! distributions — hidden blocks at PEC {0, 1000, 2000} against normal
//! blocks across the full wear range (paper §7).
//!
//! Expected shape: ≈50% (coin flip) wherever the hidden and normal PEC are
//! within a few hundred cycles of each other, rising toward 90–100% as the
//! wear mismatch grows — i.e. the SVM detects *wear*, never *hiding*.
//!
//! Runtime: a few minutes at the paper's 31 blocks per class; set
//! `STASH_BLOCKS=10` for a quick pass.

use stash_bench::detect::{blocks_per_class, prepare_features, train_two_test_one};
use stash_bench::{experiment_key, f, header, row, BenchMeter};
use stash_flash::ChipProfile;
use std::collections::HashMap;
use vthi::{EccChoice, VthiConfig};

const HIDDEN_PECS: [u32; 3] = [0, 1000, 2000];
const NORMAL_PECS: [u32; 7] = [0, 500, 1000, 1500, 2000, 2500, 3000];
const CHIP_SEEDS: [u64; 3] = [11, 22, 33];

/// Per-(pec, class, chip) fill-RNG base seed; `prepare_features` adds the
/// block index, so the 100-wide chip spacing keeps streams disjoint for any
/// block count ≤ 100.
fn feature_seed(pec: u32, hidden: bool, chip_idx: usize) -> u64 {
    10_000_000 + u64::from(pec) * 10_000 + u64::from(hidden) * 1_000 + chip_idx as u64 * 100
}

fn main() {
    let mut bench = BenchMeter::start("fig10");
    let profile = ChipProfile::vendor_a_scaled();
    let key = experiment_key();
    let mut cfg = VthiConfig::scaled_for(&profile.geometry);
    cfg.ecc = EccChoice::None;
    let blocks = blocks_per_class();

    header(
        "Figure 10: SVM accuracy vs normal PEC, per hidden-data PEC",
        &format!(
            "{blocks} blocks/class/chip, 3 chips (train 2, test 1), grid search + 3-fold CV; \
             scaled geometry, {} hidden bits/page",
            cfg.hidden_bits_per_page
        ),
    );

    // Feature cache: (pec, hidden?) -> per-chip feature sets. Dataset
    // assembly fans out across blocks inside prepare_features.
    let mut cache: HashMap<(u32, bool), [Vec<Vec<f64>>; 3]> = HashMap::new();
    let mut features = |pec: u32, hidden: bool| -> [Vec<Vec<f64>>; 3] {
        cache
            .entry((pec, hidden))
            .or_insert_with(|| {
                let mk = |chip_idx: usize| {
                    prepare_features(
                        &profile,
                        CHIP_SEEDS[chip_idx],
                        pec,
                        hidden.then_some((&key, &cfg)),
                        blocks,
                        feature_seed(pec, hidden, chip_idx),
                    )
                };
                [mk(0), mk(1), mk(2)]
            })
            .clone()
    };

    let mut head = vec!["normal_pec".to_owned()];
    head.extend(HIDDEN_PECS.iter().map(|p| format!("hidden_pec_{p}")));
    row(head);

    for &normal_pec in &NORMAL_PECS {
        let normal = features(normal_pec, false);
        let mut cells = vec![normal_pec.to_string()];
        for &hidden_pec in &HIDDEN_PECS {
            let hidden = features(hidden_pec, true);
            let (acc, _cv) = train_two_test_one(&normal, &hidden);
            cells.push(f(acc * 100.0, 1));
        }
        row(cells);
    }

    println!();
    println!("# paper: ~50% at matched PEC; accuracy rises with |normal - hidden| wear gap");

    bench.record("blocks_per_class", f64::from(blocks));
    bench.record("grid_points", (NORMAL_PECS.len() * HIDDEN_PECS.len()) as f64);
    bench.finish();
}
