//! Figure 6: hidden-data BER after each partial-program step, for every
//! combination of page interval ∈ {0, 1, 2, 4} and hidden bits per page
//! ∈ {32, 128, 512}, averaged over 5 blocks per combination (paper §6.3).
//!
//! Expected shape: BER starts high (~0.2) after one step and converges
//! below 1% within ~10 steps, for every combination.
//!
//! Output: TSV with one column per `interval+bits` combination, one row per
//! PP step.

use stash_bench::{
    experiment_key, f, fill_block_hiding_traced, header, raw_paper_config, rng, row,
    short_block_geometry, write_trace_artifacts,
};
use stash_flash::{BitErrorStats, BlockId, Chip, ChipProfile};
use stash_obs::Tracer;

const STEPS: u8 = 15;
const BLOCKS: u32 = 5;
const INTERVALS: [u32; 4] = [0, 1, 2, 4];
const BITS: [usize; 3] = [32, 128, 512];

fn main() {
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();

    header(
        "Figure 6: hidden BER vs partial-program steps",
        &format!(
            "combinations: intervals {INTERVALS:?} x hidden bits {BITS:?}; \
             {BLOCKS} blocks each; 18048-byte pages"
        ),
    );

    // series[combo][step] accumulated across blocks.
    let mut labels = Vec::new();
    let mut series: Vec<Vec<BitErrorStats>> = Vec::new();
    let mut r = rng(6);
    // One tracer across the whole sweep: the flamegraph shows how encode
    // time splits between PP iterations and verify reads per combination.
    let tracer = Tracer::shared();

    for &interval in &INTERVALS {
        for &bits in &BITS {
            let mut cfg = raw_paper_config(bits, interval);
            cfg.max_pp_steps = STEPS;
            labels.push(format!("{interval}+{bits}"));
            let mut acc = vec![BitErrorStats::default(); STEPS as usize];

            let mut chip = Chip::new(profile.clone(), 1000 + interval as u64 * 10 + bits as u64);
            chip.set_recorder(Some(tracer.clone()));
            let _combo = tracer.span_labeled("combo", format!("interval={interval} bits={bits}"));
            for b in 0..BLOCKS {
                let (_publics, reports) = fill_block_hiding_traced(
                    &mut chip,
                    BlockId(b),
                    &key,
                    &cfg,
                    &mut r,
                    true,
                    Some(tracer.clone()),
                );
                for rep in &reports {
                    for (s, ber) in rep.step_ber.iter().enumerate() {
                        acc[s.min(STEPS as usize - 1)].absorb(*ber);
                    }
                    // Pages that converged early keep their final BER for
                    // the remaining steps (the paper plots flat tails).
                    if let Some(last) = rep.step_ber.last() {
                        for a in acc.iter_mut().take(STEPS as usize).skip(rep.step_ber.len()) {
                            a.absorb(*last);
                        }
                    }
                }
                chip.discard_block_state(BlockId(b)).expect("discard");
            }
            series.push(acc);
        }
    }

    let mut head = vec!["pp_step".to_owned()];
    head.extend(labels.iter().cloned());
    row(head);
    for s in 0..STEPS as usize {
        let mut cells = vec![(s + 1).to_string()];
        cells.extend(series.iter().map(|acc| f(acc[s].ber(), 5)));
        row(cells);
    }

    println!();
    println!("# paper: BER converges to <1% after ~10 steps for all combinations");
    let converged = series.iter().filter(|acc| acc[9].ber() < 0.01).count();
    println!("# measured: {}/{} combinations below 1% at step 10", converged, series.len());
    write_trace_artifacts("fig6", &tracer.report());
    println!("# trace artifacts: results/TRACE_fig6.jsonl, results/TRACE_fig6.folded");
}
