//! Figure 6: hidden-data BER after each partial-program step, for every
//! combination of page interval ∈ {0, 1, 2, 4} and hidden bits per page
//! ∈ {32, 128, 512}, averaged over 5 blocks per combination (paper §6.3).
//!
//! Expected shape: BER starts high (~0.2) after one step and converges
//! below 1% within ~10 steps, for every combination.
//!
//! Each combination is an independent work item on the `stash-par` pool:
//! its chip seed and RNG derive from the (interval, bits) pair, so the TSV
//! is byte-identical for any `STASH_THREADS`. Combination 0 carries the
//! tracer (a shared tracer across parallel combos would interleave
//! nondeterministically).
//!
//! Output: TSV with one column per `interval+bits` combination, one row per
//! PP step.

use stash_bench::{
    experiment_key, f, fill_block_hiding_traced, header, raw_paper_config, rng, row,
    short_block_geometry, write_trace_artifacts, BenchMeter,
};
use stash_flash::{
    BitErrorStats, BlockId, Chip, ChipProfile, MeterSnapshot, NandDevice, TraceDevice,
};
use stash_obs::Tracer;

const STEPS: u8 = 15;
const BLOCKS: u32 = 5;
const INTERVALS: [u32; 4] = [0, 1, 2, 4];
const BITS: [usize; 3] = [32, 128, 512];

fn main() {
    let mut bench = BenchMeter::start("fig6");
    let key = experiment_key();
    let mut profile = ChipProfile::vendor_a();
    profile.geometry = short_block_geometry();

    header(
        "Figure 6: hidden BER vs partial-program steps",
        &format!(
            "combinations: intervals {INTERVALS:?} x hidden bits {BITS:?}; \
             {BLOCKS} blocks each; 18048-byte pages"
        ),
    );

    let combos: Vec<(u32, usize)> =
        INTERVALS.iter().flat_map(|&i| BITS.iter().map(move |&b| (i, b))).collect();

    // One pool item per combination; the tracer rides on combination 0 and
    // its flamegraph shows how encode time splits between PP iterations and
    // verify reads.
    let results = stash_par::par_map(combos, |ci, (interval, bits)| {
        let mut cfg = raw_paper_config(bits, interval);
        cfg.max_pp_steps = STEPS;
        let mut acc = vec![BitErrorStats::default(); STEPS as usize];
        let mut r = rng(6000 + u64::from(interval) * 10 + bits as u64);
        let tracer = (ci == 0).then(Tracer::shared);

        let mut chip = TraceDevice::new(Chip::new(
            profile.clone(),
            1000 + u64::from(interval) * 10 + bits as u64,
        ));
        chip.set_recorder(tracer.clone().map(|t| t as stash_flash::SharedRecorder));
        {
            let _combo = tracer
                .as_ref()
                .map(|t| t.span_labeled("combo", format!("interval={interval} bits={bits}")));
            for b in 0..BLOCKS {
                let (_publics, reports) = fill_block_hiding_traced(
                    &mut chip,
                    BlockId(b),
                    &key,
                    &cfg,
                    &mut r,
                    true,
                    tracer.clone(),
                );
                for rep in &reports {
                    for (s, ber) in rep.step_ber.iter().enumerate() {
                        acc[s.min(STEPS as usize - 1)].absorb(*ber);
                    }
                    // Pages that converged early keep their final BER for
                    // the remaining steps (the paper plots flat tails).
                    if let Some(last) = rep.step_ber.last() {
                        for a in acc.iter_mut().take(STEPS as usize).skip(rep.step_ber.len()) {
                            a.absorb(*last);
                        }
                    }
                }
                chip.discard_block_state(BlockId(b)).expect("discard");
            }
        }
        chip.set_recorder(None);
        if let Some(tracer) = tracer {
            write_trace_artifacts("fig6", &tracer.report());
        }
        (format!("{interval}+{bits}"), acc, chip.meter())
    });

    let mut head = vec!["pp_step".to_owned()];
    head.extend(results.iter().map(|(label, _, _)| label.clone()));
    row(head);
    for s in 0..STEPS as usize {
        let mut cells = vec![(s + 1).to_string()];
        cells.extend(results.iter().map(|(_, acc, _)| f(acc[s].ber(), 5)));
        row(cells);
    }

    println!();
    println!("# paper: BER converges to <1% after ~10 steps for all combinations");
    let converged = results.iter().filter(|(_, acc, _)| acc[9].ber() < 0.01).count();
    println!("# measured: {}/{} combinations below 1% at step 10", converged, results.len());
    println!(
        "# trace artifacts (combination 0): results/TRACE_fig6.jsonl, results/TRACE_fig6.folded"
    );

    let mut device = MeterSnapshot::default();
    for (_, _, meter) in &results {
        device.absorb(meter);
    }
    bench.record("combinations", results.len() as f64);
    bench.record("converged_at_step10", converged as f64);
    bench.record_snapshot(&device);
    bench.finish();
}
