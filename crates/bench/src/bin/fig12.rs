//! Figure 12: SVM accuracy against the *enhanced* VT-HI configuration
//! (§8 "Improved Capacity"): vendor-support fine programming, a single PP
//! step, threshold level 15, and as many hidden bits as the §6.3 capacity
//! planner admits at that threshold.
//!
//! Calibration note: the paper hides 10× the default density at `Vth = 15`,
//! which requires the natural above-15 population of their chips (≈5% of
//! erased cells per page). This simulator's calibrated tail is thinner at
//! low thresholds, so the §6.3 planner (stay under ~73% of the natural
//! population) admits a smaller multiplier; the harness measures the budget
//! per chip and hides exactly that. The detectability *mechanism* is
//! unchanged: accuracy slightly above Fig. 10 in the matched-wear band,
//! dominated by the wear gap everywhere else. The paper's 9×-capacity
//! arithmetic itself (2% BER → 14% ECC → 2197 bits/page) is reproduced
//! analytically by `table1`.

use stash_bench::detect::{blocks_per_class, prepare_features, train_two_test_one};
use stash_bench::{experiment_key, f, fill_block, header, rng, row, BenchMeter};
use stash_flash::{BlockId, Chip, ChipProfile, PageId};
use std::collections::HashMap;
use vthi::capacity::PageCapacity;
use vthi::{EccChoice, VthiConfig};

const HIDDEN_PECS: [u32; 3] = [0, 1000, 2000];
const NORMAL_PECS: [u32; 7] = [0, 500, 1000, 1500, 2000, 2500, 3000];
const CHIP_SEEDS: [u64; 3] = [44, 55, 66];
const VTH_ENHANCED: u8 = 15;

/// Measures the per-page hidden-bit budget at Vth=15 the way a hiding user
/// would (§6.3): probe sample pages, count the natural above-threshold
/// population, stay under the occupancy budget.
fn planner_budget(profile: &ChipProfile) -> usize {
    let mut chip = Chip::new(profile.clone(), 999);
    let mut r = rng(991);
    let publics = fill_block(&mut chip, BlockId(0), &mut r);
    let mut budget = usize::MAX;
    for p in [4u32, 12, 20] {
        let cap = PageCapacity::assess(
            &mut chip,
            PageId::new(BlockId(0), p),
            &publics[p as usize],
            VTH_ENHANCED,
        )
        .expect("assess");
        budget = budget.min(cap.recommended_max_bits);
    }
    // Hidden '0's are what add charge; with scrambled payloads half the
    // bits charge cells, so the bit budget is twice the cell budget.
    (budget * 2).max(32)
}

/// Per-(pec, class, chip) fill-RNG base seed (offset from fig10's block so
/// the two figures never share fill streams); `prepare_features` adds the
/// block index within the 100-wide chip slot.
fn feature_seed(pec: u32, hidden: bool, chip_idx: usize) -> u64 {
    12_000_000 + u64::from(pec) * 10_000 + u64::from(hidden) * 1_000 + chip_idx as u64 * 100
}

fn main() {
    let mut bench = BenchMeter::start("fig12");
    let profile = ChipProfile::vendor_a_scaled();
    let key = experiment_key();
    let base = VthiConfig::scaled_for(&profile.geometry);

    let budget = planner_budget(&profile);
    let mut cfg = base.clone();
    cfg.hidden_bits_per_page = budget;
    cfg.vth = VTH_ENHANCED;
    cfg.max_pp_steps = 1;
    cfg.use_fine_pp = true;
    cfg.ecc = EccChoice::None;
    let blocks = blocks_per_class();

    header(
        "Figure 12: SVM accuracy vs the enhanced (high-capacity) configuration",
        &format!(
            "{blocks} blocks/class/chip; Vth={VTH_ENHANCED}, fine PP, {} hidden bits/page \
             ({}x the default; planner-limited — see header note)",
            cfg.hidden_bits_per_page,
            cfg.hidden_bits_per_page / base.hidden_bits_per_page
        ),
    );

    let mut cache: HashMap<(u32, bool), [Vec<Vec<f64>>; 3]> = HashMap::new();
    let mut features = |pec: u32, hidden: bool| -> [Vec<Vec<f64>>; 3] {
        cache
            .entry((pec, hidden))
            .or_insert_with(|| {
                let mk = |chip_idx: usize| {
                    prepare_features(
                        &profile,
                        CHIP_SEEDS[chip_idx],
                        pec,
                        hidden.then_some((&key, &cfg)),
                        blocks,
                        feature_seed(pec, hidden, chip_idx),
                    )
                };
                [mk(0), mk(1), mk(2)]
            })
            .clone()
    };

    let mut head = vec!["normal_pec".to_owned()];
    head.extend(HIDDEN_PECS.iter().map(|p| format!("hidden_pec_{p}")));
    row(head);

    for &normal_pec in &NORMAL_PECS {
        let normal = features(normal_pec, false);
        let mut cells = vec![normal_pec.to_string()];
        for &hidden_pec in &HIDDEN_PECS {
            let hidden = features(hidden_pec, true);
            let (acc, _cv) = train_two_test_one(&normal, &hidden);
            cells.push(f(acc * 100.0, 1));
        }
        row(cells);
    }

    println!();
    println!("# paper: matched-wear accuracy 50-60% (slightly above Fig. 10's 50-53%),");
    println!("# still dominated by the wear gap rather than the hidden data");

    // Part B: where is the stealth/capacity frontier in THIS simulator?
    // Matched wear (PEC 1000 vs 1000), density multipliers over the scaled
    // default, fine PP at Vth 15 — the adversary's accuracy per density.
    println!();
    header(
        "Part B: matched-wear detectability vs hidden density (Vth=15, fine PP)",
        "multiplier is over the scaled default density (0.18% of cells)",
    );
    row(["multiplier", "hidden_bits_per_page", "svm_accuracy_pct"].map(String::from));
    let normal = features(1000, false);
    for mult in [1usize, 2, 4] {
        let mut dcfg = base.clone();
        dcfg.hidden_bits_per_page = base.hidden_bits_per_page * mult;
        dcfg.vth = VTH_ENHANCED;
        dcfg.max_pp_steps = 1;
        dcfg.use_fine_pp = true;
        dcfg.ecc = EccChoice::None;
        let mk = |chip_idx: usize| {
            prepare_features(
                &profile,
                CHIP_SEEDS[chip_idx],
                1000,
                Some((&key, &dcfg)),
                blocks,
                5_000_000 + mult as u64 * 1_000 + chip_idx as u64 * 100,
            )
        };
        let hidden = [mk(0), mk(1), mk(2)];
        let (acc, _) = train_two_test_one(&normal, &hidden);
        row([format!("{mult}x"), dcfg.hidden_bits_per_page.to_string(), f(acc * 100.0, 1)]);
    }
    println!();
    println!("# simulator-vs-silicon note: our calibrated natural variability at low");
    println!("# thresholds is thinner than the paper's chips exhibited, so high-capacity");
    println!("# hiding is easier to detect here; at the default density the Vth=15 path");
    println!("# approaches the Fig. 10 coin-flip regime.");

    bench.record("blocks_per_class", f64::from(blocks));
    bench.record("planner_budget_bits", budget as f64);
    bench.finish();
}
