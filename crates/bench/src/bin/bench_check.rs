//! CI smoke checker for bench artifacts. Each argument is validated by
//! filename:
//!
//! * `BENCH_*.json` — must parse with the in-tree JSON parser and carry
//!   the `stash-bench/1` schema (`schema`, `bench`, `threads`, a `wall`
//!   object with a non-negative `ms`, and a `deterministic` object).
//! * `TRACE_*.jsonl` — every line must parse; the `trace_summary` header
//!   must carry the `stash-trace/1` schema.
//! * `HISTORY.jsonl` — every run record must parse and carry the
//!   `stash-history/1` schema plus the same shape as a bench artifact:
//!   a non-empty `bench` string, a positive `threads` count, a `wall`
//!   object with a non-negative `ms`, and a `deterministic` object.
//!
//! Exits non-zero on any failure.

use stash_bench::{BENCH_SCHEMA, HISTORY_SCHEMA};
use stash_obs::export::TRACE_SCHEMA;
use stash_obs::json::{self, JsonValue};

fn require_schema(fields: &JsonValue, want: &str) -> Result<(), String> {
    match fields.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == want => Ok(()),
        Some(s) => Err(format!("schema is {s:?}, expected {want:?}")),
        None => Err(format!("missing schema tag (expected {want:?})")),
    }
}

/// The run-record shape shared by `BENCH_*.json` artifacts and
/// `HISTORY.jsonl` lines — everything but the schema tag.
fn check_run_record(parsed: &JsonValue) -> Result<(), String> {
    let JsonValue::Obj(fields) = parsed else {
        return Err("not a JSON object".into());
    };
    for key in ["bench", "threads", "wall", "deterministic"] {
        if !fields.contains_key(key) {
            return Err(format!("missing field {key:?}"));
        }
    }
    match fields.get("bench").and_then(JsonValue::as_str) {
        Some(name) if !name.is_empty() => {}
        _ => return Err("field \"bench\" is not a non-empty string".into()),
    }
    match fields.get("threads").and_then(JsonValue::as_f64) {
        Some(threads) if threads >= 1.0 => {}
        _ => return Err("field \"threads\" is not a positive count".into()),
    }
    if !matches!(fields.get("deterministic"), Some(JsonValue::Obj(_))) {
        return Err("field \"deterministic\" is not an object".into());
    }
    let Some(wall @ JsonValue::Obj(_)) = fields.get("wall") else {
        return Err("field \"wall\" is not an object".into());
    };
    match wall.get("ms").and_then(JsonValue::as_f64) {
        Some(ms) if ms >= 0.0 => Ok(()),
        _ => Err("wall.ms is not a non-negative number".into()),
    }
}

fn check_bench(raw: &str) -> Result<(), String> {
    let parsed = json::parse(raw).map_err(|e| format!("parse: {e}"))?;
    require_schema(&parsed, BENCH_SCHEMA)?;
    check_run_record(&parsed)
}

fn check_trace(raw: &str) -> Result<(), String> {
    let mut saw_header = false;
    for (i, line) in raw.lines().enumerate() {
        let parsed = json::parse(line).map_err(|e| format!("line {}: parse: {e}", i + 1))?;
        if parsed.get("type").and_then(JsonValue::as_str) == Some("trace_summary") {
            require_schema(&parsed, TRACE_SCHEMA).map_err(|e| format!("line {}: {e}", i + 1))?;
            saw_header = true;
        }
    }
    if saw_header {
        Ok(())
    } else {
        Err("no trace_summary header line".into())
    }
}

fn check_history(raw: &str) -> Result<(), String> {
    if raw.trim().is_empty() {
        return Err("history is empty".into());
    }
    for (i, line) in raw.lines().enumerate() {
        let parsed = json::parse(line).map_err(|e| format!("line {}: parse: {e}", i + 1))?;
        require_schema(&parsed, HISTORY_SCHEMA).map_err(|e| format!("line {}: {e}", i + 1))?;
        check_run_record(&parsed).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

fn check(path: &str) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let name = std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if name.starts_with("TRACE_") && name.ends_with(".jsonl") {
        check_trace(&raw)
    } else if name == "HISTORY.jsonl" {
        check_history(&raw)
    } else {
        check_bench(&raw)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bench_check <BENCH_*.json | TRACE_*.jsonl | HISTORY.jsonl>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match check(path) {
            Ok(()) => println!("ok {path}"),
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
