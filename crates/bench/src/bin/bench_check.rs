//! CI smoke checker for bench artifacts: each argument must be a
//! `BENCH_*.json` file that parses with the in-tree JSON parser and
//! carries the schema the harness promises (`bench`, `threads`,
//! `wall_ms`, and a `deterministic` object). Exits non-zero otherwise.

use stash_obs::json::{self, JsonValue};

fn check(path: &str) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let parsed = json::parse(&raw).map_err(|e| format!("parse: {e}"))?;
    let JsonValue::Obj(fields) = parsed else {
        return Err("not a JSON object".into());
    };
    for key in ["bench", "threads", "wall_ms", "deterministic"] {
        if !fields.contains_key(key) {
            return Err(format!("missing field {key:?}"));
        }
    }
    if !matches!(fields.get("deterministic"), Some(JsonValue::Obj(_))) {
        return Err("field \"deterministic\" is not an object".into());
    }
    match fields.get("wall_ms") {
        Some(JsonValue::Num(n)) if *n >= 0.0 => {}
        _ => return Err("field \"wall_ms\" is not a non-negative number".into()),
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bench_check <BENCH_*.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match check(path) {
            Ok(()) => println!("ok {path}"),
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
